#!/usr/bin/env python
"""Distributed HTC: a multi-site cluster with per-site LANDLORDs.

Three computing sites, each with its own head-node image cache (LANDLORD)
and four workers with local scratch.  Jobs from several users are
dispatched by a scheduler; each job's image is prepared at the site
(hit/merge/insert), transferred to a worker if needed, then executed.

Shows why spec-aware placement matters: the "sticky user" policy routes a
user's (similar) jobs to one site, concentrating mergeable specs, while
round-robin scatters them — compare cache behaviour and overhead.

Run:  python examples/multi_site.py
"""

from repro.cvmfs.shrinkwrap import Shrinkwrap
from repro.htc.cluster import Cluster, Site
from repro.htc.scheduler import Scheduler
from repro.htc.workload import DependencyWorkload, jobs_from_specs
from repro.packages.sft import build_sft_repository
from repro.util.rng import spawn
from repro.util.units import GB, format_bytes


def make_cluster(repo) -> Cluster:
    sites = [
        Site(
            name=f"site{i}",
            repository=repo,
            cache_bytes=80 * GB,
            alpha=0.8,
            n_workers=4,
            worker_scratch_bytes=40 * GB,
            shrinkwrap=Shrinkwrap(repo),
            expand_closure=False,
        )
        for i in range(3)
    ]
    return Cluster(sites)


def make_jobs(repo, n_users: int = 6, jobs_per_user: int = 30):
    workload = DependencyWorkload(repo, max_selection=20)
    jobs = []
    for user in range(n_users):
        rng = spawn(1234, "user", user)
        # Each user works from a handful of evolving specs.
        uniques = workload.sample_specs(rng, 5)
        for j in range(jobs_per_user):
            spec = uniques[int(rng.integers(0, len(uniques)))]
            jobs.extend(
                jobs_from_specs([spec], rng, mean_runtime=300.0,
                                user=f"user{user}")
            )
    order = spawn(1234, "shuffle").permutation(len(jobs))
    return [jobs[int(i)] for i in order]


def main() -> None:
    repo = build_sft_repository(seed=11, n_packages=1500,
                                target_total_size=120 * GB)
    jobs = make_jobs(repo)
    print(f"{len(jobs)} jobs from 6 users over a "
          f"{format_bytes(repo.total_size)} repository\n")

    for policy in ("round_robin", "sticky_user"):
        cluster = make_cluster(repo)
        summary = Scheduler(cluster, site_policy=policy).run(jobs)
        actions = summary.by_action()
        cached = sum(s.landlord.cache.cached_bytes for s in cluster.sites)
        print(f"policy={policy}")
        print(f"  makespan {summary.makespan / 3600:.1f}h, "
              f"throughput {summary.throughput_jobs_per_hour:.0f} jobs/h, "
              f"overhead {100 * summary.overhead_fraction:.1f}%")
        print(f"  actions: " + " ".join(f"{k}={v}" for k, v in sorted(actions.items())))
        print(f"  cached across sites: {format_bytes(cached)}")
        for site in cluster.sites:
            st = site.stats
            print(f"    {site.name}: hits={st.hits} merges={st.merges} "
                  f"inserts={st.inserts} "
                  f"cache_eff={100 * site.landlord.cache.cache_efficiency:.0f}%")
        print()


if __name__ == "__main__":
    main()
