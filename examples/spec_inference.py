#!/usr/bin/env python
"""Specification inference: from job artifacts to container specs.

The paper's deployment expects a specification per job but provides
scanners so researchers do not have to write them by hand (§V): Python
import analysis, `module load` directives, and access logs from previous
runs.  This example runs all three against synthetic job artifacts over a
repository that actually contains the named software, then prepares a
container from the merged evidence.

Run:  python examples/spec_inference.py
"""

from repro.core.landlord import Landlord
from repro.packages.package import Package, make_package_id
from repro.packages.repository import Repository
from repro.specs import (
    PackageResolver,
    spec_from_log,
    spec_from_module_script,
    spec_from_python_source,
)
from repro.util.units import GB, MB, format_bytes

JOB_SCRIPT = '''
import os, sys, json          # stdlib: ignored by the scanner
import numpy as np
import scipy.optimize
from ROOT import TFile        # PyROOT
from geant4 import run_simulation
'''

SUBMIT_SCRIPT = """
#!/bin/bash
#SBATCH -N 1
module purge
module load gcc/8.3.0
module load root/6.20.04 geant4/10.6   # physics stack
module load cmake   # build helper, unloaded below
module unload cmake
python job.py
"""

ACCESS_LOG = """
open("/cvmfs/sft.cern.ch/root/6.20.04/x86_64-el9/lib/libCore.so") = 3
open("/cvmfs/sft.cern.ch/calib-data/2.1/geometry.db") = 4
open("/cvmfs/sft.cern.ch/python/3.9.6/bin/python") = 5
stat("/cvmfs/other-repo.cern.ch/should/2.0/be-filtered") = -1
"""


def demo_repository() -> Repository:
    """A small repository carrying the software the artifacts reference."""

    def pkg(name, version, size_mb, deps=(), variant=""):
        return Package(
            id=make_package_id(name, version, variant),
            size=int(size_mb * MB),
            deps=tuple(deps),
        )

    gcc = pkg("gcc", "8.3.0", 900)
    python = pkg("python", "3.9.6", 120, [gcc.id])
    numpy = pkg("numpy", "1.24.0", 60, [python.id])
    scipy = pkg("scipy", "1.10.0", 110, [numpy.id])
    root_new = pkg("root", "6.20.04", 2600, [gcc.id, python.id], "x86_64-el9")
    root_old = pkg("root", "6.18.00", 2500, [gcc.id])
    geant4 = pkg("geant4", "10.6", 1800, [gcc.id])
    calib = pkg("calib-data", "2.1", 3200)
    return Repository(
        [gcc, python, numpy, scipy, root_new, root_old, geant4, calib]
    )


def main() -> None:
    repo = demo_repository()
    resolver = PackageResolver(repo, aliases={"ROOT": "root"})

    py = spec_from_python_source(JOB_SCRIPT, resolver)
    print("python imports ->", sorted(py.spec.packages))
    if py.unresolved:
        print("  unresolved:", py.unresolved)

    mod = spec_from_module_script(SUBMIT_SCRIPT, resolver)
    print("module loads   ->", sorted(mod.spec.packages))

    log = spec_from_log(ACCESS_LOG, resolver, repo_filter="sft.cern.ch")
    print("access log     ->", sorted(log.spec.packages))

    merged = py.spec.merge(mod.spec).merge(log.spec)
    print(f"\nmerged spec: {len(merged)} packages")

    landlord = Landlord(repo, capacity=20 * GB, alpha=0.8)
    prepared = landlord.prepare(merged)
    print(
        f"prepared container: {prepared.action.value}, "
        f"{prepared.image.package_count} packages, "
        f"{format_bytes(prepared.image.size)} "
        f"(requested {format_bytes(prepared.requested_bytes)})"
    )


if __name__ == "__main__":
    main()
