#!/usr/bin/env python
"""HEP pipelines: the paper's LHC benchmark apps through LANDLORD.

Models a day of submissions at a site serving the ATLAS, CMS, ALICE and
LHCb experiments: the seven Figure 2 benchmark applications are submitted
repeatedly (pipelines re-run per dataset).  Compares three strategies:

- build-per-job (no caching),
- exact-match caching (α = 0),
- LANDLORD merging (α = 0.8),

reporting preparation I/O and modelled preparation time per strategy.

Run:  python examples/hep_pipeline.py
"""

from repro.core.landlord import Landlord
from repro.cvmfs.shrinkwrap import Shrinkwrap
from repro.htc.lhc import build_lhc_suite
from repro.util.rng import spawn
from repro.util.units import GB, format_bytes


def submission_schedule(suite, rng, rounds: int = 6):
    """Apps submitted in randomised pipeline order, each round = one dataset."""
    schedule = []
    for _ in range(rounds):
        order = rng.permutation(len(suite.apps))
        schedule.extend(suite.apps[int(i)] for i in order)
    return schedule


def run_strategy(suite, schedule, alpha: float, capacity: int):
    landlords = {
        name: Landlord(
            repo,
            capacity=capacity,
            alpha=alpha,
            shrinkwrap=Shrinkwrap(repo),
            expand_closure=False,
        )
        for name, repo in suite.repositories.items()
    }
    prep_seconds = 0.0
    written = 0
    actions = {"hit": 0, "merge": 0, "insert": 0}
    for app in schedule:
        prepared = landlords[app.experiment].prepare(app.closure)
        prep_seconds += prepared.prep_seconds
        written += prepared.bytes_written
        actions[prepared.action.value] += 1
    stored = sum(l.cache.cached_bytes for l in landlords.values())
    return prep_seconds, written, stored, actions


def main() -> None:
    suite = build_lhc_suite(seed=7, n_packages=1200)
    rng = spawn(7, "hep-pipeline")
    schedule = submission_schedule(suite, rng, rounds=6)
    print(f"{len(schedule)} submissions across "
          f"{len(suite.repositories)} experiments\n")

    # Build-per-job: every submission pays the full Shrinkwrap build.
    nocache_prep = sum(app.measured_prep_seconds for app in schedule)
    nocache_written = sum(app.image_bytes for app in schedule)

    rows = [("build-per-job", nocache_prep, nocache_written, 0,
             {"hit": 0, "merge": 0, "insert": len(schedule)})]
    for label, alpha in (("exact cache (α=0)", 0.0), ("LANDLORD (α=0.8)", 0.8)):
        prep, written, stored, actions = run_strategy(
            suite, schedule, alpha, capacity=60 * GB
        )
        rows.append((label, prep, written, stored, actions))

    print(f"{'strategy':20s} {'prep time':>10s} {'written':>10s} "
          f"{'stored':>10s}  actions")
    for label, prep, written, stored, actions in rows:
        acts = " ".join(f"{k}={v}" for k, v in actions.items())
        print(f"{label:20s} {prep:9.0f}s {format_bytes(written):>10s} "
              f"{format_bytes(stored):>10s}  {acts}")

    base = rows[0][1]
    best = rows[-1][1]
    print(f"\nLANDLORD cuts preparation time {base / max(best, 1e-9):.1f}x "
          "vs building every image from scratch, while merging keeps one "
          "moderate image per experiment instead of one per app variant.")


if __name__ == "__main__":
    main()
