#!/usr/bin/env python
"""Multi-tenant isolation: the storage price of privacy.

The paper leaves data security/privacy for general-purpose deployments as
future work (§V).  `repro.core.tenancy` implements the plugin surface: this
example runs the same four-tenant workload under the three isolation modes
and shows the trade — shared custody maximises reuse, hard isolation
multiplies storage by duplicating the common core per tenant, and
public-core custody recovers most of the sharing while keeping each
tenant's private software invisible to the others.

Run:  python examples/multi_tenant.py
"""

from repro.core.tenancy import ISOLATION_MODES, MultiTenantLandlord
from repro.htc.workload import DependencyWorkload
from repro.packages.sft import build_sft_repository
from repro.util.rng import spawn
from repro.util.units import GB, format_bytes

TENANTS = ["atlas", "cms", "alice", "lhcb"]


def tenant_streams(repo, jobs_per_tenant=40):
    workload = DependencyWorkload(repo, max_selection=12)
    streams = {}
    for tenant in TENANTS:
        rng = spawn(5, "tenant", tenant)
        uniques = workload.sample_specs(rng, 8)
        streams[tenant] = [
            uniques[int(rng.integers(0, len(uniques)))]
            for _ in range(jobs_per_tenant)
        ]
    return streams


def main() -> None:
    repo = build_sft_repository(seed=5, n_packages=1500,
                                target_total_size=120 * GB)
    streams = tenant_streams(repo)
    order = []
    for i in range(len(next(iter(streams.values())))):
        for tenant in TENANTS:
            order.append((tenant, streams[tenant][i]))

    print(f"{len(order)} jobs from {len(TENANTS)} tenants over a "
          f"{format_bytes(repo.total_size)} repository\n")
    print(f"{'mode':12s} {'hits':>5s} {'merges':>7s} {'inserts':>8s} "
          f"{'stored':>9s} {'unique':>9s} {'written':>9s}")

    for mode in ISOLATION_MODES:
        landlord = MultiTenantLandlord(
            repo,
            capacity=240 * GB,
            alpha=0.8,
            isolation=mode,
            tenants=TENANTS,
            is_public=lambda pid: pid.startswith(("core-", "fw-")),
        )
        for tenant, spec in order:
            landlord.prepare(tenant, spec)
        stats = landlord.combined_stats()
        print(
            f"{mode:12s} {stats.hits:5d} {stats.merges:7d} "
            f"{stats.inserts:8d} "
            f"{format_bytes(landlord.total_cached_bytes):>9s} "
            f"{format_bytes(landlord.total_unique_bytes):>9s} "
            f"{format_bytes(stats.bytes_written):>9s}"
        )

    print(
        "\nshared custody reuses everything; isolation duplicates the "
        "common core in every tenant's cache; public-core keeps shared "
        "toolchains in one custody domain and only isolates the private "
        "remainder."
    )


if __name__ == "__main__":
    main()
