#!/usr/bin/env python
"""Tuning α for a site: find the operational zone for *your* workload.

An administrator deciding on LANDLORD's merge threshold can replay a sample
of their site's job stream over an α grid and pick any value inside the
operational zone (cache efficiency above the thrashing floor, merge I/O
under the overhead ceiling, containers not absurdly bloated).  The paper's
advice: anywhere in the zone is fine; start at α = 0.8.

Run:  python examples/alpha_tuning.py
"""

from repro.analysis.efficiency import find_operational_zone
from repro.analysis.report import sweep_plot, sweep_table
from repro.analysis.sweep import alpha_sweep
from repro.htc.simulator import SimulationConfig
from repro.util.units import GB


def main() -> None:
    # Stand-in for "a sample of your site's jobs": the dependency-scheme
    # workload over a 1,500-package repository, 100 unique specs x 5.
    config = SimulationConfig(
        capacity=240 * GB,
        n_unique=100,
        repeats=5,
        max_selection=30,
        n_packages=1500,
        repo_total_size=120 * GB,
        seed=99,
    )
    sweep = alpha_sweep(
        config,
        alphas=[0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0],
        repetitions=5,
        label="site sample",
    )
    print(sweep_table(
        sweep,
        ["cache_efficiency", "container_efficiency", "write_amplification",
         "merges", "hits"],
    ))
    print()
    print(sweep_plot([sweep], "cache_efficiency", scale=100.0,
                     title="cache efficiency vs alpha", ylabel="percent"))

    zone = find_operational_zone(
        sweep,
        cache_efficiency_floor=0.3,
        write_amplification_ceiling=2.0,
        container_efficiency_floor=0.2,
    )
    print()
    if zone.valid:
        recommended = 0.8 if zone.contains(0.8) else (zone.lower + zone.upper) / 2
        print(f"operational zone: [{zone.lower:.2f}, {zone.upper:.2f}] "
              f"-> recommend alpha = {recommended:.2f}")
    else:
        print("no alpha satisfies the configured limits; relax a constraint "
              "or provision more cache")

    # Or skip the offline sweep entirely: let the controller walk alpha
    # into the zone online, steering by the live cache's own gauges.
    online_demo(config)


def online_demo(config) -> None:
    from repro.core.adaptive import AlphaController
    from repro.core.cache import LandlordCache
    from repro.htc.simulator import make_workload
    from repro.packages.sft import build_experiment_repository
    from repro.util.rng import spawn

    repo = build_experiment_repository(
        "sft", seed=config.seed, n_packages=config.n_packages,
        target_total_size=config.repo_total_size,
    )
    cache = LandlordCache(config.capacity, 0.4, repo.size_of)  # start cold
    controller = AlphaController(cache, interval=50)
    workload = make_workload(config, repo)
    rng = spawn(config.seed, "online")
    for _ in range(600):
        controller.request(workload.sample(rng))
    print("\nonline tuning from alpha=0.40:")
    for index, alpha in controller.alpha_trace()[:12]:
        print(f"  request {index:4d}: alpha -> {alpha:.2f}")
    print(f"settled at alpha = {controller.alpha:.2f} "
          f"(cache efficiency {100 * cache.cache_efficiency:.0f}%)")


if __name__ == "__main__":
    main()
