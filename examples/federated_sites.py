#!/usr/bin/env python
"""Federated sites: share images through a registry instead of rebuilding.

Four sites serve overlapping workloads.  Isolated, each site Shrinkwraps
its own copies of every image; federated, sites publish builds to a shared
contents-indexed registry and pull suitable images instead of rebuilding —
replication (paper §I) becomes reuse.

Run:  python examples/federated_sites.py
"""

from repro.containers.registry import ImageRegistry
from repro.core.federation import FederatedLandlord
from repro.htc.workload import DependencyWorkload
from repro.packages.sft import build_sft_repository
from repro.util.rng import spawn
from repro.util.units import GB, format_bytes

N_SITES = 4


def site_streams(repo, jobs_per_site=60):
    workload = DependencyWorkload(repo, max_selection=10)
    pool = workload.sample_specs(spawn(21, "pool"), 25)
    streams = []
    for site in range(N_SITES):
        rng = spawn(21, "site", site)
        streams.append(
            [pool[int(i)] for i in rng.integers(0, len(pool), jobs_per_site)]
        )
    return streams


def run(repo, streams, registry):
    sites = [
        FederatedLandlord(repo, capacity=60 * GB, alpha=0.8,
                          registry=registry, expand_closure=False)
        for _ in range(N_SITES)
    ]
    for i in range(len(streams[0])):
        for site, stream in zip(sites, streams):
            site.prepare(stream[i])
    return sites


def main() -> None:
    repo = build_sft_repository(seed=21, n_packages=1500,
                                target_total_size=120 * GB)
    streams = site_streams(repo)
    total_jobs = sum(len(s) for s in streams)
    print(f"{N_SITES} sites x {len(streams[0])} jobs "
          f"({total_jobs} total) over {format_bytes(repo.total_size)}\n")

    for label, registry in (("isolated", None), ("federated", ImageRegistry())):
        sites = run(repo, streams, registry)
        built = sum(s.cache.stats.bytes_written for s in sites)
        pulled = sum(s.federation.pull_bytes for s in sites)
        hits = sum(s.cache.stats.hits for s in sites)
        print(f"{label:10s} built={format_bytes(built):>8s} "
              f"pulled={format_bytes(pulled):>8s} hits={hits}")
        if registry is not None:
            print(f"{'':10s} registry: {len(registry)} images, "
                  f"{format_bytes(registry.stored_bytes)}, "
                  f"{registry.stats.deduplicated_pushes} pushes deduplicated")

    print("\nwith the registry, only the first site to need an image builds "
          "it; everyone else transfers — build I/O becomes O(distinct "
          "images), not O(sites x images).")


if __name__ == "__main__":
    main()
