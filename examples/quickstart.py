#!/usr/bin/env python
"""Quickstart: manage container images for a stream of jobs with LANDLORD.

Builds a small synthetic software repository, stands up a LANDLORD with a
bounded image cache, submits a handful of jobs with overlapping
requirements, and shows how requests are satisfied (hit / merge / insert)
and what that costs in storage and I/O.

Run:  python examples/quickstart.py
"""

from repro import Landlord, build_sft_repository
from repro.util.rng import spawn
from repro.util.units import GB, format_bytes


def main() -> None:
    # A 2,000-package repository shaped like CERN's SFT tree (hierarchical
    # dependencies, ~150 GB total).  Deterministic in its seed.
    repo = build_sft_repository(
        seed=42, n_packages=2000, target_total_size=150 * GB
    )
    print(f"repository: {len(repo)} packages, {format_bytes(repo.total_size)}")

    # LANDLORD with a 60 GB image cache; α=0.7 merges a user's evolving
    # jobs together without globbing unrelated users into one image.
    landlord = Landlord(repo, capacity=60 * GB, alpha=0.7)

    # Six jobs: three users, each submitting two related jobs.  A job's
    # spec is just the packages it needs; LANDLORD adds dependencies.
    rng = spawn(42, "quickstart")
    ids = repo.ids
    jobs = []
    for user in range(3):
        base = [ids[int(i)] for i in rng.choice(len(ids), size=4, replace=False)]
        extra = [ids[int(i)] for i in rng.choice(len(ids), size=1, replace=False)]
        jobs.append((f"user{user}-a", base))
        jobs.append((f"user{user}-b", base + extra))  # evolved requirements

    print(f"\n{'job':12s} {'action':7s} {'requested':>10s} {'image':>10s} "
          f"{'written':>10s}")
    for name, spec in jobs:
        prepared = landlord.prepare(spec)
        print(
            f"{name:12s} {prepared.action.value:7s} "
            f"{format_bytes(prepared.requested_bytes):>10s} "
            f"{format_bytes(prepared.image.size):>10s} "
            f"{format_bytes(prepared.bytes_written):>10s}"
        )

    # Resubmitting any earlier job is now a free cache hit.
    again = landlord.prepare(jobs[0][1])
    print(f"\nresubmit {jobs[0][0]}: {again.action.value} "
          f"(0 bytes written, image {format_bytes(again.image.size)})")

    stats = landlord.stats
    print(
        f"\ncache: {len(landlord.cache)} images, "
        f"{format_bytes(landlord.cache.cached_bytes)} stored "
        f"({format_bytes(landlord.cache.unique_bytes)} unique, "
        f"cache efficiency {100 * landlord.cache.cache_efficiency:.0f}%)"
    )
    print(
        f"ops: {stats.hits} hits, {stats.merges} merges, "
        f"{stats.inserts} inserts, {stats.deletes} evictions; "
        f"{format_bytes(stats.bytes_written)} written for "
        f"{format_bytes(stats.requested_bytes)} requested"
    )


if __name__ == "__main__":
    main()
