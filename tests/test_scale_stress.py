"""Stress tests: long churn at small capacity keeps every gauge honest.

The α sweeps run ~650k requests at paper scale; this compressed version
(5,000 requests through a deliberately tight cache) exercises the same
eviction-heavy regime and cross-checks the incremental byte gauges against
recomputation from scratch at checkpoints.  Marked slow.
"""

import numpy as np
import pytest

from repro.core.cache import LandlordCache
from repro.htc.workload import DependencyWorkload
from repro.util.rng import spawn
from repro.util.units import GB

pytestmark = pytest.mark.slow


class TestChurnStress:
    @pytest.fixture(scope="class")
    def churned(self, small_sft):
        """5,000 requests through a cache holding ~8 images."""
        cache = LandlordCache(8 * GB, 0.75, small_sft.size_of)
        workload = DependencyWorkload(small_sft, max_selection=8)
        rng = spawn(13, "stress")
        checkpoints = []
        for i in range(5_000):
            cache.request(workload.sample(rng))
            if i % 500 == 0:
                images = cache.images
                recomputed_total = sum(img.size for img in images)
                union = (
                    set().union(*[img.packages for img in images])
                    if images else set()
                )
                recomputed_unique = small_sft.bytes_of(union)
                checkpoints.append(
                    (cache.cached_bytes, recomputed_total,
                     cache.unique_bytes, recomputed_unique)
                )
        return cache, checkpoints

    def test_incremental_gauges_match_recomputation(self, churned):
        _cache, checkpoints = churned
        for cached, recomputed_total, unique, recomputed_unique in checkpoints:
            assert cached == recomputed_total
            assert unique == recomputed_unique

    def test_heavy_eviction_occurred(self, churned):
        cache, _ = churned
        assert cache.stats.deletes > 1_000  # the regime we meant to hit

    def test_counters_partition_all_requests(self, churned):
        cache, _ = churned
        stats = cache.stats
        assert stats.requests == 5_000
        assert stats.hits + stats.merges + stats.inserts == 5_000

    def test_spec_memo_stays_bounded(self, churned):
        cache, _ = churned
        assert len(cache._spec_memo) <= 65_536

    def test_image_sizes_consistent_with_contents(self, churned):
        cache, _ = churned
        for image in cache.images:
            assert image.size == cache._universe.bytes_of_indices(image.indices)
            assert image.package_count == image.mask.bit_count()
