"""Tests for the baseline-comparison experiment (§III quantified)."""

import pytest

from repro.experiments import TINY, baselines


@pytest.fixture(scope="module")
def results():
    return baselines.run(TINY, seed=2020)


class TestBaselines:
    def test_all_strategies_present(self, results):
        assert set(results["strategies"]) == {
            "no-cache", "exact-lru (a=0)", "landlord (a=0.8)",
            "single-image (a=1)", "full-repo image",
        }

    def test_no_cache_writes_everything(self, results):
        no_cache = results["strategies"]["no-cache"]
        assert no_cache["bytes_written"] == results["requested_bytes"]
        assert no_cache["storage_held"] == 0

    def test_caching_reduces_writes_vs_no_cache(self, results):
        lru = results["strategies"]["exact-lru (a=0)"]
        assert lru["bytes_written"] <= results["requested_bytes"]

    def test_landlord_beats_lru_on_cache_efficiency(self, results):
        lru = results["strategies"]["exact-lru (a=0)"]
        landlord = results["strategies"]["landlord (a=0.8)"]
        assert landlord["cache_efficiency"] >= lru["cache_efficiency"]
        assert landlord["hit_rate"] >= lru["hit_rate"]

    def test_single_image_perfect_cache_poor_container(self, results):
        single = results["strategies"]["single-image (a=1)"]
        assert single["cache_efficiency"] == pytest.approx(1.0)
        assert (
            single["container_efficiency"]
            < results["strategies"]["landlord (a=0.8)"]["container_efficiency"]
        )

    def test_full_repo_all_hits_worst_containers(self, results):
        full = results["strategies"]["full-repo image"]
        assert full["hit_rate"] == 1.0
        assert full["storage_held"] == results["repo_bytes"]
        assert full["container_efficiency"] == min(
            s["container_efficiency"] for s in results["strategies"].values()
        )

    def test_dedup_floor_below_any_caching_strategy_storage(self, results):
        floor = results["dedup_floor_bytes"]
        lru = results["strategies"]["exact-lru (a=0)"]
        assert floor <= lru["storage_held"] or floor <= results["repo_bytes"]

    def test_layering_stores_more_than_dedup_floor(self, results):
        assert results["layering_stored_bytes"] >= results["dedup_floor_bytes"]

    def test_report_renders(self, results):
        out = baselines.report(results)
        assert "Baseline strategies" in out
        assert "layer store" in out
