"""Tests for repro.experiments.common (scales and CLI plumbing)."""

import pytest

from repro.experiments.common import (
    PAPER,
    QUICK,
    TINY,
    base_config,
    get_scale,
)


class TestScales:
    def test_paper_scale_matches_paper_parameters(self):
        assert PAPER.n_packages == 9660
        assert PAPER.n_unique == 500
        assert PAPER.repeats == 5
        assert PAPER.repetitions == 20
        assert PAPER.alpha_step == 0.05
        assert PAPER.max_selection == 100
        assert PAPER.capacity == 2 * PAPER.repo_total_size  # the 1.4 TB cache

    def test_all_scales_keep_cache_at_twice_repo(self):
        for scale in (TINY, QUICK, PAPER):
            assert scale.capacity == 2 * scale.repo_total_size

    def test_alphas_grid(self):
        grid = PAPER.alphas()
        assert grid[0] == 0.4 and grid[-1] == 1.0
        assert len(grid) == 13

    def test_with_(self):
        modified = TINY.with_(repetitions=1)
        assert modified.repetitions == 1
        assert TINY.repetitions != 1 or modified is not TINY


class TestGetScale:
    def test_by_name(self):
        assert get_scale("tiny") is TINY
        assert get_scale("quick") is QUICK
        assert get_scale("paper") is PAPER

    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert get_scale(None) is QUICK

    def test_repro_full_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        assert get_scale(None) is PAPER

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_scale("galactic")


class TestBaseConfig:
    def test_mirrors_scale(self):
        config = base_config(QUICK, seed=5)
        assert config.capacity == QUICK.capacity
        assert config.n_unique == QUICK.n_unique
        assert config.seed == 5

    def test_overrides(self):
        config = base_config(TINY, alpha=0.5, scheme="random")
        assert config.alpha == 0.5
        assert config.scheme == "random"
