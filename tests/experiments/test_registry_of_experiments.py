"""The CLI and the experiments registry must stay in sync."""

import repro.cli as cli
from repro.experiments import EXPERIMENTS


class TestRegistry:
    def test_every_listed_experiment_has_a_cli_command(self):
        for name in EXPERIMENTS:
            assert name in cli._FIGURES, name

    def test_every_cli_figure_is_listed(self):
        assert set(cli._FIGURES) == set(EXPERIMENTS)

    def test_each_module_has_run_and_report(self):
        for module in cli._FIGURES.values():
            assert callable(module.run)
            assert callable(module.report)
            assert callable(module.main)
