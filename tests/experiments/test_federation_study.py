"""Tests for the federation study experiment."""

import pytest

from repro.experiments import TINY, federation_study


@pytest.fixture(scope="module")
def results():
    return federation_study.run(TINY, seed=2020)


class TestFederationStudy:
    def test_both_modes_run_same_jobs(self, results):
        iso, fed = results["isolated"], results["federated"]
        served = lambda t: t["hits"] + t["inserts"] + t["merges"]  # noqa: E731
        assert served(iso) == served(fed) == results["jobs"]

    def test_federation_reduces_build_io(self, results):
        assert (
            results["federated"]["bytes_built"]
            < results["isolated"]["bytes_built"]
        )

    def test_pulls_replace_builds(self, results):
        fed = results["federated"]
        assert fed["pulls"] > 0
        assert fed["adoptions"] == fed["pulls"]
        assert fed["inserts"] < results["isolated"]["inserts"]

    def test_isolated_mode_never_touches_registry(self, results):
        iso = results["isolated"]
        assert iso["pulls"] == 0
        assert iso["registry_bytes"] == 0

    def test_registry_holds_dedup_images(self, results):
        fed = results["federated"]
        assert 0 < fed["registry_bytes"] <= fed["bytes_built"]

    def test_report_renders(self, results):
        out = federation_study.report(results)
        assert "Federation study" in out
        assert "cuts global build I/O" in out
