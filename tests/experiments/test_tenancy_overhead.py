"""Tests for the tenancy-overhead experiment."""

import pytest

from repro.experiments import TINY, tenancy_overhead


@pytest.fixture(scope="module")
def results():
    return tenancy_overhead.run(TINY, seed=2020)


class TestTenancyOverhead:
    def test_all_modes_measured(self, results):
        assert set(results["modes"]) == {"shared", "isolated", "public-core"}

    def test_equal_request_counts(self, results):
        # public-core issues up to two sub-requests per job, so compare
        # served jobs via hits+merges+inserts >= jobs for every mode.
        for mode, s in results["modes"].items():
            assert s["hits"] + s["merges"] + s["inserts"] >= results["jobs"] / 2

    def test_isolation_duplicates_unique_bytes(self, results):
        shared = results["modes"]["shared"]["unique_bytes"]
        isolated = results["modes"]["isolated"]["unique_bytes"]
        assert isolated > shared

    def test_public_core_between_extremes(self, results):
        shared = results["modes"]["shared"]["unique_bytes"]
        isolated = results["modes"]["isolated"]["unique_bytes"]
        public_core = results["modes"]["public-core"]["unique_bytes"]
        assert public_core < isolated
        assert public_core <= shared * 1.5

    def test_report_renders(self, results):
        out = tenancy_overhead.report(results)
        assert "Isolation overhead" in out
        assert "price of privacy" in out
