"""Tests for the adaptive-alpha study experiment."""

import pytest

from repro.experiments import TINY, adaptive_study


@pytest.fixture(scope="module")
def results():
    return adaptive_study.run(TINY, seed=2020)


class TestAdaptiveStudy:
    def test_three_configurations_two_phases(self, results):
        assert len(results["configs"]) == 3
        assert all(len(c["phases"]) == 2 for c in results["configs"])

    def test_fixed_alphas_do_not_move(self, results):
        low, high, _adaptive = results["configs"]
        assert all(p["alpha_end"] == 0.4 for p in low["phases"])
        assert all(p["alpha_end"] == 0.95 for p in high["phases"])

    def test_controller_moves_off_its_start(self, results):
        adaptive = results["configs"][-1]
        assert adaptive["phases"][0]["alpha_end"] > 0.4

    def test_controller_avoids_high_alpha_write_blowup(self, results):
        high = results["configs"][1]
        adaptive = results["configs"][-1]
        assert (
            adaptive["phases"][1]["write_amplification"]
            < high["phases"][1]["write_amplification"]
        )

    def test_controller_beats_low_alpha_cache_efficiency(self, results):
        low = results["configs"][0]
        adaptive = results["configs"][-1]
        assert (
            adaptive["phases"][0]["cache_efficiency"]
            >= low["phases"][0]["cache_efficiency"]
        )

    def test_report_renders(self, results):
        out = adaptive_study.report(results)
        assert "workload shift" in out
