"""Tests for the repro-landlord CLI."""

import json

import pytest

from repro.cli import main


class TestDispatch:
    def test_help(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "replay" in out

    def test_unknown_command(self, capsys):
        assert main(["figQ"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_figure_command_runs(self, capsys):
        assert main(["fig3", "--scale", "tiny"]) == 0
        assert "Figure 3" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "fig3.json"
        assert main(["fig3", "--scale", "tiny", "--json", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert "image_bytes" in payload

    def test_seed_flag(self, capsys):
        assert main(["fig1", "--scale", "tiny", "--seed", "7"]) == 0


class TestTraceReplay:
    def test_trace_then_replay(self, tmp_path, capsys):
        trace = tmp_path / "stream.jsonl"
        assert main(["trace", str(trace), "--scale", "tiny"]) == 0
        assert trace.exists()
        assert main([
            "replay", str(trace), "--scale", "tiny", "--alpha", "0.8",
            "--capacity", "50GB",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache efficiency" in out

    def test_replay_default_capacity(self, tmp_path, capsys):
        trace = tmp_path / "stream.jsonl"
        main(["trace", str(trace), "--scale", "tiny"])
        assert main(["replay", str(trace), "--scale", "tiny"]) == 0
