"""Smoke + shape tests for every figure experiment at tiny scale.

Each test runs the experiment's ``run`` and asserts the qualitative shape
the paper reports — these are the statements EXPERIMENTS.md makes, executed.
"""

import numpy as np
import pytest

from repro.experiments import TINY
from repro.experiments import (
    ablations,
    fig1_layering,
    fig2_benchmarks,
    fig3_image_size,
    fig4_cache_behavior,
    fig5_single_run,
    fig6_sensitivity,
    fig7_dependencies,
    fig8_limits,
)

SEED = 2020


@pytest.fixture(scope="module")
def fig4_results():
    return fig4_cache_behavior.run(TINY, seed=SEED)


class TestFig1:
    def test_schematic_matches_paper_story(self):
        results = fig1_layering.run(TINY, seed=SEED)
        schematic = results["schematic"]
        assert not schematic["layering"]["equivalence_detected"]
        assert schematic["composition"]["equivalence_detected"]
        assert schematic["composition"]["actions"][2] == "hit"

    def test_layering_stores_at_least_composition_unique(self):
        gen = fig1_layering.run(TINY, seed=SEED)["generalised"]
        assert gen["layering_stored_bytes"] >= gen["composition_unique_bytes"]

    def test_report_renders(self):
        out = fig1_layering.report(fig1_layering.run(TINY, seed=SEED))
        assert "Figure 1" in out


class TestFig2:
    @pytest.fixture(scope="class")
    def results(self):
        return fig2_benchmarks.run(TINY, seed=SEED)

    def test_all_seven_apps(self, results):
        assert len(results["apps"]) == 7

    def test_model_images_near_paper(self, results):
        for row in results["apps"]:
            assert abs(row["model_image"] - row["paper_image"]) \
                < 0.5 * row["paper_image"], row["name"]

    def test_model_repos_match_paper(self, results):
        for row in results["apps"]:
            assert row["model_repo"] == row["full_repo"]

    def test_shared_landlord_reuses_images(self, results):
        actions = {s["action"] for s in results["shared_landlord"]}
        assert actions & {"merge", "hit"}  # at least some amortisation

    def test_report_renders(self, results):
        assert "Figure 2" in fig2_benchmarks.report(results)


class TestFig3:
    @pytest.fixture(scope="class")
    def results(self):
        return fig3_image_size.run(TINY, seed=SEED)

    def test_spec_size_grows_linearly(self, results):
        spec = results["spec_bytes"]
        assert np.all(np.diff(spec) > 0)

    def test_closure_amplifies_small_selections(self, results):
        amp = results["amplification"]
        assert amp[0] > 1.5

    def test_amplification_fades_with_size(self, results):
        amp = results["amplification"]
        assert amp[-1] < amp[0]

    def test_image_bounded_by_repo(self, results):
        assert results["image_bytes"][-1] <= results["repo_bytes"]
        assert results["image_count"][-1] <= results["repo_packages"]

    def test_image_always_at_least_spec(self, results):
        assert np.all(results["image_bytes"] >= results["spec_bytes"])

    def test_report_renders(self, results):
        assert "Figure 3" in fig3_image_size.report(results)


class TestFig4:
    def test_low_alpha_is_lru_like(self, fig4_results):
        sweep = fig4_results["sweep"]
        assert sweep.metric("merges")[0] == 0
        # inserts and deletes move in lockstep once the cache is full
        assert sweep.metric("inserts")[0] > 0

    def test_merges_rise_then_collapse_at_one(self, fig4_results):
        sweep = fig4_results["sweep"]
        merges = sweep.metric("merges")
        peak = merges.max()
        assert peak > 0
        assert merges[-1] < peak  # α=1 single image: merge count falls

    def test_hits_rise_with_alpha(self, fig4_results):
        hits = fig4_results["sweep"].metric("hits")
        assert hits[-1] > hits[0]

    def test_unique_rises_total_falls(self, fig4_results):
        sweep = fig4_results["sweep"]
        unique = sweep.metric("unique_bytes")
        total = sweep.metric("cached_bytes")
        assert unique[-1] > unique[0]
        assert total[-1] < total[0]
        assert unique[-1] == pytest.approx(total[-1], rel=0.01)

    def test_actual_writes_exceed_requested_at_high_alpha(self, fig4_results):
        sweep = fig4_results["sweep"]
        wamp = sweep.metric("write_amplification")
        mid = len(wamp) // 2
        assert wamp[:mid].min() < 1.05  # low α: no merge overhead
        assert wamp.max() > 1.05        # high α: rewrites dominate

    def test_report_renders(self, fig4_results):
        assert "Figure 4" in fig4_cache_behavior.report(fig4_results)


class TestFig5:
    @pytest.fixture(scope="class")
    def results(self):
        return fig5_single_run.run(TINY, seed=SEED)

    def test_merges_dominate_at_075(self, results):
        final = results["final"]
        assert final["merges"] > final["hits"] * 0.5

    def test_cache_saturates_at_capacity(self, results):
        cached = results["timeline"]["cached_bytes"]
        assert cached.max() <= TINY.capacity * 1.5
        # once deletes begin, occupancy hovers near the limit
        deletes = results["timeline"]["deletes"]
        if deletes[-1] > 0:
            first_delete = int(np.argmax(deletes > 0))
            assert cached[first_delete:].min() > 0.5 * TINY.capacity

    def test_hits_keep_rising(self, results):
        hits = results["timeline"]["hits"]
        assert hits[-1] > hits[len(hits) // 2] >= hits[0]

    def test_writes_track_merges(self, results):
        written = results["timeline"]["bytes_written"]
        assert np.all(np.diff(written) >= 0)
        assert written[-1] > 0

    def test_report_renders(self, results):
        assert "Figure 5" in fig5_single_run.report(results)


class TestFig6:
    @pytest.fixture(scope="class")
    def results(self):
        scale = TINY.with_(repetitions=2)
        return fig6_sensitivity.run(scale, seed=SEED)

    def test_bigger_cache_lower_cache_efficiency(self, results):
        sweeps = results["by_cache"]
        mid = len(sweeps[0].alphas) // 2
        small_cache = sweeps[0].metric("cache_efficiency")[mid]
        big_cache = sweeps[-1].metric("cache_efficiency")[mid]
        assert big_cache <= small_cache + 0.05

    def test_bigger_cache_lower_container_efficiency(self, results):
        sweeps = results["by_cache"]
        mid = len(sweeps[0].alphas) - 2
        assert (
            sweeps[-1].metric("container_efficiency")[mid]
            <= sweeps[0].metric("container_efficiency")[mid] + 0.05
        )

    def test_steady_state_insensitive_to_job_count(self, results):
        # the two largest job counts behave alike (paper: 500 vs 1000)
        big, bigger = results["by_jobs"][-2:]
        eff_a = big.metric("cache_efficiency")
        eff_b = bigger.metric("cache_efficiency")
        assert np.max(np.abs(eff_a - eff_b)) < 0.25

    def test_report_renders(self, results):
        assert "Figure 6" in fig6_sensitivity.report(results)


class TestFig7:
    @pytest.fixture(scope="class")
    def results(self):
        return fig7_dependencies.run(TINY, seed=SEED)

    def test_random_workload_barely_merges_below_one(self, results):
        random_merges = results["random"].metric("merges")[:-1]
        deps_merges = results["deps"].metric("merges")[:-1]
        assert random_merges.sum() < 0.2 * max(deps_merges.sum(), 1)

    def test_deps_cache_efficiency_improves_with_alpha(self, results):
        eff = results["deps"].metric("cache_efficiency")
        assert eff[-2] >= eff[0]

    def test_report_renders(self, results):
        assert "Figure 7" in fig7_dependencies.report(results)


class TestFig8:
    @pytest.fixture(scope="class")
    def results(self):
        return fig8_limits.run(TINY, seed=SEED)

    def test_zone_exists_and_is_moderate(self, results):
        zone = results["zone"]
        assert zone["valid"]
        assert 0.4 <= zone["lower"] <= zone["upper"] <= 1.0

    def test_zone_excludes_extremes(self, results):
        sweep = results["sweep"]
        zone = results["zone"]
        # the lowest α is below the cache-efficiency floor
        assert sweep.metric("cache_efficiency")[0] < 0.3 or zone["lower"] > 0.4

    def test_report_renders(self, results):
        out = fig8_limits.report(results)
        assert "Operational zone" in out or "No operational zone" in out


class TestAblations:
    @pytest.fixture(scope="class")
    def results(self):
        return ablations.run(TINY.with_(repetitions=2), seed=SEED)

    def test_all_studies_present(self, results):
        assert set(results["studies"]) == {
            "candidate_order", "eviction", "hit_selection", "minhash",
            "merge_write_mode",
        }

    def test_delta_mode_writes_less(self, results):
        study = results["studies"]["merge_write_mode"]
        assert study["delta"]["bytes_written"] < study["full"]["bytes_written"]

    def test_minhash_reduces_examinations(self, results):
        study = results["studies"]["minhash"]
        assert (
            study["lsh-prefilter"]["candidates_examined"]
            < study["exact"]["candidates_examined"]
        )

    def test_report_renders(self, results):
        assert "candidate_order" in ablations.report(results)
