"""Tests for repro.containers.builder.ImageBuilder."""

import pytest

from repro.containers.builder import ImageBuilder
from repro.core.spec import ImageSpec
from repro.cvmfs.shrinkwrap import Shrinkwrap


@pytest.fixture()
def builder(tiny_repo):
    return ImageBuilder(Shrinkwrap(tiny_repo))


class TestBuild:
    def test_build_resolves_closure(self, builder):
        image, cost = builder.build(ImageSpec(["appX/1.0"]))
        assert image.spec.packages == {
            "appX/1.0", "libA/1.0", "libB/1.0", "base/1.0",
        }
        assert image.size == 100
        assert cost.bytes_written == 100

    def test_build_without_closure(self, builder):
        image, _ = builder.build(ImageSpec(["appX/1.0"]), resolve_closure=False)
        assert image.spec.packages == {"appX/1.0"}

    def test_totals_accumulate(self, builder):
        builder.build(ImageSpec(["base/1.0"]))
        builder.build(ImageSpec(["lone/1.0"]))
        assert builder.total_builds == 2
        assert builder.total_bytes_written == 80
        assert builder.total_seconds > 0


class TestMerge:
    def test_merge_writes_whole_image(self, builder):
        base, _ = builder.build(ImageSpec(["appY/1.0"]))   # 80 bytes
        merged, cost = builder.merge(base, ImageSpec(["appZ/1.0"]))
        assert merged.spec.packages == {
            "appY/1.0", "appZ/1.0", "libA/1.0", "libB/1.0", "base/1.0",
        }
        # appY(50) + appZ(60) + libA(20) + libB(30) + base(10) = 170
        assert merged.size == 170
        assert cost.bytes_written == 170        # full rewrite
        assert cost.bytes_downloaded <= 90      # only the new content

    def test_merge_records_lineage(self, builder):
        base, _ = builder.build(ImageSpec(["base/1.0"]))
        merged, _ = builder.merge(base, ImageSpec(["lone/1.0"]))
        assert merged.parents == (base.image_id,)

    def test_subset_merge_is_free_reuse(self, builder):
        base, _ = builder.build(ImageSpec(["appX/1.0"]))
        same, cost = builder.merge(base, ImageSpec(["libA/1.0"]))
        assert same is base
        assert cost.bytes_written == 0
        assert cost.seconds == 0.0

    def test_merge_counter(self, builder):
        base, _ = builder.build(ImageSpec(["base/1.0"]))
        builder.merge(base, ImageSpec(["lone/1.0"]))
        assert builder.total_merges == 1
