"""Tests for repro.containers.layers — the Figure 1 mechanics."""

import pytest

from repro.containers.layers import Layer, LayerStore, LayeredImage
from repro.core.spec import ImageSpec

SIZES = {"A": 10, "B": 20, "C": 30, "D": 40}
size_of = SIZES.__getitem__


class TestLayer:
    def test_add_and_mask_disjoint(self):
        with pytest.raises(ValueError):
            Layer("x", frozenset({"A"}), frozenset({"A"}), 10)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Layer("x", frozenset(), frozenset(), -1)


class TestLayeredImage:
    def test_extend_adds_visible_packages(self):
        image = LayeredImage().extend({"A", "B"}, size_of)
        assert image.visible_packages == {"A", "B"}
        assert image.stored_bytes == 30

    def test_mask_hides_but_still_stores(self):
        image = LayeredImage().extend({"A", "B", "C"}, size_of)
        masked = image.extend((), size_of, masks={"C"})
        assert masked.visible_packages == {"A", "B"}
        assert masked.stored_bytes == 60  # C's bytes never reclaimed

    def test_readd_after_mask(self):
        image = (
            LayeredImage()
            .extend({"A"}, size_of)
            .extend((), size_of, masks={"A"})
            .extend({"A"}, size_of)
        )
        assert image.visible_packages == {"A"}
        assert image.stored_bytes == 20  # stored twice!

    def test_history_shared_between_extensions(self):
        base = LayeredImage().extend({"A"}, size_of)
        v1 = base.extend({"B"}, size_of)
        v2 = base.extend({"C"}, size_of)
        assert v1.layers[0] is v2.layers[0]

    def test_same_content_different_history_distinct_ids(self):
        # {A} then {B} vs {B} then {A}: equal visible contents,
        # different layer ids — Docker cannot unify them.
        ab = LayeredImage().extend({"A"}, size_of).extend({"B"}, size_of)
        ba = LayeredImage().extend({"B"}, size_of).extend({"A"}, size_of)
        assert ab.visible_packages == ba.visible_packages
        assert ab.head_id() != ba.head_id()

    def test_same_history_same_ids(self):
        a = LayeredImage().extend({"A"}, size_of)
        b = LayeredImage().extend({"A"}, size_of)
        assert a.head_id() == b.head_id()

    def test_visible_spec(self):
        image = LayeredImage().extend({"A"}, size_of)
        assert image.visible_spec == ImageSpec(["A"])

    def test_empty_image(self):
        image = LayeredImage()
        assert image.visible_packages == frozenset()
        assert image.head_id() == "scratch"
        assert len(image) == 0


class TestLayerStore:
    def test_layer_dedup_across_images(self):
        store = LayerStore()
        base = LayeredImage().extend({"A"}, size_of)
        store.push("u1", base.extend({"B"}, size_of))
        store.push("u2", base.extend({"C"}, size_of))
        # base layer stored once: A + B + C
        assert store.stored_bytes == 60
        assert store.distinct_layers == 3

    def test_push_replaces_and_gc_reclaims(self):
        store = LayerStore()
        v1 = LayeredImage().extend({"A"}, size_of)
        v2 = LayeredImage().extend({"D"}, size_of)
        store.push("u", v1)
        store.push("u", v2)  # v1's layer now unreferenced
        assert store.stored_bytes == 40

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            LayerStore().get("ghost")

    def test_find_satisfying_by_visible_contents(self):
        store = LayerStore()
        store.push("u", LayeredImage().extend({"A", "B"}, size_of))
        assert store.find_satisfying(ImageSpec(["A"])) == "u"
        assert store.find_satisfying(ImageSpec(["C"])) is None

    def test_masked_content_does_not_satisfy(self):
        store = LayerStore()
        image = LayeredImage().extend({"A", "C"}, size_of).extend(
            (), size_of, masks={"C"}
        )
        store.push("u", image)
        assert store.find_satisfying(ImageSpec(["C"])) is None
