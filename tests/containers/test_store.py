"""Tests for repro.containers.store.ImageStore."""

import pytest

from repro.containers.image import ContainerImage
from repro.containers.store import ImageStore
from repro.core.spec import ImageSpec


def image(*pkgs, size=10):
    return ContainerImage(spec=ImageSpec(pkgs), size=size)


class TestPutGet:
    def test_put_then_get(self):
        store = ImageStore(100)
        img = image("a/1")
        store.put(img)
        assert store.get(img.image_id) is img
        assert store.cached_bytes == 10

    def test_get_miss_returns_none(self):
        store = ImageStore(100)
        assert store.get("ghost") is None
        assert store.stats.misses == 1

    def test_put_same_id_is_noop_transfer(self):
        store = ImageStore(100)
        img = image("a/1")
        store.put(img)
        store.put(img)
        assert store.stats.puts == 1
        assert store.stats.bytes_written == 10

    def test_oversized_image_rejected(self):
        store = ImageStore(5)
        with pytest.raises(ValueError, match="exceeds"):
            store.put(image("a/1", size=10))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ImageStore(-1)


class TestEviction:
    def test_lru_eviction(self):
        store = ImageStore(25)
        first, second, third = image("a/1"), image("b/1"), image("c/1")
        store.put(first)
        store.put(second)
        store.get(first.image_id)       # touch first
        evicted = store.put(third)      # 30 > 25: evict LRU = second
        assert evicted == [second.image_id]
        assert first.image_id in store
        assert store.stats.bytes_evicted == 10

    def test_free_bytes(self):
        store = ImageStore(25)
        store.put(image("a/1"))
        assert store.free_bytes == 15


class TestFind:
    def test_find_satisfying_smallest(self):
        store = ImageStore(1000)
        small = image("a/1", "b/1", size=20)
        big = image("a/1", "b/1", "c/1", size=30)
        store.put(big)
        store.put(small)
        assert store.find_satisfying(ImageSpec(["a/1"])) is small

    def test_find_satisfying_none(self):
        store = ImageStore(1000)
        store.put(image("a/1"))
        assert store.find_satisfying(ImageSpec(["z/1"])) is None

    def test_find_refreshes_lru(self):
        store = ImageStore(20)
        keeper = image("a/1")
        other = image("b/1")
        store.put(keeper)
        store.put(other)
        store.find_satisfying(ImageSpec(["a/1"]))   # touch keeper
        store.put(image("c/1"))                     # evicts other
        assert keeper.image_id in store
        assert other.image_id not in store


class TestRemove:
    def test_remove_present(self):
        store = ImageStore(100)
        img = image("a/1")
        store.put(img)
        assert store.remove(img.image_id)
        assert store.cached_bytes == 0

    def test_remove_absent(self):
        assert not ImageStore(100).remove("ghost")
