"""Tests for repro.containers.registry.ImageRegistry."""

import pytest

from repro.containers.image import ContainerImage
from repro.containers.registry import ImageRegistry
from repro.core.spec import ImageSpec


def image(*pkgs, size=10):
    return ContainerImage(spec=ImageSpec(pkgs), size=size)


class TestPushPull:
    def test_push_then_pull(self):
        registry = ImageRegistry()
        img = image("a/1")
        canonical = registry.push(img)
        assert canonical == img.image_id
        assert registry.pull(canonical) is img
        assert registry.stats.bytes_served == 10

    def test_pull_unknown_raises_and_counts_miss(self):
        registry = ImageRegistry()
        with pytest.raises(KeyError):
            registry.pull("ghost")
        assert registry.stats.misses == 1

    def test_content_dedup_on_push(self):
        registry = ImageRegistry()
        first = image("a/1", "b/1")
        second = image("a/1", "b/1")  # same contents, different build
        id_a = registry.push(first)
        id_b = registry.push(second)
        assert id_a == id_b
        assert len(registry) == 1
        assert registry.stats.deduplicated_pushes == 1
        assert registry.stored_bytes == 10

    def test_quota_enforced(self):
        registry = ImageRegistry(capacity=15)
        registry.push(image("a/1"))
        with pytest.raises(ValueError, match="quota"):
            registry.push(image("b/1"))

    def test_negative_quota_rejected(self):
        with pytest.raises(ValueError):
            ImageRegistry(capacity=-1)


class TestFind:
    def test_smallest_satisfying(self):
        registry = ImageRegistry()
        small = image("a/1", "b/1", size=20)
        big = image("a/1", "b/1", "c/1", size=30)
        registry.push(big)
        registry.push(small)
        assert registry.find_satisfying(ImageSpec(["a/1"])) == small.image_id

    def test_find_miss(self):
        registry = ImageRegistry()
        registry.push(image("a/1"))
        assert registry.find_satisfying(ImageSpec(["z/1"])) is None
        assert registry.stats.misses == 1

    def test_find_charges_no_transfer(self):
        registry = ImageRegistry()
        registry.push(image("a/1"))
        registry.find_satisfying(ImageSpec(["a/1"]))
        assert registry.stats.bytes_served == 0


class TestDelete:
    def test_delete_and_repush(self):
        registry = ImageRegistry()
        img = image("a/1")
        registry.push(img)
        assert registry.delete(img.image_id)
        assert registry.stored_bytes == 0
        # contents index cleaned: a re-push is a fresh ingest
        other = image("a/1")
        assert registry.push(other) == other.image_id

    def test_delete_absent(self):
        assert not ImageRegistry().delete("ghost")


class TestCrossSiteScenario:
    def test_second_site_pulls_instead_of_rebuilding(self, small_sft):
        """Site A builds + pushes; site B's request is served from the
        registry at pull cost instead of a fresh Shrinkwrap build."""
        from repro.containers.builder import ImageBuilder
        from repro.cvmfs.shrinkwrap import Shrinkwrap

        registry = ImageRegistry()
        builder_a = ImageBuilder(Shrinkwrap(small_sft))
        spec = ImageSpec(small_sft.ids[:5])
        built, cost_a = builder_a.build(spec)
        registry.push(built)

        found = registry.find_satisfying(spec)
        assert found is not None
        pulled = registry.pull(found)
        assert pulled.satisfies(ImageSpec(small_sft.closure(spec.packages)))
        # transfer cost == image size, vs a full rebuild's write cost
        assert registry.stats.bytes_served == built.size
