"""Property-based tests for layered images.

The invariants behind Figure 1's argument:

1. visible contents equal the sequential replay of add/mask operations;
2. stored bytes never decrease as layers are appended (history is
   strictly additive — "old content can be masked but not removed");
3. stored bytes always dominate the bytes of the visible contents;
4. layer identity is a pure function of history.
"""

from hypothesis import given, settings, strategies as st

from repro.containers.layers import LayeredImage

PACKAGES = [f"p{i}" for i in range(12)]
SIZE = {p: (i % 5 + 1) * 10 for i, p in enumerate(PACKAGES)}

ops = st.lists(
    st.tuples(
        st.frozensets(st.sampled_from(PACKAGES), max_size=5),  # adds
        st.frozensets(st.sampled_from(PACKAGES), max_size=3),  # masks
    ),
    min_size=1,
    max_size=8,
)


def build(op_list):
    image = LayeredImage()
    for adds, masks in op_list:
        adds = adds - masks  # a layer cannot add and mask the same package
        image = image.extend(adds, SIZE.__getitem__, masks=masks)
    return image


@settings(max_examples=100)
@given(ops)
def test_visible_equals_replay(op_list):
    image = build(op_list)
    expected = set()
    for adds, masks in op_list:
        adds = adds - masks
        expected -= masks
        expected |= adds
    assert image.visible_packages == frozenset(expected)


@settings(max_examples=100)
@given(ops)
def test_stored_bytes_monotone_in_history(op_list):
    image = LayeredImage()
    previous = 0
    for adds, masks in op_list:
        adds = adds - masks
        image = image.extend(adds, SIZE.__getitem__, masks=masks)
        assert image.stored_bytes >= previous
        previous = image.stored_bytes


@settings(max_examples=100)
@given(ops)
def test_stored_dominates_visible(op_list):
    image = build(op_list)
    visible_bytes = sum(SIZE[p] for p in image.visible_packages)
    assert image.stored_bytes >= visible_bytes


@settings(max_examples=100)
@given(ops)
def test_layer_ids_deterministic_in_history(op_list):
    assert build(op_list).head_id() == build(op_list).head_id()


@settings(max_examples=100)
@given(ops, ops)
def test_distinct_histories_distinct_heads(a, b):
    if [(x - y, y) for x, y in a] != [(x - y, y) for x, y in b]:
        # Different operation sequences yield different head ids (hash
        # collisions over an 8-byte digest are negligible at this scale).
        assert build(a).head_id() != build(b).head_id() or a == b
