"""Property-based invariants of the worker-scratch ImageStore."""

from hypothesis import given, settings, strategies as st

from repro.containers.image import ContainerImage
from repro.containers.store import ImageStore
from repro.core.spec import ImageSpec

sizes = st.integers(min_value=1, max_value=40)
image_lists = st.lists(sizes, min_size=1, max_size=25)
capacities = st.integers(min_value=40, max_value=200)


@settings(max_examples=100)
@given(image_lists, capacities)
def test_capacity_never_exceeded(image_sizes, capacity):
    store = ImageStore(capacity)
    for i, size in enumerate(image_sizes):
        store.put(ContainerImage(spec=ImageSpec([f"p{i}/1"]), size=size))
        assert store.cached_bytes <= capacity


@settings(max_examples=100)
@given(image_lists, capacities)
def test_cached_bytes_equals_sum_of_resident_images(image_sizes, capacity):
    store = ImageStore(capacity)
    for i, size in enumerate(image_sizes):
        store.put(ContainerImage(spec=ImageSpec([f"p{i}/1"]), size=size))
    assert store.cached_bytes == sum(img.size for img in store.images)


@settings(max_examples=100)
@given(image_lists, capacities)
def test_eviction_accounting_balances(image_sizes, capacity):
    store = ImageStore(capacity)
    for i, size in enumerate(image_sizes):
        store.put(ContainerImage(spec=ImageSpec([f"p{i}/1"]), size=size))
    stats = store.stats
    assert stats.bytes_written == sum(image_sizes)
    assert stats.bytes_written - stats.bytes_evicted == store.cached_bytes


@settings(max_examples=100)
@given(image_lists, capacities)
def test_most_recent_image_always_resident(image_sizes, capacity):
    store = ImageStore(capacity)
    last = None
    for i, size in enumerate(image_sizes):
        last = ContainerImage(spec=ImageSpec([f"p{i}/1"]), size=size)
        store.put(last)
    assert last.image_id in store
