"""Tests for repro.containers.image."""

import pytest

from repro.containers.image import ContainerImage
from repro.core.spec import ImageSpec


class TestContainerImage:
    def test_identity_unique_per_build(self):
        spec = ImageSpec(["a/1"])
        a = ContainerImage(spec=spec, size=10)
        b = ContainerImage(spec=spec, size=10)
        assert a.image_id != b.image_id

    def test_satisfies_delegates_to_spec(self):
        image = ContainerImage(spec=ImageSpec(["a/1", "b/1"]), size=10)
        assert image.satisfies(ImageSpec(["a/1"]))
        assert not image.satisfies(ImageSpec(["c/1"]))

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ContainerImage(spec=ImageSpec(), size=-1)

    def test_lineage(self):
        parent = ContainerImage(spec=ImageSpec(["a/1"]), size=10)
        child = ContainerImage(
            spec=ImageSpec(["a/1", "b/1"]), size=20,
            parents=(parent.image_id,),
        )
        assert parent.image_id in child.parents

    def test_package_count(self):
        assert ContainerImage(spec=ImageSpec(["a/1", "b/1"]), size=1).package_count == 2

    def test_frozen(self):
        image = ContainerImage(spec=ImageSpec(), size=0)
        with pytest.raises(Exception):
            image.size = 5

    def test_default_format(self):
        assert ContainerImage(spec=ImageSpec(), size=0).format == "sif"
