"""Tests for repro.obs.server — endpoints, lifecycle, and the CLI's
`submit --serve` loop end to end (subprocess + SIGTERM)."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.core.cache import LandlordCache
from repro.obs import (
    AlertEngine,
    DecisionTracer,
    MetricsRegistry,
    ObsServer,
    SloTracker,
    build_status,
    validate_prometheus_text,
)

SIZE = {f"p{i}": 10 * (i % 5 + 1) for i in range(20)}


def get(url):
    """GET a URL; returns (status, content_type, body_text)."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return (
                response.status,
                response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type", ""), (
            error.read().decode("utf-8")
        )


def make_cache(n_requests=30):
    cache = LandlordCache(500, 0.5, SIZE.__getitem__)
    for i in range(n_requests):
        cache.request(frozenset({f"p{i % 8}", f"p{(i + 3) % 8}"}))
    return cache


@pytest.fixture()
def served():
    """A fully-wired server over a live cache; yields (server, url)."""
    cache = make_cache()
    registry = MetricsRegistry()
    registry.counter("landlord_requests_total", "Requests.").inc(
        cache.stats.requests
    )
    slo = SloTracker(window=20)
    cache.enable_slo(slo)
    cache.request(frozenset({"p0", "p1"}))  # one request through the slo
    alerts = AlertEngine()
    server = ObsServer(
        registry,
        status_fn=lambda: build_status(cache, slo=slo, alerts=alerts),
        on_scrape=lambda: slo.export_to(registry),
    )
    port = server.start()
    try:
        yield server, f"http://127.0.0.1:{port}"
    finally:
        server.stop()


class TestEndpoints:
    def test_metrics_is_valid_exposition(self, served):
        server, url = served
        status, content_type, body = get(url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        validate_prometheus_text(body)
        assert "landlord_requests_total" in body
        # the on_scrape hook mirrored the window into slo gauges
        assert 'slo_window{series="hit_rate"}' in body

    def test_healthz(self, served):
        server, url = served
        get(url + "/metrics")
        status, content_type, body = get(url + "/healthz")
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["scrapes"] == 1
        assert payload["uptime_seconds"] >= 0

    def test_statusz_shape(self, served):
        server, url = served
        status, content_type, body = get(url + "/statusz")
        assert status == 200
        payload = json.loads(body)
        assert payload["capacity_bytes"] == 500
        assert payload["alpha"] == 0.5
        assert payload["lifetime"]["requests"] == 31
        assert payload["window"]["size"] == 20
        assert "hit_rate" in payload["window"]["series"]
        assert [a["name"] for a in payload["alerts"]] == [
            "low-cache-efficiency", "eviction-storm",
        ]
        assert payload["alerts_firing"] == []

    def test_traces_404_without_tracer(self, served):
        server, url = served
        status, _, body = get(url + "/traces/3")
        assert status == 404
        assert "tracing not enabled" in body

    def test_unknown_path_lists_endpoints(self, served):
        server, url = served
        status, _, body = get(url + "/nope")
        assert status == 404
        assert "/metrics" in body and "/statusz" in body


class TestTracesEndpoint:
    def test_traces_render_explanations(self):
        tracer = DecisionTracer(limit=50)
        cache = LandlordCache(500, 0.5, SIZE.__getitem__, tracer=tracer)
        cache.request(frozenset({"p0", "p1"}))
        cache.request(frozenset({"p0", "p1", "p2"}))
        with ObsServer(tracer=tracer) as server:
            url = f"http://127.0.0.1:{server.port}"
            status, _, body = get(url + "/traces/1")
            assert status == 200
            assert "request #1" in body
            assert "request #0" not in body  # only the last 1
            status, _, body = get(url + "/traces")
            assert status == 200  # default count
            assert "request #0" in body

    def test_bad_trace_count_is_400(self):
        with ObsServer(tracer=DecisionTracer()) as server:
            url = f"http://127.0.0.1:{server.port}"
            assert get(url + "/traces/zap")[0] == 400
            assert get(url + "/traces/0")[0] == 400

    def test_empty_tracer_says_so(self):
        with ObsServer(tracer=DecisionTracer()) as server:
            status, _, body = get(
                f"http://127.0.0.1:{server.port}/traces/5"
            )
            assert status == 200
            assert "no traces recorded" in body

    def test_json_format_serves_decisions_and_spans(self):
        from repro.obs import FrozenClock, SpanRecorder

        tracer = DecisionTracer(limit=50)
        cache = LandlordCache(500, 0.5, SIZE.__getitem__, tracer=tracer)
        cache.request(frozenset({"p0", "p1"}))
        spans = SpanRecorder(limit=8, clock=FrozenClock())
        trace_id = spans.observe("apply", 0.0, 0.1, "ab" * 16).trace_id
        with ObsServer(tracer=tracer, spans=spans) as server:
            url = f"http://127.0.0.1:{server.port}"
            status, content_type, body = get(url + "/traces/5?format=json")
            assert status == 200
            assert content_type.startswith("application/json")
            payload = json.loads(body)
            assert payload["decisions"][0]["request_index"] == 0
            (trace,) = payload["traces"]
            assert trace["trace_id"] == trace_id
            assert trace["spans"][0]["name"] == "apply"

    def test_json_format_without_any_tracing_is_404(self, served=None):
        with ObsServer() as server:
            status, _, body = get(
                f"http://127.0.0.1:{server.port}/traces/5?format=json"
            )
            assert status == 404
            assert "tracing not enabled" in body

    def test_json_format_spans_only(self):
        from repro.obs import FrozenClock, SpanRecorder

        spans = SpanRecorder(limit=8, clock=FrozenClock())
        spans.observe("queue", 0.0, 0.2, "cd" * 16)
        with ObsServer(spans=spans) as server:
            status, _, body = get(
                f"http://127.0.0.1:{server.port}/traces/5?format=json"
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["decisions"] == []
            assert payload["traces"][0]["trace_id"] == "cd" * 16

    def test_unknown_traces_format_is_400(self):
        with ObsServer(tracer=DecisionTracer()) as server:
            status, _, body = get(
                f"http://127.0.0.1:{server.port}/traces/5?format=xml"
            )
            assert status == 400
            assert "use text or json" in body


class TestLifecycle:
    def test_ephemeral_port_and_url(self):
        server = ObsServer()
        assert server.port is None and server.url is None
        port = server.start()
        try:
            assert port > 0
            assert server.url == f"http://127.0.0.1:{port}"
            assert server.running
        finally:
            server.stop()
        assert not server.running
        assert server.port is None

    def test_double_start_rejected(self):
        with ObsServer() as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()

    def test_stop_is_idempotent(self):
        server = ObsServer()
        server.start()
        server.stop()
        server.stop()  # no-op, no error

    def test_empty_server_serves_empty_metrics(self):
        with ObsServer() as server:
            status, _, body = get(
                f"http://127.0.0.1:{server.port}/metrics"
            )
            assert status == 200
            assert body == ""
            status, _, body = get(
                f"http://127.0.0.1:{server.port}/statusz"
            )
            assert json.loads(body) == {}

    def test_lock_serialises_scrapes(self):
        # A held lock delays the scrape; releasing it unblocks.
        lock = threading.Lock()
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        with ObsServer(registry, lock=lock) as server:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with lock:
                thread = threading.Thread(target=get, args=(url,))
                thread.start()
                thread.join(timeout=0.2)
                assert thread.is_alive()  # blocked on the lock
            thread.join(timeout=5)
            assert not thread.is_alive()
            assert get(url)[0] == 200


class TestServeCli:
    """`submit --serve` end to end: ephemeral port, port file, live
    endpoints, clean SIGTERM shutdown with exit code 0."""

    def test_serve_until_sigterm(self, tmp_path):
        spec = tmp_path / "job.json"
        spec.write_text(json.dumps(
            {"packages": ["app-0000/1.0/x86_64-el7"]}
        ))
        port_file = tmp_path / "port.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "submit", str(spec),
             "--scale", "tiny", "--state", str(tmp_path / "state.json"),
             "--serve", "0", "--port-file", str(port_file)],
            cwd=str(Path(__file__).resolve().parents[2]),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if port_file.exists() and port_file.read_text().strip():
                    break
                assert process.poll() is None, process.communicate()[1]
                time.sleep(0.1)
            else:
                pytest.fail("port file never appeared")
            port = int(port_file.read_text().strip())
            url = f"http://127.0.0.1:{port}"
            assert json.loads(get(url + "/healthz")[2])["status"] == "ok"
            payload = json.loads(get(url + "/statusz")[2])
            assert payload["lifetime"]["requests"] == 1
            status, _, body = get(url + "/metrics")
            assert status == 200
            validate_prometheus_text(body)
            assert "landlord_requests_total" in body
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=15)
            assert process.returncode == 0, stderr
            assert "serving on http://127.0.0.1" in stdout
            assert "server stopped" in stdout
            # regression: the port file must not outlive the server —
            # a stale one makes the next ephemeral-port run unpollable
            assert not port_file.exists()
            assert not port_file.with_name(
                port_file.name + ".tmp"
            ).exists()
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_port_file_without_serve_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "job.txt"
        spec.write_text("app-0000/1.0/x86_64-el7")
        with pytest.raises(SystemExit) as excinfo:
            main([
                "submit", str(spec), "--scale", "tiny",
                "--state", str(tmp_path / "state.json"),
                "--port-file", str(tmp_path / "port.txt"),
            ])
        assert excinfo.value.code == 2
        assert "--serve" in capsys.readouterr().err


class TestServeHardening:
    """Regression tests for the three serve-path bugs: non-atomic port
    file publication, setup failures leaking the server thread, and
    scrapes racing cache mutation without a lock."""

    def test_port_file_written_atomically(self, tmp_path, monkeypatch):
        # The final name must only ever appear via rename: pollers that
        # race the write must read a complete port number or nothing.
        from repro import cli

        writes = []
        real_write_text = Path.write_text

        def recording(self, *args, **kwargs):
            writes.append(self.name)
            return real_write_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "write_text", recording)
        cli._write_port_file(str(tmp_path / "port.txt"), 4321)
        assert (tmp_path / "port.txt").read_text() == "4321\n"
        assert writes == ["port.txt.tmp"]
        assert not (tmp_path / "port.txt.tmp").exists()

    def test_port_file_replaces_stale_value(self, tmp_path):
        from repro import cli

        target = tmp_path / "port.txt"
        target.write_text("99999\n")
        cli._write_port_file(str(target), 1234)
        assert target.read_text() == "1234\n"

    def test_setup_failure_tears_down_server_thread(self, tmp_path):
        # Pre-fix, the port file was written between server.start() and
        # the try block: a bad --port-file path raised with the server
        # thread still alive, hanging the (non-daemonised) caller.
        from types import SimpleNamespace

        from repro import cli

        blocker = tmp_path / "blocker"
        blocker.write_text("")  # a *file* where a directory is needed
        args = SimpleNamespace(
            serve=0, port_file=str(blocker / "port.txt")
        )
        cache = make_cache(2)
        before = {
            t for t in threading.enumerate()
            if t.name == "repro-obs-server"
        }
        with pytest.raises(OSError):
            cli._serve_until_signal(args, cache, None, None, None, None)
        leaked = [
            t for t in threading.enumerate()
            if t.name == "repro-obs-server" and t not in before
        ]
        assert leaked == []

    def test_serve_loop_passes_shared_lock(self, monkeypatch):
        # Pre-fix, no lock reached ObsServer (or the cache): a scrape
        # could render a half-applied request.
        from types import SimpleNamespace

        import repro.obs as obs
        from repro import cli

        recorded = {}

        class Recorder:
            def __init__(self, registry=None, **kwargs):
                recorded.update(kwargs)

            def start(self):
                raise RuntimeError("recorded enough")

            def stop(self):
                pass

        monkeypatch.setattr(obs, "ObsServer", Recorder)
        cache = make_cache(2)
        args = SimpleNamespace(serve=0, port_file=None)
        with pytest.raises(RuntimeError, match="recorded enough"):
            cli._serve_until_signal(args, cache, None, None, None, None)
        assert recorded.get("lock") is not None
        assert cache.lock is recorded["lock"]

class TestFormatNegotiation:
    def test_openmetrics_query_switches_format(self, served):
        from repro.obs import validate_openmetrics_text

        _, url = served
        status, content_type, body = get(url + "/metrics?format=openmetrics")
        assert status == 200
        assert content_type.startswith("application/openmetrics-text")
        assert body.endswith("# EOF\n")
        validate_openmetrics_text(body)

    def test_prometheus_is_the_default_and_explicit(self, served):
        _, url = served
        _, default_ct, default_body = get(url + "/metrics")
        assert default_ct.startswith("text/plain")
        status, _, explicit = get(url + "/metrics?format=prometheus")
        assert status == 200
        assert explicit == default_body

    def test_unknown_format_is_400(self, served):
        _, url = served
        status, _, body = get(url + "/metrics?format=yaml")
        assert status == 400
        assert "format" in body

    def test_registryless_server_serves_bare_eof(self):
        server = ObsServer(registry=None)
        port = server.start()
        try:
            url = f"http://127.0.0.1:{port}/metrics"
            assert get(url)[2] == ""
            assert get(url + "?format=openmetrics")[2] == "# EOF\n"
        finally:
            server.stop()


class TestSweepServeCli:
    """`sweep --serve` end to end: a real multi-worker sweep streaming
    cells to the in-process collector, scraped over HTTP mid-run and
    after completion, shut down by SIGTERM with exit code 0."""

    def test_fleet_scrape_until_sigterm(self, tmp_path):
        from repro.obs import validate_openmetrics_text

        port_file = tmp_path / "port.txt"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep", "--scale", "tiny",
             "--workers", "2", "--repetitions", "2",
             "--alpha", "0.5", "0.6", "0.1",
             "--serve", "0", "--port-file", str(port_file)],
            cwd=str(Path(__file__).resolve().parents[2]),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if port_file.exists() and port_file.read_text().strip():
                    break
                assert process.poll() is None, process.communicate()[1]
                time.sleep(0.1)
            else:
                pytest.fail("port file never appeared")
            url = f"http://127.0.0.1:{int(port_file.read_text())}"
            # mid-run (or just-after) scrapes are always well-formed
            validate_prometheus_text(get(url + "/metrics")[2])
            while time.monotonic() < deadline:
                payload = json.loads(get(url + "/statusz")[2])
                if payload["telemetry"]["complete"]:
                    break
                time.sleep(0.2)
            else:
                pytest.fail("sweep never reported complete")
            assert payload["sweep"]["done"] == payload["sweep"]["total"]
            cells = payload["telemetry"]["cells"]
            assert cells["folded"] == cells["expected"] == 4
            body = get(url + "/metrics")[2]
            validate_prometheus_text(body)
            om = get(url + "/metrics?format=openmetrics")[2]
            validate_openmetrics_text(om)
            # aggregated total == sum over the per-worker series
            lines = body.splitlines()
            total = next(
                float(l.rsplit(" ", 1)[1]) for l in lines
                if l.startswith('landlord_requests_total{action="hit"}')
            )
            per_worker = sum(
                float(l.rsplit(" ", 1)[1]) for l in lines
                if l.startswith("landlord_requests_total{worker=")
                and 'action="hit"' in l
            )
            assert total == per_worker > 0
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=15)
            assert process.returncode == 0, stderr
            assert "telemetry on http://127.0.0.1" in stdout
            assert "sweep done; telemetry still on" in stdout
            assert not port_file.exists()
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
