"""Tests for repro.obs.metrics — registry, export, deterministic merge."""

import json
import math

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    DISTANCE_BUCKETS,
    MetricsRegistry,
    load_registry,
    save_registry,
)

# The strict exposition-format validator lives in the package
# (repro.obs.promcheck) so that the CI scrape smoke step and these unit
# tests run the exact same checker; re-exported here because
# tests/obs/test_cli_obs.py also imports it from this module.
from repro.obs.promcheck import (
    validate_openmetrics_text,
    validate_prometheus_text,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "Requests.")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_prebinding(self):
        c = MetricsRegistry().counter("ops_total", labelnames=("op",))
        hit = c.labels(op="hit")
        hit.inc()
        hit.inc()
        c.inc(op="miss")
        assert c.value(op="hit") == 2
        assert c.value(op="miss") == 1
        assert c.value(op="never") == 0

    def test_wrong_labels_rejected(self):
        c = MetricsRegistry().counter("ops_total", labelnames=("op",))
        with pytest.raises(ValueError):
            c.inc(kind="hit")


class TestGauge:
    def test_set_and_inc(self):
        g = MetricsRegistry().gauge("bytes")
        g.set(100)
        g.labels().inc(-30)
        assert g.value() == 70


class TestHistogram:
    def test_bucket_placement(self):
        h = MetricsRegistry().histogram("d", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 99.0):
            h.observe(v)
        child = h.labels()
        # upper bounds are inclusive: 1.0 lands in the first bucket.
        assert child.counts == [2, 1, 1, 1]
        assert child.count == 5
        assert child.sum == pytest.approx(105.0)

    def test_quantile_and_mean(self):
        h = MetricsRegistry().histogram("d", buckets=(1.0, 2.0, 4.0))
        child = h.labels()
        assert math.isnan(child.quantile(0.5))
        assert math.isnan(child.mean)
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        assert 0.0 < child.quantile(0.25) <= 1.0
        assert 2.0 < child.quantile(0.9) <= 4.0
        assert child.mean == pytest.approx(8.5 / 4)
        with pytest.raises(ValueError):
            child.quantile(1.5)

    def test_buckets_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("a", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("b", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("c", buckets=(1.0, 1.0))

    def test_default_bucket_constants(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
        assert DISTANCE_BUCKETS[-1] == 1.0
        assert len(DISTANCE_BUCKETS) == 20


class TestValidation:
    def test_bad_metric_name(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("9starts-with-digit")

    def test_reserved_and_bad_label_names(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x", labelnames=("le",))
        with pytest.raises(ValueError):
            reg.counter("y", labelnames=("bad-dash",))
        with pytest.raises(ValueError):
            reg.counter("z", labelnames=("a", "a"))


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", "Hits.")
        b = reg.counter("hits_total")
        assert a is b
        assert len(reg) == 1
        assert "hits_total" in reg
        assert reg.get("hits_total") is a
        assert reg.get("absent") is None

    def test_conflicting_reregistration_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")
        reg.counter("l", labelnames=("op",))
        with pytest.raises(ValueError):
            reg.counter("l", labelnames=("kind",))
        reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_order_independent(self):
        def build(order):
            reg = MetricsRegistry()
            c = reg.counter("ops_total", labelnames=("op",))
            for op in order:
                c.inc(op=op)
            return reg

        a = build(["hit", "miss", "hit"])
        b = build(["miss", "hit", "hit"])
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )

    def test_deterministic_snapshot_drops_wall_clock(self):
        reg = MetricsRegistry()
        reg.counter("requests_total").inc()
        reg.histogram("request_seconds").observe(0.01)
        snap = reg.deterministic_snapshot()
        assert "requests_total" in snap["families"]
        assert "request_seconds" not in snap["families"]
        # the full snapshot still carries it
        assert "request_seconds" in reg.snapshot()["families"]


class TestPrometheusExport:
    def build(self):
        reg = MetricsRegistry()
        ops = reg.counter("cache_ops_total", "Operations.", ("op",))
        ops.inc(3, op="hit")
        ops.inc(op="miss")
        reg.gauge("cached_bytes", "Bytes resident.").set(12345)
        h = reg.histogram("req_seconds", "Latency.", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        return reg

    def test_text_format_valid(self):
        validate_prometheus_text(self.build().to_prometheus())

    def test_escaping_and_values(self):
        reg = MetricsRegistry()
        reg.counter("c", labelnames=("p",)).inc(p='we"ird\nval\\ue')
        text = reg.to_prometheus()
        assert '\\"' in text and "\\n" in text and "\\\\" in text
        validate_prometheus_text(text)

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestMergeAndRoundTrip:
    def build(self, n):
        reg = MetricsRegistry()
        reg.counter("ops_total", "Ops.", ("op",)).inc(n, op="hit")
        reg.gauge("cached_bytes").set(100 * n)
        h = reg.histogram("dist", buckets=(0.5, 1.0))
        for _ in range(n):
            h.observe(0.4)
        return reg

    def test_merge_semantics(self):
        parent = self.build(2)
        parent.merge_snapshot(self.build(3).snapshot())
        assert parent.get("ops_total").value(op="hit") == 5
        # gauges take the incoming (newer) value, not the sum
        assert parent.get("cached_bytes").value() == 300
        child = parent.get("dist").labels()
        assert child.count == 5
        assert child.counts == [5, 0, 0]

    def test_merge_creates_absent_families(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(self.build(4).snapshot())
        assert parent.get("ops_total").value(op="hit") == 4

    def test_merge_bucket_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("dist", buckets=(0.5, 1.0)).observe(0.1)
        snap = self.build(1).snapshot()
        snap["families"]["dist"]["buckets"] = [0.5, 1.0, 2.0]
        snap["families"]["dist"]["series"][0]["counts"] = [1, 0, 0, 0]
        with pytest.raises(ValueError):
            parent.merge_snapshot(snap)

    def test_merge_unknown_type_rejected(self):
        snap = {"v": 1, "families": {"x": {"type": "summary", "series": []}}}
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot(snap)

    def test_from_snapshot_round_trip(self):
        reg = self.build(7)
        snap = reg.snapshot()
        clone = MetricsRegistry.from_snapshot(snap)
        assert json.dumps(clone.snapshot(), sort_keys=True) == json.dumps(
            snap, sort_keys=True
        )

    def test_merge_order_deterministic(self):
        # Counter/histogram merging commutes; folding worker snapshots
        # in submission order is what the sweep layer relies on.
        snaps = [self.build(n).snapshot() for n in (1, 2, 3)]
        a = MetricsRegistry()
        for snap in snaps:
            a.merge_snapshot(snap)
        b = MetricsRegistry()
        for snap in snaps:
            b.merge_snapshot(snap)
        assert json.dumps(a.snapshot(), sort_keys=True) == json.dumps(
            b.snapshot(), sort_keys=True
        )


class TestSaveLoad:
    def test_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits_total").inc(9)
        reg.histogram("d", buckets=(1.0,)).observe(0.5)
        path = save_registry(reg, tmp_path / "m.json")
        loaded = load_registry(path)
        assert json.dumps(loaded.snapshot(), sort_keys=True) == json.dumps(
            reg.snapshot(), sort_keys=True
        )

    def test_prom_extension_writes_text(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits_total", "Hits.").inc()
        path = save_registry(reg, tmp_path / "metrics.prom")
        text = path.read_text()
        assert "# TYPE hits_total counter" in text
        validate_prometheus_text(text)

    def test_load_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_registry(tmp_path / "absent.json")
        reg = load_registry(tmp_path / "absent.json", missing_ok=True)
        assert len(reg) == 0

    def test_load_corrupt_raises_value_error(self, tmp_path):
        bad = tmp_path / "m.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="corrupt"):
            load_registry(bad)

class TestOpenMetrics:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "Ops.", ("op",)).inc(2, op="hit")
        reg.gauge("cached_bytes").set(100)
        h = reg.histogram("req_seconds", buckets=(0.01, 0.1))
        h.observe(0.004, exemplar=(("request", "7"),))
        h.observe(0.5)
        return reg

    def test_counter_type_drops_total_samples_keep_it(self):
        text = self.build().to_openmetrics()
        assert "# TYPE ops counter" in text
        assert 'ops_total{op="hit"} 2' in text
        assert "# TYPE ops_total" not in text

    def test_terminates_with_eof(self):
        assert self.build().to_openmetrics().endswith("# EOF\n")
        assert MetricsRegistry().to_openmetrics() == "# EOF\n"

    def test_exemplar_rendered_on_its_bucket_only(self):
        text = self.build().to_openmetrics()
        assert (
            'req_seconds_bucket{le="0.01"} 1 # {request="7"} 0.004' in text
        )
        assert 'le="+Inf"} 2 #' not in text

    def test_exemplars_absent_from_classic_format(self):
        text = self.build().to_prometheus()
        assert "# {" not in text
        validate_prometheus_text(text)

    def test_validates_under_strict_checker(self):
        validate_openmetrics_text(self.build().to_openmetrics())

    def test_newest_exemplar_wins_per_bucket(self):
        h = MetricsRegistry().histogram("s", buckets=(1.0,))
        h.observe(0.5, exemplar=(("request", "1"),))
        h.observe(0.6, exemplar=(("request", "2"),))
        child = h.labels()
        assert child.exemplars[0] == ((("request", "2"),), 0.6)

    def test_oversize_exemplar_dropped_at_render(self):
        reg = MetricsRegistry()
        reg.histogram("s", buckets=(1.0,)).observe(
            0.5, exemplar=(("request", "x" * 200),)
        )
        text = reg.to_openmetrics()
        assert "# {" not in text
        validate_openmetrics_text(text)

    def test_exemplars_survive_snapshot_round_trip(self):
        reg = self.build()
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.to_openmetrics() == reg.to_openmetrics()

    def test_exemplar_merge_incoming_wins(self):
        a = MetricsRegistry()
        a.histogram("s", buckets=(1.0,)).observe(
            0.5, exemplar=(("request", "old"),)
        )
        b = MetricsRegistry()
        b.histogram("s", buckets=(1.0,)).observe(
            0.4, exemplar=(("request", "new"),)
        )
        a.merge_snapshot(b.snapshot())
        assert 'request="new"' in a.to_openmetrics()
        assert 'request="old"' not in a.to_openmetrics()


class TestExemplarTimestamps:
    """The optional wall-clock timestamp on exemplar cells."""

    def build(self):
        reg = MetricsRegistry()
        h = reg.histogram("req_seconds", buckets=(0.01, 0.1))
        h.observe(
            0.004,
            exemplar=(("trace_id", "abc123"),),
            exemplar_ts=1700000042.5,
        )
        return reg

    def test_timestamp_rendered_after_exemplar_value(self):
        text = self.build().to_openmetrics()
        assert (
            'req_seconds_bucket{le="0.01"} 1 '
            '# {trace_id="abc123"} 0.004 1700000042.5' in text
        )
        validate_openmetrics_text(text)

    def test_timestamp_absent_from_classic_format(self):
        text = self.build().to_prometheus()
        assert "1700000042.5" not in text
        validate_prometheus_text(text)

    def test_bare_exemplar_cell_stays_a_pair(self):
        # The ts-less cell shape is part of the public child API — a
        # 2-tuple, not a 3-tuple with None (the arity IS the signal).
        h = MetricsRegistry().histogram("s", buckets=(1.0,))
        h.observe(0.5, exemplar=(("request", "1"),))
        assert h.labels().exemplars[0] == ((("request", "1"),), 0.5)

    def test_timestamped_cell_is_a_triple(self):
        h = MetricsRegistry().histogram("s", buckets=(1.0,))
        h.observe(0.5, exemplar=(("request", "1"),), exemplar_ts=7.0)
        assert h.labels().exemplars[0] == ((("request", "1"),), 0.5, 7.0)

    def test_timestamps_survive_snapshot_round_trip(self):
        reg = self.build()
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.to_openmetrics() == reg.to_openmetrics()

    def test_timestamps_survive_merge(self):
        a = MetricsRegistry()
        a.histogram("req_seconds", buckets=(0.01, 0.1))
        a.merge_snapshot(self.build().snapshot())
        assert "0.004 1700000042.5" in a.to_openmetrics()

    def test_timestamp_kept_out_of_deterministic_snapshot(self):
        # *_seconds families (the only ones carrying wall-clock
        # exemplar timestamps) are excluded from deterministic merging.
        reg = self.build()
        assert "req_seconds" not in reg.deterministic_snapshot()


class TestMergeGuards:
    def test_type_conflict_names_both_kinds(self):
        reg = MetricsRegistry()
        reg.counter("x_total").inc()
        snap = {
            "v": 1,
            "families": {"x_total": {
                "type": "gauge", "labelnames": [],
                "series": [{"labels": [], "value": 1}],
            }},
        }
        with pytest.raises(ValueError, match=(
            r"cannot merge snapshot family 'x_total'.*"
            r"registered as counter, cannot re-register as gauge"
        )):
            reg.merge_snapshot(snap)

    def test_bucket_bounds_mismatch_names_both_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("d", buckets=(0.5, 1.0)).observe(0.1)
        other = MetricsRegistry()
        other.histogram("d", buckets=(0.5, 2.0)).observe(0.1)
        with pytest.raises(ValueError, match=(
            r"cannot merge snapshot family 'd'.*bucket bounds"
        )):
            reg.merge_snapshot(other.snapshot())

    def test_label_mismatch_names_both_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",)).inc(a="1")
        other = MetricsRegistry()
        other.counter("x_total", labelnames=("b",)).inc(b="1")
        with pytest.raises(ValueError, match=(
            r"cannot merge snapshot family 'x_total'.*labels"
        )):
            reg.merge_snapshot(other.snapshot())

    def test_counts_length_mismatch_is_specific(self):
        reg = MetricsRegistry()
        reg.histogram("d", buckets=(0.5, 1.0)).observe(0.1)
        snap = reg.snapshot()
        snap["families"]["d"]["series"][0]["counts"] = [1, 0]
        with pytest.raises(ValueError, match="counts"):
            MetricsRegistry.from_snapshot(reg.snapshot()).merge_snapshot(
                snap
            )
