"""Tests for repro.obs.clock — the hybrid span clock.

The clock underpins every wall-clock stamp in the tracing stack
(span starts, exemplar timestamps), so this file pins the anchor
arithmetic, the frozen test clock, and the injectable process default.
"""

import time

import pytest

from repro.obs import FrozenClock, HybridClock, default_clock, set_default_clock


class TestHybridClock:
    def test_wall_of_maps_through_the_anchor(self):
        clock = HybridClock(epoch=1000.0, anchor=50.0)
        assert clock.wall_of(50.0) == 1000.0
        assert clock.wall_of(53.5) == 1003.5
        assert clock.wall_of(49.0) == 999.0

    def test_epoch_property(self):
        assert HybridClock(epoch=1234.0, anchor=0.0).epoch == 1234.0

    def test_monotonic_is_perf_counter_timebase(self):
        clock = HybridClock()
        lo = time.perf_counter()
        mono = clock.monotonic()
        hi = time.perf_counter()
        assert lo <= mono <= hi

    def test_now_tracks_real_wall_clock(self):
        clock = HybridClock()
        assert abs(clock.now() - time.time()) < 1.0

    def test_monotonic_never_steps_backwards(self):
        clock = HybridClock()
        readings = [clock.monotonic() for _ in range(100)]
        assert readings == sorted(readings)


class TestFrozenClock:
    def test_starts_at_its_epoch(self):
        clock = FrozenClock(start=500.0)
        assert clock.monotonic() == 500.0
        assert clock.now() == 500.0

    def test_advance_moves_both_faces(self):
        clock = FrozenClock(start=100.0)
        assert clock.advance(2.5) == 102.5
        assert clock.monotonic() == 102.5
        assert clock.now() == 102.5

    def test_wall_of_is_identity_on_the_counter(self):
        clock = FrozenClock(start=100.0)
        clock.advance(7.0)
        assert clock.wall_of(103.0) == 103.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError, match="forward"):
            FrozenClock().advance(-1.0)

    def test_default_start_is_stable(self):
        # Frozen runs must be byte-identical across sessions.
        assert FrozenClock().monotonic() == 1_700_000_000.0


class TestDefaultClock:
    def test_swap_and_restore(self):
        frozen = FrozenClock()
        previous = set_default_clock(frozen)
        try:
            assert default_clock() is frozen
        finally:
            set_default_clock(previous)
        assert default_clock() is previous

    def test_none_restores_a_fresh_real_clock(self):
        previous = set_default_clock(FrozenClock())
        try:
            set_default_clock(None)
            restored = default_clock()
            assert not isinstance(restored, FrozenClock)
            assert abs(restored.now() - time.time()) < 1.0
        finally:
            set_default_clock(previous)
