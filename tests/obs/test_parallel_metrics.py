"""Cross-process metric aggregation must be bit-identical to serial.

Companion to ``tests/analysis/test_parallel.py``: the same determinism
bar, applied to the metrics registries that sweeps populate via
``merge_result_metrics``.  Wall-clock ``*_seconds`` families are
excluded by ``deterministic_snapshot`` (they genuinely differ between
machines and runs); everything else must match exactly.
"""

import json

import numpy as np

from repro.analysis.sweep import alpha_sweep, run_repetitions
from repro.htc.simulator import SimulationConfig
from repro.obs import MetricsRegistry
from repro.parallel import merge_result_metrics
from repro.util.units import GB


def tiny_config(**kw):
    base = dict(
        capacity=20 * GB, n_unique=15, repeats=3, max_selection=6,
        n_packages=300, repo_total_size=10 * GB, seed=4,
        record_timeline=False,
    )
    base.update(kw)
    return SimulationConfig(**base)


def canonical(registry: MetricsRegistry) -> str:
    return json.dumps(registry.deterministic_snapshot(), sort_keys=True)


class TestRunRepetitionsMetrics:
    def test_parallel_matches_serial_bit_identically(self):
        serial = MetricsRegistry()
        run_repetitions(tiny_config(), repetitions=3, workers=1,
                        metrics=serial)
        fanned = MetricsRegistry()
        run_repetitions(tiny_config(), repetitions=3, workers=2,
                        metrics=fanned)
        assert canonical(serial) == canonical(fanned)
        assert serial.get("landlord_requests_total") is not None

    def test_no_metrics_requested_costs_nothing(self):
        results = run_repetitions(tiny_config(), repetitions=2, workers=1)
        assert all(r.metrics is None for r in results)


class TestAlphaSweepMetrics:
    def test_parallel_sweep_metrics_match_serial(self):
        alphas = [0.6, 0.8]
        serial = MetricsRegistry()
        s_sweep = alpha_sweep(tiny_config(), alphas=alphas, repetitions=2,
                              workers=1, metrics=serial)
        fanned = MetricsRegistry()
        p_sweep = alpha_sweep(tiny_config(), alphas=alphas, repetitions=2,
                              workers=2, metrics=fanned)
        assert canonical(serial) == canonical(fanned)
        for name, values in s_sweep.series.items():
            np.testing.assert_array_equal(values, p_sweep.series[name])

    def test_sweep_accumulates_all_cells(self):
        registry = MetricsRegistry()
        alpha_sweep(tiny_config(), alphas=[0.6, 0.8], repetitions=2,
                    workers=1, metrics=registry)
        total_requests = sum(
            child.value
            for _, child in registry.get("sim_requests_total").series()
        )
        # 2 alphas x 2 repetitions x (15 unique x 3 repeats) requests
        assert total_requests == 2 * 2 * 15 * 3


class TestMergeResultMetrics:
    def test_skips_results_without_snapshots(self):
        results = run_repetitions(tiny_config(), repetitions=2, workers=1)
        registry = MetricsRegistry()
        assert merge_result_metrics(results, registry) == 0
        assert len(registry) == 0

    def test_counts_merged_snapshots(self):
        registry = MetricsRegistry()
        results = run_repetitions(tiny_config(), repetitions=2, workers=1,
                                  metrics=registry)
        fresh = MetricsRegistry()
        assert merge_result_metrics(results, fresh) == 2
        assert canonical(fresh) == canonical(registry)

class TestLiveTelemetryStream:
    """The telemetry plane must not bend the determinism bar: a live
    collector's aggregate view, fed by workers streaming cells over
    loopback HTTP, matches the serial registry bit-for-bit."""

    def test_streamed_aggregate_matches_serial(self):
        from repro.obs.telemetry import TelemetryCollector

        serial = MetricsRegistry()
        run_repetitions(tiny_config(), repetitions=3, workers=1,
                        metrics=serial)
        with TelemetryCollector() as collector:
            run_repetitions(tiny_config(), repetitions=3, workers=2,
                            telemetry=collector.url)
            status = collector.aggregator.status()
        assert status["cells"]["folded"] == 3
        assert canonical(collector.aggregator.aggregate()) == (
            canonical(serial)
        )
        assert all(
            entry["final"] for entry in status["workers"].values()
        )

    def test_sweep_streaming_matches_merged_registry(self):
        from repro.obs.telemetry import TelemetryCollector

        alphas = np.asarray([0.6, 0.8])
        merged = MetricsRegistry()
        with TelemetryCollector() as collector:
            alpha_sweep(tiny_config(), alphas=alphas, repetitions=2,
                        workers=2, metrics=merged,
                        telemetry=collector.url)
        assert collector.aggregator.status()["cells"]["folded"] == 4
        assert canonical(collector.aggregator.aggregate()) == (
            canonical(merged)
        )

    def test_serial_path_streams_as_main_worker(self):
        from repro.obs.telemetry import TelemetryCollector

        with TelemetryCollector() as collector:
            run_repetitions(tiny_config(), repetitions=2, workers=1,
                            telemetry=collector.url)
            status = collector.aggregator.status()
        assert list(status["workers"]) == ["main"]
        assert status["workers"]["main"]["cells"] == 2
        assert status["workers"]["main"]["final"] is True

    def test_dead_collector_does_not_break_the_sweep(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results = run_repetitions(
                tiny_config(), repetitions=2, workers=1,
                telemetry="http://127.0.0.1:9",
            )
        assert len(results) == 2

    def test_pool_reuse_keeps_indices_unique(self):
        from repro.obs.telemetry import TelemetryCollector
        from repro.parallel import SimulationPool
        from repro.packages.sft import build_experiment_repository

        config = tiny_config(collect_metrics=True)
        repository = build_experiment_repository(
            config.repo_kind, seed=config.seed,
            n_packages=config.n_packages,
            target_total_size=config.repo_total_size,
        )
        with TelemetryCollector() as collector:
            pool = SimulationPool(repository, workers=2,
                                  telemetry=collector.url)
            try:
                run_repetitions(config, repetitions=2, pool=pool)
                run_repetitions(config, repetitions=2, pool=pool)
            finally:
                pool.close()
            status = collector.aggregator.status()
        assert status["cells"]["folded"] == 4
        assert status["cells"]["duplicates"] == 0
