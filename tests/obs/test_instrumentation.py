"""Tests for the metric instrumentation of cache, journal, and simulator.

The contract under test: when a :class:`MetricsRegistry` is attached,
the ``landlord_*`` counters and gauges track :class:`CacheStats` and the
live cache state exactly — metrics are a view of the cache, never a
second bookkeeping system that can drift.
"""

import numpy as np

from repro.core.cache import LandlordCache
from repro.core.journal import Journal
from repro.obs import MetricsRegistry

SIZE = {f"p{i}": 10 * (i % 7 + 1) for i in range(40)}


def run_instrumented(n_requests=200, capacity=2000, alpha=0.6, seed=3):
    registry = MetricsRegistry()
    c = LandlordCache(capacity, alpha, SIZE.__getitem__, metrics=registry)
    rng = np.random.default_rng(seed)
    pids = sorted(SIZE)
    for i in range(n_requests):
        k = int(rng.integers(1, 6))
        c.request(frozenset(rng.choice(pids, size=k, replace=False)))
        if i % 50 == 49:
            c.evict_idle(max_idle_requests=10)
    return c, registry


class TestCacheMetrics:
    def test_counters_track_stats_exactly(self):
        c, reg = run_instrumented()
        stats = c.stats
        requests = reg.get("landlord_requests_total")
        assert requests.value(action="hit") == stats.hits
        assert requests.value(action="merge") == stats.merges
        assert requests.value(action="insert") == stats.inserts
        evictions = reg.get("landlord_evictions_total")
        assert evictions.value(reason="capacity") == stats.evictions_capacity
        assert evictions.value(reason="idle") == stats.evictions_idle
        assert stats.evictions_capacity > 0 and stats.evictions_idle > 0
        assert reg.get("landlord_requested_bytes_total").value() == (
            stats.requested_bytes
        )
        assert reg.get("landlord_bytes_written_total").value() == (
            stats.bytes_written
        )
        assert reg.get("landlord_candidates_examined_total").value() == (
            stats.candidates_examined
        )

    def test_gauges_track_live_state(self):
        c, reg = run_instrumented()
        assert reg.get("landlord_cached_bytes").value() == c.cached_bytes
        assert reg.get("landlord_unique_bytes").value() == c.unique_bytes
        assert reg.get("landlord_images").value() == len(c)

    def test_merge_distance_histogram_counts_merges(self):
        c, reg = run_instrumented()
        child = reg.get("landlord_merge_distance").labels()
        assert child.count == c.stats.merges > 0
        # every recorded distance respects the merge threshold
        assert child.counts[-1] == 0  # nothing beyond the last bucket (1.0)

    def test_hot_path_timers_record(self):
        c, reg = run_instrumented(n_requests=50)
        family = reg.get("landlord_request_seconds")
        assert family.labels(engine="vectorized", batched="no").count == 50
        assert family.labels(engine="vectorized", batched="yes").count == 0
        assert reg.get("landlord_subset_scan_seconds").labels().count > 0

    def test_batched_requests_use_batched_label(self):
        reg = MetricsRegistry()
        c = LandlordCache(2000, 0.6, SIZE.__getitem__, metrics=reg)
        specs = [frozenset({f"p{i % 8}", f"p{(i + 3) % 8}"}) for i in range(20)]
        c.submit_batch(specs, batch_size=8)
        family = reg.get("landlord_request_seconds")
        assert family.labels(engine="vectorized", batched="yes").count == 20
        assert family.labels(engine="vectorized", batched="no").count == 0

    def test_enable_metrics_after_history_syncs_gauges(self):
        c = LandlordCache(2000, 0.6, SIZE.__getitem__)
        c.request(frozenset({"p0", "p1"}))
        reg = MetricsRegistry()
        c.enable_metrics(reg)
        # gauges reflect current state immediately (the CLI attaches
        # after journal replay); counters start at zero, not history.
        assert reg.get("landlord_cached_bytes").value() == c.cached_bytes
        assert reg.get("landlord_requests_total").value(action="insert") == 0

    def test_conflicts_counter(self):
        from repro.packages.conflicts import SlotConflicts

        reg = MetricsRegistry()
        c = LandlordCache(10_000, 0.9, lambda p: 10,
                          conflict_policy=SlotConflicts(), metrics=reg)
        c.request(frozenset({"root/6.20", "gcc/8.0"}))
        c.request(frozenset({"root/6.18", "gcc/8.0"}))
        assert reg.get("landlord_conflicts_skipped_total").value() == (
            c.stats.conflicts_skipped
        )
        assert c.stats.conflicts_skipped >= 1


class TestJournalMetrics:
    def test_append_and_fsync_metrics(self, tmp_path):
        reg = MetricsRegistry()
        journal = Journal(tmp_path / "j.journal", metrics=reg)
        journal.append("request", packages=["p0"])
        journal.append("request", packages=["p1"])
        assert reg.get("journal_appends_total").value() == 2
        assert reg.get("journal_fsync_seconds").labels().count == 2
        assert reg.get("journal_append_seconds").labels().count == 2

    def test_compaction_metrics(self, tmp_path):
        reg = MetricsRegistry()
        journal = Journal(tmp_path / "j.journal", metrics=reg)
        for i in range(5):
            journal.append("request", packages=[f"p{i}"])
        dropped = journal.compact(upto_seq=3)
        assert dropped == 3
        assert reg.get("journal_compactions_total").value() == 1
        assert reg.get("journal_entries_dropped_total").value() == 3
        assert reg.get("journal_compact_seconds").labels().count == 1

    def test_uninstrumented_journal_still_works(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        journal.append("request", packages=["p0"])
        assert journal.last_seq == 1


class TestSimulatorMetrics:
    def test_collect_metrics_returns_snapshot(self):
        from repro.htc.simulator import SimulationConfig, simulate
        from repro.util.units import GB

        config = SimulationConfig(
            capacity=20 * GB, n_unique=15, repeats=2, max_selection=6,
            n_packages=300, repo_total_size=10 * GB, seed=4,
            record_timeline=False, collect_metrics=True,
        )
        result = simulate(config)
        assert result.metrics is not None
        reg = MetricsRegistry.from_snapshot(result.metrics)
        assert reg.get("sim_requests_total").value() == result.requests
        assert reg.get("landlord_requests_total").value(
            action="insert"
        ) == result.stats.inserts

    def test_default_run_collects_nothing(self):
        from repro.htc.simulator import SimulationConfig, simulate
        from repro.util.units import GB

        config = SimulationConfig(
            capacity=20 * GB, n_unique=10, repeats=2, max_selection=6,
            n_packages=300, repo_total_size=10 * GB, seed=4,
            record_timeline=False,
        )
        assert simulate(config).metrics is None

class TestRequestSecondsExemplars:
    """The OpenMetrics click-through: slow-bucket exemplars on
    ``landlord_request_seconds`` carry the request index, which resolves
    to a full decision narrative via ``repro-landlord explain``."""

    def run_traced(self, n_requests=30):
        from repro.obs import DecisionTracer

        registry = MetricsRegistry()
        tracer = DecisionTracer(limit=n_requests)
        c = LandlordCache(2000, 0.6, SIZE.__getitem__, metrics=registry)
        c.enable_tracing(tracer)
        rng = np.random.default_rng(5)
        pids = sorted(SIZE)
        for _ in range(n_requests):
            c.request(frozenset(rng.choice(pids, size=3, replace=False)))
        return registry, tracer, n_requests

    def exemplar_indices(self, registry):
        hist = registry.get("landlord_request_seconds")
        indices = set()
        for _, child in hist.series():
            for cell in child.exemplars or ():
                if cell is not None:
                    indices.add(int(dict(cell[0])["request"]))
        return indices

    def test_exemplars_carry_resolvable_request_indices(self):
        registry, tracer, n = self.run_traced()
        indices = self.exemplar_indices(registry)
        assert indices, "no request_seconds exemplars captured"
        for index in indices:
            assert 0 <= index < n
            explanation = tracer.explain(index)
            assert f"request #{index}" in explanation

    def test_exemplars_render_in_openmetrics_only(self):
        from repro.obs.promcheck import (
            validate_openmetrics_text,
            validate_prometheus_text,
        )

        registry, _, _ = self.run_traced()
        om = registry.to_openmetrics()
        assert 'request_seconds_bucket' in om and ' # {request="' in om
        validate_openmetrics_text(om)
        classic = registry.to_prometheus()
        assert " # {" not in classic
        validate_prometheus_text(classic)

    def test_no_metrics_means_no_exemplar_machinery(self):
        c = LandlordCache(2000, 0.6, SIZE.__getitem__)
        c.request(frozenset(["p1", "p2"]))
        assert c.stats.requests == 1
