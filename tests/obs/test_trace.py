"""Tests for repro.obs.trace — decision traces, explain, non-perturbation."""

from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import LandlordCache
from repro.obs import (
    DecisionTracer,
    MetricsRegistry,
    RequestTrace,
    TracedCandidate,
    TracedEviction,
    read_traces,
    write_traces,
)
from repro.packages.conflicts import SlotConflicts

GOLDEN = Path(__file__).parent / "data" / "explain_golden.txt"

SIZE = {"a": 10, "b": 20, "c": 30, "d": 40}


def traced_scenario():
    """The deterministic scenario behind the golden file: inserts, a
    merge with a capacity eviction, a hit, an idle eviction, and (in a
    second cache) a conflict rejection."""
    c = LandlordCache(100, 0.5, SIZE.__getitem__)
    tracer = DecisionTracer()
    c.enable_tracing(tracer)
    c.request(frozenset({"a", "b"}))
    c.request(frozenset({"c", "d"}))
    c.request(frozenset({"a", "b", "c"}))
    c.request(frozenset({"a", "b"}))
    c.request(frozenset({"d"}))
    c.evict_idle(max_idle_requests=0)

    k = LandlordCache(10_000, 0.9, lambda p: 10,
                      conflict_policy=SlotConflicts())
    kt = DecisionTracer()
    k.enable_tracing(kt)
    k.request(frozenset({"root/6.20", "gcc/8.0"}))
    k.request(frozenset({"root/6.18", "gcc/8.0"}))
    return tracer, kt


class TestExplainGolden:
    def test_explain_matches_golden_file(self):
        tracer, kt = traced_scenario()
        parts = [t.explain() for t in tracer.traces()] + [kt.explain(1)]
        assert "\n\n".join(parts) + "\n" == GOLDEN.read_text()

    def test_golden_covers_every_branch(self):
        text = GOLDEN.read_text()
        for marker in (
            "HIT image", "MERGE into image", "INSERT image",
            "chosen (closest non-conflicting)",
            "rejected: package version conflict",
            "to fit under the byte capacity", "idle too long",
            "chosen Jaccard distance",
        ):
            assert marker in text, f"golden file lost branch: {marker!r}"


class TestTracerBookkeeping:
    def test_trace_and_explain_missing(self):
        tracer = DecisionTracer()
        assert tracer.trace(0) is None
        assert "no trace recorded" in tracer.explain(3)
        assert "(empty)" in tracer.explain(3)

    def test_explain_missing_names_held_span(self):
        tracer, _ = traced_scenario()
        message = tracer.explain(99)
        assert "holding 0..4" in message

    def test_limit_keeps_most_recent(self):
        tracer = DecisionTracer(limit=2)
        c = LandlordCache(10_000, 0.0, SIZE.__getitem__, tracer=tracer)
        for pid in ("a", "b", "c"):
            c.request(frozenset({pid}))
        assert len(tracer) == 2
        assert tracer.trace(0) is None
        assert [t.request_index for t in tracer.traces()] == [1, 2]

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            DecisionTracer(limit=0)

    def test_drain_hands_out_new_traces_once(self):
        tracer = DecisionTracer()
        c = LandlordCache(10_000, 0.0, SIZE.__getitem__, tracer=tracer)
        c.request(frozenset({"a"}))
        first = tracer.drain()
        assert [t.request_index for t in first] == [0]
        assert tracer.drain() == []
        c.request(frozenset({"b"}))
        assert [t.request_index for t in tracer.drain()] == [1]
        # drained traces are still held for explain()
        assert tracer.trace(0) is not None

    def test_idle_eviction_attaches_to_latest_request(self):
        tracer, _ = traced_scenario()
        last = tracer.trace(4)
        assert [e.reason for e in last.evictions] == ["idle"]
        assert last.evictions[0].image_id == "img-000000"

    def test_idle_eviction_without_trace_is_ignored(self):
        tracer = DecisionTracer()
        tracer.on_idle_eviction(7, "img-000000", 10)  # nothing recorded yet
        assert len(tracer) == 0


class TestSerialisation:
    def full_trace(self):
        return RequestTrace(
            request_index=3, n_packages=2, requested_bytes=30, alpha=0.5,
            images_scanned=4, action="merge", image_id="img-000002",
            image_bytes=60, distance=0.25, bytes_added=10,
            candidates=(
                TracedCandidate("img-000001", 0.2, 40, "conflict"),
                TracedCandidate("img-000002", 0.25, 50, "merged"),
            ),
            evictions=(TracedEviction("img-000000", 30, "capacity"),),
        )

    def test_round_trip(self):
        trace = self.full_trace()
        assert RequestTrace.from_jsonable(trace.to_jsonable()) == trace

    def test_write_read_traces(self, tmp_path):
        tracer, _ = traced_scenario()
        path = tmp_path / "sidecar.jsonl"
        write_traces(tracer.traces(), path)
        loaded = read_traces(path)
        assert sorted(loaded) == [0, 1, 2, 3, 4]
        assert loaded[2] == tracer.trace(2)

    def test_append_and_later_lines_win(self, tmp_path):
        path = tmp_path / "sidecar.jsonl"
        old = self.full_trace()
        write_traces([old], path)
        newer = RequestTrace(
            request_index=3, n_packages=1, requested_bytes=10, alpha=0.5,
            images_scanned=0, action="insert", image_id="img-000009",
            image_bytes=10,
        )
        write_traces([newer], path, append=True)
        loaded = read_traces(path)
        assert len(loaded) == 1
        assert loaded[3] == newer


def decision_key(decision):
    return (
        decision.action.value,
        decision.image.id,
        decision.image.size,
        decision.requested_bytes,
        decision.distance,
        decision.bytes_added,
        tuple(decision.evicted),
    )


@st.composite
def request_streams(draw):
    n_packages = draw(st.integers(min_value=4, max_value=12))
    n_requests = draw(st.integers(min_value=1, max_value=25))
    return [
        frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n_packages - 1),
                    min_size=1, max_size=n_packages,
                ).map(lambda ids: {f"p{i}" for i in ids})
            )
        )
        for _ in range(n_requests)
    ]


class TestNonPerturbation:
    """Tracing and metrics must never change what the cache decides."""

    @given(
        stream=request_streams(),
        alpha=st.sampled_from([0.0, 0.3, 0.6, 0.9, 1.0]),
        capacity=st.sampled_from([40, 100, 10_000]),
    )
    @settings(max_examples=40, deadline=None)
    def test_traced_run_is_bit_identical_to_bare_run(
        self, stream, alpha, capacity
    ):
        size_of = {f"p{i}": 10 * (i + 1) for i in range(12)}.__getitem__

        bare = LandlordCache(capacity, alpha, size_of)
        instrumented = LandlordCache(
            capacity, alpha, size_of,
            metrics=MetricsRegistry(), tracer=DecisionTracer(),
        )
        bare_decisions = [decision_key(bare.request(s)) for s in stream]
        obs_decisions = [
            decision_key(instrumented.request(s)) for s in stream
        ]
        assert bare_decisions == obs_decisions
        assert bare.stats == instrumented.stats
        assert bare.evict_idle(max_idle_requests=1) == (
            instrumented.evict_idle(max_idle_requests=1)
        )
