"""Tests for repro.obs.telemetry — worker push, parent aggregation.

The determinism bar from the sweep layer applies here too: folding
worker cells strictly in submission-index order must reproduce the
serial registry bit-for-bit, whatever the arrival order, batching, or
worker assignment.  Property tests below drive that with integer-valued
observations (exactly representable, so float sums cannot blur the
comparison the way reordered IEEE folds would).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry
from repro.obs.promcheck import (
    validate_openmetrics_text,
    validate_prometheus_text,
)
from repro.obs.telemetry import (
    MAX_PUSH_FAILURES,
    TelemetryAggregator,
    TelemetryCollector,
    TelemetryPusher,
    label_snapshot,
)


def cell_snapshot(n=1, v=2.0):
    """One task's registry snapshot: counters, a gauge, a histogram."""
    reg = MetricsRegistry()
    reg.counter("landlord_requests_total", "Requests.", ("action",)).inc(
        n, action="hit"
    )
    reg.counter("landlord_hits_total", "Hits.").inc(n)
    reg.gauge("landlord_images").set(10 * n)
    reg.histogram("landlord_merge_distance", buckets=(1.0, 4.0)).observe(v)
    return reg.snapshot()


def canonical(reg: MetricsRegistry) -> str:
    return json.dumps(reg.snapshot(), sort_keys=True)


def serial_fold(snaps) -> MetricsRegistry:
    reg = MetricsRegistry()
    for snap in snaps:
        reg.merge_snapshot(snap)
    return reg


class TestLabelSnapshot:
    def test_prepends_worker_label(self):
        snap = cell_snapshot()
        labelled = label_snapshot(snap, "w1")
        fam = labelled["families"]["landlord_requests_total"]
        assert fam["labelnames"] == ["worker", "action"]
        assert fam["series"][0]["labels"] == ["w1", "hit"]
        bare = labelled["families"]["landlord_hits_total"]
        assert bare["labelnames"] == ["worker"]
        assert bare["series"][0]["labels"] == ["w1"]

    def test_input_not_modified(self):
        snap = cell_snapshot()
        before = json.dumps(snap, sort_keys=True)
        label_snapshot(snap, "w1")
        assert json.dumps(snap, sort_keys=True) == before

    def test_labelled_snapshot_merges(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(label_snapshot(cell_snapshot(), "w1"))
        reg.merge_snapshot(label_snapshot(cell_snapshot(), "w2"))
        fam = reg.get("landlord_hits_total")
        assert fam.value(worker="w1") == 1
        assert fam.value(worker="w2") == 1


class TestAggregatorCells:
    def test_out_of_order_cells_fold_in_index_order(self):
        snaps = [cell_snapshot(n, float(n)) for n in range(4)]
        agg = TelemetryAggregator()
        agg.ingest_cells("w1", [(3, snaps[3]), (1, snaps[1])])
        # only index 0..  nothing contiguous yet
        assert agg.status()["cells"]["folded"] == 0
        assert agg.status()["cells"]["pending"] == 2
        agg.ingest_cells("w2", [(0, snaps[0])])
        assert agg.status()["cells"]["folded"] == 2  # 0 then 1
        agg.ingest_cells("w2", [(2, snaps[2])])
        assert agg.status()["cells"]["folded"] == 4
        assert canonical(agg.aggregate()) == canonical(serial_fold(snaps))

    def test_duplicate_indices_dropped_and_counted(self):
        snap = cell_snapshot()
        agg = TelemetryAggregator()
        agg.ingest_cells("w1", [(0, snap)])
        agg.ingest_cells("w1", [(0, snap)])  # retried push
        agg.ingest_cells("w1", [(1, snap), (1, snap)])
        status = agg.status()
        assert status["cells"]["folded"] == 2
        assert status["cells"]["duplicates"] == 2
        assert agg.aggregate().get("landlord_hits_total").value() == 2

    def test_worker_views_track_their_own_cells(self):
        agg = TelemetryAggregator()
        agg.ingest_cells("w1", [(0, cell_snapshot(1))])
        agg.ingest_cells("w2", [(1, cell_snapshot(5))])
        views = dict(agg.worker_registries())
        assert views["w1"].get("landlord_hits_total").value() == 1
        assert views["w2"].get("landlord_hits_total").value() == 5

    def test_status_counters_and_progress(self):
        agg = TelemetryAggregator(expected_cells=3)
        agg.register_worker("idle")
        agg.ingest_cells("w1", [(0, cell_snapshot(2))], final=True)
        status = agg.status()
        assert status["workers"]["idle"]["mode"] is None
        w1 = status["workers"]["w1"]
        assert w1["mode"] == "cells"
        assert w1["final"] is True
        assert w1["hits"] == 2
        assert w1["requests"] == 2
        assert status["cells"] == {
            "folded": 1, "pending": 0, "duplicates": 0, "expected": 3,
        }
        assert status["complete"] is False
        agg.mark_complete()
        assert agg.status()["complete"] is True


class TestAggregatorCumulative:
    def test_push_replaces_not_sums(self):
        agg = TelemetryAggregator()
        agg.ingest("client", cell_snapshot(2))
        agg.ingest("client", cell_snapshot(5))
        assert agg.aggregate().get("landlord_hits_total").value() == 5
        assert agg.status()["workers"]["client"]["pushes"] == 2

    def test_base_registry_included_live(self):
        base = MetricsRegistry()
        base.counter("service_submissions_total").inc(3)
        agg = TelemetryAggregator(base=base)
        agg.ingest("client", cell_snapshot(1))
        out = agg.aggregate()
        assert out.get("service_submissions_total").value() == 3
        assert out.get("landlord_hits_total").value() == 1
        base.get("service_submissions_total").inc()  # live, not a copy
        assert agg.aggregate().get("service_submissions_total").value() == 4


class TestFleetRender:
    def test_no_workers_renders_like_bare_registry(self):
        base = MetricsRegistry()
        base.counter("service_submissions_total", "S.", ("outcome",)).inc(
            12, outcome="accepted"
        )
        base.histogram("service_wait_seconds").observe(0.01)
        agg = TelemetryAggregator(base=base)
        assert agg.to_prometheus() == base.to_prometheus()
        assert agg.to_openmetrics() == base.to_openmetrics()

    def test_worker_series_under_one_type_block(self):
        agg = TelemetryAggregator()
        agg.ingest_cells("w1", [(0, cell_snapshot(1))])
        agg.ingest_cells("w2", [(1, cell_snapshot(2))])
        text = agg.to_prometheus()
        assert text.count("# TYPE landlord_hits_total counter") == 1
        assert "landlord_hits_total 3" in text  # aggregate first
        assert 'landlord_hits_total{worker="w1"} 1' in text
        assert 'landlord_hits_total{worker="w2"} 2' in text
        assert 'landlord_requests_total{worker="w1",action="hit"} 1' in text

    def test_both_formats_validate(self):
        agg = TelemetryAggregator()
        agg.ingest_cells("w1", [(0, cell_snapshot(1))])
        agg.ingest("w2", cell_snapshot(2))
        validate_prometheus_text(agg.to_prometheus())
        validate_openmetrics_text(agg.to_openmetrics())

    def test_openmetrics_ends_with_eof(self):
        agg = TelemetryAggregator()
        assert agg.to_openmetrics().rstrip("\n").endswith("# EOF")
        agg.ingest_cells("w1", [(0, cell_snapshot())])
        assert agg.to_openmetrics().rstrip("\n").endswith("# EOF")


class TestIngestPayload:
    def test_register_cells_final_shapes(self):
        agg = TelemetryAggregator()
        ack = agg.ingest_payload({"worker": "w1", "register": True})
        assert ack == {"ok": True, "workers": 1, "cells_folded": 0}
        ack = agg.ingest_payload({
            "worker": "w1", "mode": "cells",
            "cells": [[0, cell_snapshot()]],
        })
        assert ack["cells_folded"] == 1
        agg.ingest_payload({"worker": "w1", "final": True})
        assert agg.status()["workers"]["w1"]["final"] is True

    def test_cumulative_shape(self):
        agg = TelemetryAggregator()
        agg.ingest_payload({
            "worker": "c", "mode": "cumulative",
            "snapshot": cell_snapshot(4),
        })
        assert agg.aggregate().get("landlord_hits_total").value() == 4

    @pytest.mark.parametrize("payload", [
        "not a dict",
        {},
        {"worker": ""},
        {"worker": "w"},
        {"worker": "w", "mode": "cells", "cells": "nope"},
        {"worker": "w", "mode": "cumulative", "snapshot": [1, 2]},
        {"worker": "w", "mode": "unknown"},
    ])
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            TelemetryAggregator().ingest_payload(payload)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.read().decode(),
            response.headers.get("Content-Type"),
        )


class TestCollectorHTTP:
    def test_push_scrape_round_trip(self):
        snaps = [cell_snapshot(n, float(n)) for n in range(3)]
        with TelemetryCollector() as collector:
            pusher = TelemetryPusher(collector.url, worker="w1")
            assert pusher.register()
            # out-of-order arrival: fold must still be index-ordered
            assert pusher.push_cells([(2, snaps[2])])
            assert pusher.push_cells([(0, snaps[0]), (1, snaps[1])])
            assert pusher.finalize()
            assert pusher.pushed == 4

            prom, ct = _get(f"{collector.url}/metrics")
            assert ct.startswith("text/plain")
            validate_prometheus_text(prom)
            assert 'landlord_hits_total{worker="w1"} 3' in prom

            om, ct = _get(f"{collector.url}/metrics?format=openmetrics")
            assert ct.startswith("application/openmetrics-text")
            validate_openmetrics_text(om)

            status, _ = _get(f"{collector.url}/statusz")
            telemetry = json.loads(status)["telemetry"]
            assert telemetry["workers"]["w1"]["final"] is True
            assert telemetry["cells"]["folded"] == 3
        assert canonical(collector.aggregator.aggregate()) == canonical(
            serial_fold(snaps)
        )

    def test_status_extra_merged_into_statusz(self):
        with TelemetryCollector(
            status_extra=lambda: {"sweep": {"done": 2, "total": 8}}
        ) as collector:
            body, _ = _get(f"{collector.url}/statusz")
            assert json.loads(body)["sweep"] == {"done": 2, "total": 8}

    def test_bad_post_is_400_not_a_crash(self):
        with TelemetryCollector() as collector:
            request = urllib.request.Request(
                f"{collector.url}/telemetry",
                data=b'{"worker": "w", "mode": "unknown"}',
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(request, timeout=10)
            assert exc_info.value.code == 400
            # still alive and serving
            body, _ = _get(f"{collector.url}/healthz")
            assert json.loads(body)["status"] == "ok"

    def test_post_elsewhere_is_404(self):
        with TelemetryCollector() as collector:
            request = urllib.request.Request(
                f"{collector.url}/metrics", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(request, timeout=10)
            assert exc_info.value.code == 404

    def test_concurrent_pushers_fold_completely(self):
        snaps = [cell_snapshot(n % 3 + 1, float(n)) for n in range(12)]
        with TelemetryCollector() as collector:

            def push(worker, indices):
                pusher = TelemetryPusher(collector.url, worker=worker)
                for index in indices:
                    pusher.push_cells([(index, snaps[index])])
                pusher.finalize()

            threads = [
                threading.Thread(
                    target=push, args=(f"w{k}", range(k, 12, 3))
                )
                for k in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert collector.aggregator.status()["cells"]["folded"] == 12
        assert canonical(collector.aggregator.aggregate()) == canonical(
            serial_fold(snaps)
        )


class TestPusherFailureTolerance:
    def test_dead_endpoint_never_raises(self):
        # A port from the ephemeral range with nothing listening.
        pusher = TelemetryPusher(
            "http://127.0.0.1:9", worker="w", timeout=0.2
        )
        assert pusher.push_cells([(0, cell_snapshot())]) is False
        assert pusher.pushed == 0

    def test_disables_after_consecutive_failures(self):
        pusher = TelemetryPusher(
            "http://127.0.0.1:9", worker="w", timeout=0.2
        )
        with pytest.warns(RuntimeWarning, match="disabled after"):
            for _ in range(MAX_PUSH_FAILURES):
                pusher.finalize()
        assert pusher.enabled is False
        # further pushes are free no-ops
        assert pusher.push(cell_snapshot()) is False

    def test_success_resets_the_failure_run(self):
        with TelemetryCollector() as collector:
            pusher = TelemetryPusher(collector.url, worker="w")
            bad = TelemetryPusher(
                "http://127.0.0.1:9", worker="w", timeout=0.2
            )
            for _ in range(MAX_PUSH_FAILURES - 1):
                bad.finalize()
            assert bad.enabled is True
            assert pusher.register()
            assert pusher.enabled is True

    def test_url_normalisation(self):
        assert TelemetryPusher("http://h:1").url == "http://h:1/telemetry"
        assert (
            TelemetryPusher("http://h:1/telemetry").url
            == "http://h:1/telemetry"
        )


# -- property tests ---------------------------------------------------------

# Integer observations keep histogram sums exactly representable, so
# fold-order comparisons below are bit-exact by construction and any
# mismatch is a real aggregation bug, not float noise.
cells_strategy = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 6)),
    min_size=1, max_size=12,
).map(
    lambda raw: [cell_snapshot(n, float(v)) for n, v in raw]
)


class TestMergeProperties:
    @settings(max_examples=25, deadline=None)
    @given(cells=cells_strategy, split=st.integers(1, 11))
    def test_merge_is_associative(self, cells, split):
        split = min(split, len(cells))
        left = serial_fold(cells[:split])
        left.merge_snapshot(serial_fold(cells[split:]).snapshot())
        assert canonical(left) == canonical(serial_fold(cells))

    @settings(max_examples=25, deadline=None)
    @given(cells=cells_strategy, workers=st.integers(1, 4),
           seed=st.integers(0, 2**16))
    def test_fold_bit_identical_across_worker_counts_and_orders(
        self, cells, workers, seed
    ):
        import random

        rng = random.Random(seed)
        batches = [
            (f"w{i % workers}", i, snap) for i, snap in enumerate(cells)
        ]
        rng.shuffle(batches)  # arbitrary arrival interleaving
        agg = TelemetryAggregator()
        for worker, index, snap in batches:
            agg.ingest_cells(worker, [(index, snap)])
        assert agg.status()["cells"]["folded"] == len(cells)
        assert canonical(agg.aggregate()) == canonical(serial_fold(cells))

    @settings(max_examples=25, deadline=None)
    @given(cells=cells_strategy)
    def test_worker_labelled_ingest_commutes(self, cells):
        # Per-worker series are disjoint under the worker label, so the
        # fleet exposition is independent of ingest order.
        forward = TelemetryAggregator()
        backward = TelemetryAggregator()
        for i, snap in enumerate(cells):
            forward.ingest(f"w{i}", snap)
        for i, snap in reversed(list(enumerate(cells))):
            backward.ingest(f"w{i}", snap)
        assert forward.to_prometheus() == backward.to_prometheus()
        assert forward.to_openmetrics() == backward.to_openmetrics()
