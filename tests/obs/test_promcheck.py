"""Tests for repro.obs.promcheck — the OpenMetrics validator surface.

The classic-format checker is exercised throughout the obs test suite;
this file pins the OpenMetrics-specific rules (EOF discipline, counter
suffix handling, exemplar placement and the 128-rune limit) against
hand-built bodies, accept and reject both.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.promcheck import (
    EXEMPLAR_MAX_RUNES,
    main,
    validate_openmetrics_text,
    validate_prometheus_text,
)


def fleet_body():
    reg = MetricsRegistry()
    reg.counter("requests_total", "R.", ("action",)).inc(3, action="hit")
    reg.gauge("images").set(7)
    hist = reg.histogram("request_seconds", buckets=(0.01, 0.1))
    hist.observe(0.004, exemplar=(("request", "42"),))
    hist.observe(0.5)
    return reg.to_openmetrics()


GOOD = """\
# TYPE requests counter
requests_total 5
requests_created 1.2
# TYPE request_seconds histogram
request_seconds_bucket{le="0.01"} 2 # {request="42"} 0.004
request_seconds_bucket{le="+Inf"} 3
request_seconds_sum 0.51
request_seconds_count 3
# EOF
"""


class TestAcceptance:
    def test_registry_output_accepted(self):
        validate_openmetrics_text(fleet_body())

    def test_hand_built_body_with_created_accepted(self):
        validate_openmetrics_text(GOOD)

    def test_counter_exemplar_accepted(self):
        validate_openmetrics_text(
            "# TYPE ops counter\n"
            'ops_total 2 # {trace="abc"} 1\n'
            "# EOF\n"
        )


class TestRejections:
    def test_missing_eof(self):
        with pytest.raises(AssertionError, match="EOF"):
            validate_openmetrics_text("# TYPE x gauge\nx 1\n")

    def test_early_eof(self):
        with pytest.raises(AssertionError, match="before the end"):
            validate_openmetrics_text("# EOF\n# TYPE x gauge\nx 1\n# EOF\n")

    def test_counter_type_keeping_total_suffix(self):
        with pytest.raises(AssertionError, match="_total suffix"):
            validate_openmetrics_text(
                "# TYPE ops_total counter\nops_total 1\n# EOF\n"
            )

    def test_counter_sample_without_total(self):
        with pytest.raises(AssertionError, match="without _total"):
            validate_openmetrics_text(
                "# TYPE ops counter\nops 1\n# EOF\n"
            )

    def test_exemplar_on_gauge(self):
        with pytest.raises(AssertionError, match="exemplar on a non"):
            validate_openmetrics_text(
                "# TYPE images gauge\n"
                'images 7 # {request="1"} 2\n'
                "# EOF\n"
            )

    def test_exemplar_on_histogram_sum(self):
        with pytest.raises(AssertionError, match="exemplar on a non"):
            validate_openmetrics_text(
                "# TYPE s histogram\n"
                's_bucket{le="+Inf"} 1\n'
                's_sum 0.5 # {request="1"} 0.5\n'
                "s_count 1\n"
                "# EOF\n"
            )

    def test_exemplar_label_set_over_128_runes(self):
        fat = "v" * (EXEMPLAR_MAX_RUNES + 1)
        with pytest.raises(AssertionError, match="128 runes"):
            validate_openmetrics_text(
                "# TYPE s histogram\n"
                f's_bucket{{le="+Inf"}} 1 # {{k="{fat}"}} 0.5\n'
                "s_sum 0.5\n"
                "s_count 1\n"
                "# EOF\n"
            )

    def test_malformed_exemplar_labels(self):
        with pytest.raises(AssertionError, match="malformed exemplar"):
            validate_openmetrics_text(
                "# TYPE s histogram\n"
                's_bucket{le="+Inf"} 1 # {not labels} 0.5\n'
                "s_sum 0.5\n"
                "s_count 1\n"
                "# EOF\n"
            )

    def test_sample_before_type(self):
        with pytest.raises(AssertionError, match="sample before TYPE"):
            validate_openmetrics_text("ops_total 1\n# EOF\n")

    def test_classic_checker_still_strict(self):
        with pytest.raises(AssertionError, match="sample before TYPE"):
            validate_prometheus_text("loose_metric 1\n")


def _histogram_body(bucket_line: str) -> str:
    return (
        "# TYPE s histogram\n"
        f"{bucket_line}\n"
        's_bucket{le="+Inf"} 1\n'
        "s_sum 0.5\n"
        "s_count 1\n"
        "# EOF\n"
    )


class TestExemplarTimestamps:
    """The optional wall-clock timestamp token after the exemplar value."""

    def test_timestamp_accepted_on_bucket(self):
        validate_openmetrics_text(_histogram_body(
            's_bucket{le="0.01"} 1 # {trace_id="abc"} 0.004 1700000042.5'
        ))

    def test_timestamp_accepted_on_counter_total(self):
        validate_openmetrics_text(
            "# TYPE ops counter\n"
            'ops_total 2 # {trace_id="abc"} 1 1700000042.5\n'
            "# EOF\n"
        )

    def test_registry_emitted_timestamps_accepted(self):
        reg = MetricsRegistry()
        hist = reg.histogram("request_seconds", buckets=(0.01, 0.1))
        hist.observe(
            0.004, exemplar=(("trace_id", "abc"),),
            exemplar_ts=1700000042.5,
        )
        validate_openmetrics_text(reg.to_openmetrics())

    def test_non_float_timestamp_rejected(self):
        with pytest.raises(AssertionError, match="timestamp not finite"):
            validate_openmetrics_text(_histogram_body(
                's_bucket{le="0.01"} 1 # {trace_id="abc"} 0.004 yesterday'
            ))

    def test_nan_timestamp_rejected(self):
        with pytest.raises(AssertionError, match="timestamp not finite"):
            validate_openmetrics_text(_histogram_body(
                's_bucket{le="0.01"} 1 # {trace_id="abc"} 0.004 NaN'
            ))

    def test_negative_timestamp_rejected(self):
        with pytest.raises(AssertionError, match="before the epoch"):
            validate_openmetrics_text(_histogram_body(
                's_bucket{le="0.01"} 1 # {trace_id="abc"} 0.004 -5.0'
            ))

    def test_two_timestamps_fail_the_grammar(self):
        with pytest.raises(AssertionError, match="unparseable"):
            validate_openmetrics_text(_histogram_body(
                's_bucket{le="0.01"} 1 # {trace_id="abc"} 0.004 1.0 2.0'
            ))

    def test_non_float_exemplar_value_rejected(self):
        with pytest.raises(AssertionError, match="value not a finite"):
            validate_openmetrics_text(_histogram_body(
                's_bucket{le="0.01"} 1 # {trace_id="abc"} fast'
            ))

    def test_auto_detect_mode_checks_timestamps(self, tmp_path, capsys):
        path = tmp_path / "scrape.txt"
        path.write_text(_histogram_body(
            's_bucket{le="0.01"} 1 # {trace_id="abc"} 0.004 bogus'
        ))
        assert main([str(path)]) == 1
        assert "timestamp" in capsys.readouterr().err


class TestExemplarAwareHistogramChecks:
    def test_noncumulative_buckets_caught_despite_exemplar(self):
        body = (
            "# TYPE s histogram\n"
            's_bucket{le="0.01"} 5 # {request="1"} 0.004\n'
            's_bucket{le="+Inf"} 3\n'
            "s_sum 0.5\n"
            "s_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(AssertionError, match="not cumulative"):
            validate_openmetrics_text(body)


class TestMainCli:
    def test_auto_detects_openmetrics(self, tmp_path, capsys):
        path = tmp_path / "scrape.txt"
        path.write_text(fleet_body())
        assert main([str(path)]) == 0
        assert "openmetrics" in capsys.readouterr().out

    def test_forced_openmetrics_flag(self, tmp_path, capsys):
        path = tmp_path / "scrape.txt"
        path.write_text("# TYPE x gauge\nx 1\n")  # no EOF marker
        assert main(["--openmetrics", str(path)]) == 1
        assert "invalid openmetrics" in capsys.readouterr().err

    def test_classic_body_detected_and_ok(self, tmp_path, capsys):
        reg = MetricsRegistry()
        reg.counter("ops_total").inc(2)
        path = tmp_path / "scrape.txt"
        path.write_text(reg.to_prometheus())
        assert main([str(path)]) == 0
        assert "prometheus" in capsys.readouterr().out
