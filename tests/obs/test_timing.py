"""Tests for repro.obs.timing.SpanClock."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import SpanClock


class TestNoOpClock:
    def test_disabled_clock_is_inert(self):
        clock = SpanClock(None)
        assert not clock.enabled
        with clock.span("anything"):
            pass
        clock.observe("anything", 1.0)  # swallowed, no registry to touch


class TestRecording:
    def test_span_records_into_named_histogram(self):
        reg = MetricsRegistry()
        clock = SpanClock(reg, prefix="journal")
        assert clock.enabled
        with clock.span("compact"):
            pass
        family = reg.get("journal_compact_seconds")
        assert family is not None
        child = family.labels()
        assert child.count == 1
        assert child.sum >= 0.0

    def test_nested_spans_join_names(self):
        reg = MetricsRegistry()
        clock = SpanClock(reg)
        with clock.span("flush"):
            with clock.span("compact"):
                pass
        assert reg.get("span_flush_compact_seconds").labels().count == 1
        assert reg.get("span_flush_seconds").labels().count == 1

    def test_span_records_on_exception(self):
        reg = MetricsRegistry()
        clock = SpanClock(reg)
        try:
            with clock.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert reg.get("span_boom_seconds").labels().count == 1
        # the stack unwound: the next span is not nested under "boom"
        with clock.span("after"):
            pass
        assert reg.get("span_after_seconds") is not None

    def test_observe_records_external_duration(self):
        reg = MetricsRegistry()
        clock = SpanClock(reg, buckets=(0.1, 1.0))
        clock.observe("fsync", 0.05)
        clock.observe("fsync", 0.5)
        child = reg.get("span_fsync_seconds").labels()
        assert child.count == 2
        assert child.counts == [1, 1, 0]
        assert child.sum == 0.55

    def test_wall_clock_names_excluded_from_deterministic_snapshot(self):
        reg = MetricsRegistry()
        clock = SpanClock(reg)
        with clock.span("anything"):
            pass
        assert "span_anything_seconds" not in (
            reg.deterministic_snapshot()["families"]
        )
