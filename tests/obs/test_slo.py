"""Tests for repro.obs.slo — rolling windows, streaming quantiles,
and the SloTracker series the alert engine and dashboard consume."""

import math

import pytest

from repro.core.cache import LandlordCache
from repro.obs import MetricsRegistry, SLO_SERIES, RollingWindow, SloTracker
from repro.obs.slo import DEFAULT_WINDOW, quantile_from_buckets

SIZE = {f"p{i}": 10 * (i % 7 + 1) for i in range(20)}


class TestRollingWindow:
    def test_sum_and_mean_track_pushes(self):
        w = RollingWindow(3)
        assert len(w) == 0
        assert math.isnan(w.mean)
        w.push(1.0)
        w.push(2.0)
        assert w.sum == 3.0
        assert w.mean == pytest.approx(1.5)

    def test_oldest_expires_when_full(self):
        w = RollingWindow(2)
        for v in (1.0, 2.0, 3.0, 4.0):
            w.push(v)
        assert len(w) == 2
        assert w.sum == 7.0  # only 3.0 and 4.0 remain

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            RollingWindow(0)


class TestQuantileFromBuckets:
    UPPERS = (1.0, 2.0, 4.0)

    def test_empty_is_nan(self):
        assert math.isnan(quantile_from_buckets(self.UPPERS, [0, 0, 0, 0], 0.5))

    def test_interpolates_within_bucket(self):
        # 10 samples, all in (1.0, 2.0]: the median sits mid-bucket.
        q = quantile_from_buckets(self.UPPERS, [0, 10, 0, 0], 0.5)
        assert 1.0 < q <= 2.0
        assert q == pytest.approx(1.5)

    def test_extremes_hit_bucket_edges(self):
        counts = [5, 5, 0, 0]
        assert quantile_from_buckets(self.UPPERS, counts, 0.0) == 0.0
        assert quantile_from_buckets(self.UPPERS, counts, 1.0) == 2.0

    def test_overflow_bucket_clamps_to_last_upper(self):
        # Samples beyond the last bound can't extrapolate past it.
        q = quantile_from_buckets(self.UPPERS, [0, 0, 0, 4], 0.99)
        assert q == 4.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            quantile_from_buckets(self.UPPERS, [1, 0, 0, 0], 1.5)


def feed(tracker, actions, **overrides):
    """Feed a sequence of minimal requests into a tracker."""
    defaults = dict(
        requested_bytes=100, bytes_written=0, used_bytes=100,
        evictions=0, latency_s=None, cached_bytes=500,
        unique_bytes=400, images=5,
    )
    defaults.update(overrides)
    for action in actions:
        tracker.on_request(action=action, **defaults)


class TestSloTracker:
    def test_empty_window_is_all_nan_rates(self):
        values = SloTracker(window=10).values()
        assert set(values) == set(SLO_SERIES)
        assert values["window_requests"] == 0.0
        for name in ("hit_rate", "merge_rate", "eviction_rate",
                     "latency_p50"):
            assert math.isnan(values[name])

    def test_action_mix_over_window(self):
        t = SloTracker(window=4)
        feed(t, ["hit", "hit", "merge", "insert"])
        values = t.values()
        assert values["hit_rate"] == pytest.approx(0.5)
        assert values["merge_rate"] == pytest.approx(0.25)
        assert values["insert_rate"] == pytest.approx(0.25)
        assert values["window_requests"] == 4.0

    def test_window_expiry_forgets_old_actions(self):
        t = SloTracker(window=2)
        feed(t, ["insert", "insert", "hit", "hit"])
        assert t.values()["hit_rate"] == 1.0
        assert t.values()["insert_rate"] == 0.0
        assert t.window_requests == 2
        assert t.requests == 4  # lifetime counter keeps going

    def test_byte_rates_and_container_efficiency(self):
        t = SloTracker(window=10)
        feed(t, ["merge", "merge"], requested_bytes=50, bytes_written=200,
             used_bytes=100)
        values = t.values()
        assert values["write_bytes_per_request"] == pytest.approx(200.0)
        assert values["requested_bytes_per_request"] == pytest.approx(50.0)
        assert values["container_efficiency"] == pytest.approx(0.5)

    def test_eviction_rate_is_per_request(self):
        t = SloTracker(window=10)
        feed(t, ["insert"], evictions=3)
        feed(t, ["hit"], evictions=0)
        assert t.values()["eviction_rate"] == pytest.approx(1.5)

    def test_gauges_reflect_last_request(self):
        t = SloTracker(window=10)
        t.configure(capacity=1000, alpha=0.6)
        feed(t, ["hit"], cached_bytes=250, unique_bytes=200, images=3)
        values = t.values()
        assert values["occupancy"] == pytest.approx(0.25)
        assert values["cache_efficiency"] == pytest.approx(0.8)
        assert values["images"] == 3.0

    def test_unique_bytes_none_makes_cache_efficiency_nan(self):
        # Event-stream replays cannot reconstruct package overlap.
        t = SloTracker(window=10)
        feed(t, ["hit"], unique_bytes=None)
        assert math.isnan(t.values()["cache_efficiency"])

    def test_empty_cache_efficiency_is_one(self):
        t = SloTracker(window=10)
        feed(t, ["hit"], cached_bytes=0, unique_bytes=0)
        assert t.values()["cache_efficiency"] == 1.0

    def test_unconfigured_capacity_makes_occupancy_nan(self):
        t = SloTracker(window=10)
        feed(t, ["hit"])
        assert math.isnan(t.values()["occupancy"])

    def test_latency_none_leaves_quantiles_nan(self):
        t = SloTracker(window=10)
        feed(t, ["hit", "hit", "hit"], latency_s=None)
        values = t.values()
        assert math.isnan(values["latency_p50"])
        assert math.isnan(values["latency_p99"])
        # ... without perturbing the deterministic series
        assert values["hit_rate"] == 1.0

    def test_latency_quantiles_from_samples(self):
        t = SloTracker(window=100, buckets=(0.001, 0.01, 0.1))
        feed(t, ["hit"] * 9, latency_s=0.0005)
        feed(t, ["hit"], latency_s=0.05)
        assert t.values()["latency_p50"] <= 0.001
        assert 0.01 < t.values()["latency_p99"] <= 0.1
        assert t.latency_quantile(0.5) == t.values()["latency_p50"]

    def test_latency_window_expiry_mixes_none_and_samples(self):
        # None samples expire without corrupting the bucket counts.
        t = SloTracker(window=2, buckets=(0.001, 0.01))
        feed(t, ["hit"], latency_s=None)
        feed(t, ["hit"], latency_s=0.005)
        feed(t, ["hit"], latency_s=0.005)  # expires the None sample
        feed(t, ["hit"], latency_s=None)   # expires one real sample
        assert 0.001 < t.latency_quantile(0.5) <= 0.01

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            SloTracker(window=0)

    def test_default_window(self):
        assert SloTracker().window == DEFAULT_WINDOW


class TestExportTo:
    def test_exports_gauges_and_skips_nan(self):
        t = SloTracker(window=10)
        t.configure(capacity=1000, alpha=0.5)
        feed(t, ["hit", "merge"])
        reg = MetricsRegistry()
        t.export_to(reg)
        gauge = reg.get("slo_window")
        assert gauge.value(series="hit_rate") == pytest.approx(0.5)
        assert gauge.value(series="occupancy") == pytest.approx(0.5)
        exported = {labels[0] for labels, _ in gauge.series()}
        # latency was never measured; its gauges must not exist at all
        assert "latency_p50" not in exported

    def test_repeated_export_overwrites(self):
        t = SloTracker(window=10)
        reg = MetricsRegistry()
        feed(t, ["insert"])
        t.export_to(reg)
        feed(t, ["hit", "hit", "hit"])
        t.export_to(reg)
        assert reg.get("slo_window").value(series="hit_rate") == (
            pytest.approx(0.75)
        )


class TestCacheIntegration:
    def test_enable_slo_configures_and_tracks(self):
        cache = LandlordCache(2000, 0.5, SIZE.__getitem__)
        slo = SloTracker(window=50)
        cache.enable_slo(slo)
        assert slo.capacity == 2000
        assert slo.alpha == 0.5
        assert cache.slo is slo
        for i in range(8):
            cache.request(frozenset({f"p{i % 4}", f"p{(i + 1) % 4}"}))
        assert slo.requests == 8
        values = slo.values()
        stats = cache.stats
        assert values["hit_rate"] == pytest.approx(stats.hits / 8)
        assert values["merge_rate"] == pytest.approx(stats.merges / 8)
        assert values["insert_rate"] == pytest.approx(stats.inserts / 8)
        assert values["occupancy"] == pytest.approx(
            cache.cached_bytes / cache.capacity
        )
        assert values["cache_efficiency"] == pytest.approx(
            cache.cache_efficiency
        )
        # the live hot path measures wall-clock latency
        assert not math.isnan(values["latency_p50"])

    def test_ctor_kwarg_attaches_tracker(self):
        slo = SloTracker()
        cache = LandlordCache(2000, 0.5, SIZE.__getitem__, slo=slo)
        cache.request(frozenset({"p1"}))
        assert slo.requests == 1

    def test_window_byte_rates_match_lifetime_when_window_covers_all(self):
        cache = LandlordCache(10_000, 0.4, SIZE.__getitem__)
        slo = SloTracker(window=1000)
        cache.enable_slo(slo)
        for i in range(12):
            cache.request(frozenset({f"p{i % 6}", f"p{(i * 3) % 6}"}))
        stats = cache.stats
        values = slo.values()
        assert values["requested_bytes_per_request"] == pytest.approx(
            stats.requested_bytes / stats.requests
        )
        assert values["write_bytes_per_request"] == pytest.approx(
            stats.bytes_written / stats.requests
        )
        assert values["container_efficiency"] == pytest.approx(
            stats.container_efficiency
        )


class TestExtras:
    """set_extra: host gauges riding alongside the built-in series."""

    def test_extra_appears_in_values(self):
        slo = SloTracker(window=4)
        slo.set_extra("queue_depth", 7)
        assert slo.values()["queue_depth"] == 7.0

    def test_extra_retracted_with_none(self):
        slo = SloTracker(window=4)
        slo.set_extra("queue_depth", 7)
        slo.set_extra("queue_depth", None)
        assert "queue_depth" not in slo.values()

    def test_builtin_series_cannot_be_shadowed(self):
        slo = SloTracker(window=4)
        with pytest.raises(ValueError, match="built-in"):
            slo.set_extra("hit_rate", 0.0)

    def test_extras_export_as_slo_window_gauges(self):
        registry = MetricsRegistry()
        slo = SloTracker(window=4)
        slo.set_extra("queue_depth", 3)
        slo.export_to(registry)
        text = registry.to_prometheus()
        assert 'slo_window{series="queue_depth"} 3' in text
