"""Tests for repro.obs.dashboard — frame rendering, event replay
parity, and the `top --from-events` golden frames (the headless CI
path)."""

from pathlib import Path

import numpy as np
import pytest

from repro.core.cache import LandlordCache
from repro.obs import (
    AlertEngine,
    AlertRule,
    EventReplay,
    frames_from_events,
    render_frame,
    stats_from_events,
    write_event_stream,
)
from repro.obs.dashboard import HISTORY_SERIES

GOLDEN = Path(__file__).parent / "data" / "top_frames_golden.txt"

SIZE = {f"p{i}": 10 * (i % 7 + 1) for i in range(40)}


def run_cache(n_requests=300, capacity=2000, alpha=0.6, seed=11):
    """Deterministic event scenario (mirrors test_stream.run_cache):
    hits, merges, inserts, capacity evictions, and idle evictions."""
    rng = np.random.default_rng(seed)
    c = LandlordCache(capacity, alpha, SIZE.__getitem__, record_events=True)
    pids = sorted(SIZE)
    for i in range(n_requests):
        k = int(rng.integers(1, 6))
        c.request(frozenset(rng.choice(pids, size=k, replace=False)))
        if i % 50 == 49:
            c.evict_idle(max_idle_requests=10)
    return c


def golden_frames():
    """The exact frame sequence behind the golden file."""
    cache = run_cache()
    alerts = AlertEngine([
        AlertRule("eviction-storm", "eviction_rate", ">", 0.5, 25),
        AlertRule("merge-heavy", "merge_rate", ">", 0.3, 10),
    ])
    return list(frames_from_events(
        cache.events, every=100, window=80, alerts=alerts,
        capacity=2000, alpha=0.6,
    ))


class TestRenderFrame:
    def test_empty_status_never_fails(self):
        frame = render_frame({})
        assert "repro-landlord top" in frame
        assert "occupancy [????????????????????????] -" in frame
        assert "latency      p50 -   p95 -   p99 -" in frame

    def test_partial_status_renders_dashes(self):
        frame = render_frame({
            "alpha": 0.7,
            "lifetime": {"requests": 5, "hit_rate": 0.4},
            "window": {"size": 10, "series": {"hit_rate": 0.25}},
        })
        assert "request 5" in frame
        assert "alpha 0.7" in frame
        assert "hit 25.0%" in frame
        assert "insert -" in frame  # missing series stays a dash
        assert "lifetime hit rate 40.0%" in frame

    def test_alert_states_tagged(self):
        frame = render_frame({
            "alerts": [
                {"name": "a", "state": "firing"},
                {"name": "b", "state": "pending"},
                {"name": "c", "state": "inactive"},
            ],
        })
        assert "[FIRING] a" in frame
        assert "[pending] b" in frame
        assert "[ok] c" in frame

    def test_occupancy_bar_clamps_overflow(self):
        # A pinned image larger than capacity can push occupancy > 1.
        frame = render_frame({"occupancy": 36.06, "capacity_bytes": 100,
                              "cached_bytes": 3606})
        assert "[########################] 3606.0%" in frame

    def test_stage_latency_row_from_span_stats(self):
        frame = render_frame({
            "stages": {
                "queue": {"count": 9, "p50": 0.0001, "p95": 0.0005},
                "fsync": {"count": 9, "p50": 0.001, "p95": 0.0042},
                "apply": {"count": 9, "p50": 0.0002, "p95": 0.0008},
            },
        })
        assert (
            "stages p95   queue 500us   fsync 4.20ms   apply 800us"
            in frame
        )

    def test_stage_row_absent_without_stages_block(self):
        assert "stages p95" not in render_frame({})

    def test_stage_row_dashes_for_missing_stage(self):
        # A daemon that has only seen admission spans still renders.
        frame = render_frame({
            "stages": {"admission": {"count": 1, "p50": 0.1, "p95": 0.1}},
        })
        assert "stages p95   queue -   fsync -   apply -" in frame

    def test_history_band_needs_two_points(self):
        status = {"window": {"series": {}}}
        no_band = render_frame(status, history={"hit_rate": [0.5]})
        assert "windowed series over time" not in no_band
        band = render_frame(status, history={"hit_rate": [0.5, 0.6, 0.7]})
        assert "windowed series over time" in band
        assert "frame" in band


class TestEventReplay:
    def test_stats_parity_with_stats_from_events(self):
        cache = run_cache()
        replay = EventReplay(window=100, capacity=2000, alpha=0.6)
        for event in cache.events:
            replay.feed(event)
        replay.flush()
        assert replay.stats == stats_from_events(cache.events)
        assert replay.stats == cache.stats.copy()

    def test_window_series_match_live_tracker(self):
        # Replaying events reproduces the deterministic window series a
        # live SloTracker derived — the dashboard shows the truth.
        from repro.obs import SloTracker

        cache = LandlordCache(
            2000, 0.6, SIZE.__getitem__, record_events=True
        )
        slo = SloTracker(window=50)
        cache.enable_slo(slo)
        rng = np.random.default_rng(3)
        pids = sorted(SIZE)
        for _ in range(150):
            k = int(rng.integers(1, 6))
            cache.request(frozenset(rng.choice(pids, size=k, replace=False)))
        replay = EventReplay(window=50, capacity=2000, alpha=0.6)
        for event in cache.events:
            replay.feed(event)
        replay.flush()
        live = slo.values()
        replayed = replay.slo.values()
        for name in ("window_requests", "hit_rate", "merge_rate",
                     "insert_rate", "eviction_rate", "occupancy",
                     "write_bytes_per_request", "container_efficiency"):
            assert replayed[name] == pytest.approx(live[name]), name

    def test_deletes_fold_into_triggering_decision(self):
        # DELETE events follow their decision in the stream; the replay
        # must credit the evictions to that decision, not the next one.
        size_of = {f"p{i}": 40 for i in range(6)}.__getitem__
        cache = LandlordCache(100, 0.0, size_of, record_events=True)
        cache.request(frozenset({"p0", "p1"}))  # insert, 80 bytes
        cache.request(frozenset({"p2", "p3"}))  # insert, evicts the first
        replay = EventReplay(window=10, capacity=100)
        for event in cache.events:
            replay.feed(event)
        replay.flush()
        # 2 requests, 1 eviction -> 0.5 evictions per request
        assert replay.slo.values()["eviction_rate"] == pytest.approx(0.5)
        assert replay.stats.deletes == 1

    def test_alert_engine_sees_replayed_series(self):
        cache = run_cache(n_requests=120)
        alerts = AlertEngine([AlertRule("any", "window_requests", ">", 5)])
        replay = EventReplay(window=40, alerts=alerts, capacity=2000)
        for event in cache.events:
            replay.feed(event)
        replay.flush()
        assert alerts.fired_ever
        # window_requests first exceeds 5 on the sixth decision (index 5)
        assert alerts.transitions[0].request_index == 5
        assert alerts.transitions[0].value == 6.0

    def test_status_is_renderable_and_marks_unknowns(self):
        replay = EventReplay(window=10, capacity=2000, alpha=0.6)
        for event in run_cache(n_requests=40).events:
            replay.feed(event)
        replay.flush()
        status = replay.status()
        assert status["unique_bytes"] is None  # unreconstructible
        assert status["cache_efficiency"] is None
        frame = render_frame(status)
        assert "unique -" in frame
        assert "cache -" in frame


class TestFramesFromEvents:
    def test_frame_cadence(self):
        cache = run_cache(n_requests=250)
        frames = list(frames_from_events(cache.events, every=100))
        # one per 100 decisions (250 -> 2) plus the final frame
        assert len(frames) == 3
        assert "request 100" in frames[0]
        assert "request 200" in frames[1]
        assert "request 250" in frames[2]

    def test_accepts_stream_path(self, tmp_path):
        cache = run_cache(n_requests=120)
        path = write_event_stream(cache.events, tmp_path / "events.jsonl")
        from_path = list(frames_from_events(str(path), every=50))
        from_memory = list(frames_from_events(cache.events, every=50))
        assert from_path == from_memory

    def test_bad_every_rejected(self):
        with pytest.raises(ValueError):
            list(frames_from_events([], every=0))

    def test_empty_stream_yields_one_empty_frame(self):
        frames = list(frames_from_events([]))
        assert len(frames) == 1
        assert "request 0" in frames[0]

    def test_frames_match_golden_file(self):
        # Replay frames contain no wall-clock series, so the full
        # rendered sequence is bit-reproducible.
        text = "\n\n".join(golden_frames()) + "\n"
        assert text == GOLDEN.read_text()

    def test_golden_covers_the_interesting_furniture(self):
        text = GOLDEN.read_text()
        for marker in (
            "occupancy [", "window mix", "alerts",
            "[FIRING] eviction-storm",     # the storm rule trips
            "[ok] merge-heavy",            # ... while this one stays quiet
            "windowed series over time",   # the sparkline band
            "latency      p50 -",          # replay has no wall clock
        ):
            assert marker in text, f"golden file lost: {marker!r}"


class TestTopCli:
    def test_headless_replay_prints_frames(self, tmp_path, capsys):
        from repro.cli import main

        cache = run_cache(n_requests=250)
        path = write_event_stream(cache.events, tmp_path / "events.jsonl")
        rc = main([
            "top", "--from-events", str(path), "--every", "100",
            "--window", "80", "--capacity", "2000", "--alpha", "0.6",
            "--headless",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("repro-landlord top — request") == 3
        assert "\x1b[" not in out  # headless: no ANSI redraw codes

    def test_missing_stream_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "top", "--from-events", str(tmp_path / "absent.jsonl"),
            "--headless",
        ])
        assert rc == 2
        assert "no event stream" in capsys.readouterr().err

    def test_bad_rules_file_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        events = tmp_path / "events.jsonl"
        write_event_stream(run_cache(n_requests=10).events, events)
        bad = tmp_path / "rules.json"
        bad.write_text("{not json")
        rc = main([
            "top", "--from-events", str(events),
            "--alert-rules", str(bad), "--headless",
        ])
        assert rc == 2
        assert "bad alert rules" in capsys.readouterr().err

class TestTelemetryRows:
    def test_fleet_block_renders_worker_rows(self):
        frame = render_frame({
            "telemetry": {
                "complete": True,
                "cells": {"folded": 4, "expected": 4},
                "workers": {
                    "pid-2001": {
                        "mode": "cells", "pushes": 3, "cells": 2,
                        "final": True, "requests": 40.0, "hits": 9,
                        "merges": 2, "inserts": 29, "evictions": 11,
                    },
                    "pid-2000": {
                        "mode": "cells", "pushes": 2, "cells": 2,
                        "final": False, "requests": 40.0, "hits": 12,
                    },
                },
            },
        })
        assert "workers      2 reporting   cells 4/4 folded   [complete]" in (
            frame
        )
        # sorted by worker name; integral floats render without ".0"
        rows = [l for l in frame.splitlines() if l.startswith("  pid-")]
        assert rows[0].startswith("  pid-2000")
        assert "req 40 hit 12" in rows[0]
        assert rows[0].endswith("pushes 2")
        assert "req 40 hit 9 mrg 2 ins 29 evt 11" in rows[1]
        assert rows[1].endswith("pushes 3   done")

    def test_no_telemetry_block_no_worker_rows(self):
        assert "workers" not in render_frame({})
