"""Tests for repro.obs.alerts — rule parsing, the firing life-cycle
state machine, determinism, and the non-perturbation contract."""

import json
import math
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import LandlordCache
from repro.obs import (
    AlertEngine,
    AlertRule,
    AlertTransition,
    DEFAULT_RULES,
    MetricsRegistry,
    SloTracker,
    load_rules,
    parse_rule,
    read_transitions,
    write_transitions,
)

GOLDEN = Path(__file__).parent / "data" / "alert_transitions_golden.jsonl"


class TestAlertRule:
    def test_expr_round_trips_through_parse(self):
        rule = AlertRule("storm", "eviction_rate", ">", 0.5, 25)
        assert rule.expr == "eviction_rate > 0.5"
        assert parse_rule({"name": "storm", "expr": rule.expr,
                           "for": 25}) == rule

    def test_breaches_each_operator(self):
        cases = [("<", 0.4, True), ("<=", 0.5, True), (">", 0.6, True),
                 (">=", 0.5, True), ("==", 0.5, True), ("!=", 0.4, True),
                 ("<", 0.6, False), (">", 0.4, False)]
        for op, value, expected in cases:
            rule = AlertRule("r", "s", op, 0.5)
            assert rule.breaches({"s": value}) is expected, (op, value)

    def test_nan_and_missing_never_breach(self):
        rule = AlertRule("r", "s", "<", 0.5)
        assert not rule.breaches({"s": float("nan")})
        assert not rule.breaches({})

    def test_bad_operator_and_negative_for_rejected(self):
        with pytest.raises(ValueError):
            AlertRule("r", "s", "~", 0.5)
        with pytest.raises(ValueError):
            AlertRule("r", "s", "<", 0.5, for_requests=-1)


class TestParseAndLoad:
    def test_bare_string_rule(self):
        rule = parse_rule("cache_efficiency < 0.5")
        assert rule.series == "cache_efficiency"
        assert rule.name == "cache_efficiency-<-0.5"
        assert rule.for_requests == 0

    def test_missing_expr_and_garbage_expr_rejected(self):
        with pytest.raises(ValueError, match="no 'expr'"):
            parse_rule({"name": "x"}, index=3)
        with pytest.raises(ValueError, match="unparseable"):
            parse_rule("eviction_rate >>> 1")

    def test_load_list_and_wrapped_forms(self, tmp_path):
        entries = [
            {"name": "storm", "expr": "eviction_rate > 0.5", "for": 25},
            "hit_rate < 0.1",
        ]
        flat = tmp_path / "flat.json"
        flat.write_text(json.dumps(entries))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"rules": entries}))
        assert load_rules(flat) == load_rules(wrapped)
        assert [r.name for r in load_rules(flat)] == [
            "storm", "hit_rate-<-0.1",
        ]

    def test_duplicate_names_rejected(self, tmp_path):
        path = tmp_path / "dup.json"
        path.write_text(json.dumps([
            {"name": "x", "expr": "hit_rate < 0.5"},
            {"name": "x", "expr": "merge_rate > 0.5"},
        ]))
        with pytest.raises(ValueError, match="duplicate"):
            load_rules(path)

    def test_non_list_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"just a string"')
        with pytest.raises(ValueError, match="expected a JSON list"):
            load_rules(path)

    def test_default_rules_reference_real_series(self):
        from repro.obs import SLO_SERIES

        for rule in DEFAULT_RULES:
            assert rule.series in SLO_SERIES


def run_engine(engine, series, values):
    """Drive one series through an engine; returns all transitions."""
    out = []
    for i, value in enumerate(values):
        out.extend(engine.evaluate({series: value}, i))
    return out


class TestLifeCycle:
    def test_for_zero_fires_immediately(self):
        engine = AlertEngine([AlertRule("r", "s", ">", 0.5)])
        transitions = run_engine(engine, "s", [0.9])
        assert [(t.state, t.request_index) for t in transitions] == [
            ("firing", 0),
        ]
        assert engine.state_of("r") == "firing"
        assert engine.firing() == ["r"]
        assert engine.exit_code == 1

    def test_for_n_requires_consecutive_breaches(self):
        engine = AlertEngine([AlertRule("r", "s", ">", 0.5, for_requests=3)])
        transitions = run_engine(engine, "s", [0.9, 0.9, 0.9])
        assert [t.state for t in transitions] == ["pending", "firing"]
        assert transitions[0].request_index == 0
        assert transitions[1].request_index == 2

    def test_interrupted_breach_resets_pending_quietly(self):
        engine = AlertEngine([AlertRule("r", "s", ">", 0.5, for_requests=3)])
        transitions = run_engine(engine, "s", [0.9, 0.9, 0.1, 0.9, 0.9])
        # reset at index 2 emits nothing; the clock restarts at 3
        assert [t.state for t in transitions] == ["pending", "pending"]
        assert engine.state_of("r") == "pending"
        assert engine.exit_code == 0

    def test_firing_resolves_when_condition_clears(self):
        engine = AlertEngine([AlertRule("r", "s", ">", 0.5, for_requests=2)])
        transitions = run_engine(engine, "s", [0.9, 0.9, 0.9, 0.1])
        assert [t.state for t in transitions] == [
            "pending", "firing", "resolved",
        ]
        assert engine.state_of("r") == "inactive"
        assert engine.firing() == []
        # the CI gate remembers that it fired
        assert engine.exit_code == 1

    def test_nan_gap_resolves_a_firing_alert(self):
        engine = AlertEngine([AlertRule("r", "s", ">", 0.5)])
        transitions = run_engine(engine, "s", [0.9, float("nan")])
        assert [t.state for t in transitions] == ["firing", "resolved"]

    def test_rules_evaluated_independently(self):
        engine = AlertEngine([
            AlertRule("a", "x", ">", 0.5),
            AlertRule("b", "y", "<", 0.5, for_requests=2),
        ])
        engine.evaluate({"x": 0.9, "y": 0.1}, 0)
        engine.evaluate({"x": 0.9, "y": 0.1}, 1)
        assert engine.state_of("a") == "firing"
        assert engine.state_of("b") == "firing"
        assert engine.firing() == ["a", "b"]

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine([
                AlertRule("x", "s", ">", 0.5),
                AlertRule("x", "s", "<", 0.5),
            ])

    def test_summary_shape(self):
        engine = AlertEngine()
        rows = engine.summary()
        assert [row["name"] for row in rows] == [
            r.name for r in DEFAULT_RULES
        ]
        assert all(row["state"] == "inactive" for row in rows)
        assert all("expr" in row and "for" in row for row in rows)


class TestMetricsExport:
    def test_state_gauge_and_transition_counters(self):
        reg = MetricsRegistry()
        engine = AlertEngine(
            [AlertRule("r", "s", ">", 0.5, for_requests=2)], registry=reg
        )
        gauge = reg.get("alert_state")
        assert gauge.value(alert="r") == 0
        run_engine(engine, "s", [0.9, 0.9])
        assert gauge.value(alert="r") == 1
        run_engine(engine, "s", [0.1])
        assert gauge.value(alert="r") == 0
        counter = reg.get("alert_transitions_total")
        assert counter.value(alert="r", state="pending") == 1
        assert counter.value(alert="r", state="firing") == 1
        assert counter.value(alert="r", state="resolved") == 1


class TestTransitionsIO:
    def make_transitions(self):
        engine = AlertEngine([AlertRule("r", "s", ">", 0.5, for_requests=2)])
        return run_engine(engine, "s", [0.9, 0.9, 0.1])

    def test_round_trip(self, tmp_path):
        transitions = self.make_transitions()
        path = write_transitions(transitions, tmp_path / "t.jsonl")
        assert read_transitions(path) == transitions

    def test_append_mode(self, tmp_path):
        transitions = self.make_transitions()
        path = tmp_path / "t.jsonl"
        write_transitions(transitions[:1], path)
        write_transitions(transitions[1:], path, append=True)
        assert read_transitions(path) == transitions

    def test_jsonable_round_trip(self):
        t = AlertTransition("r", "firing", 42, 0.75)
        assert AlertTransition.from_jsonable(t.to_jsonable()) == t


def golden_scenario():
    """The deterministic cache run behind the golden transitions file:
    a tiny cache whose eviction storm trips a for-3 rule, then calms
    down (hits on a resident image) so the alert resolves."""
    size_of = {f"p{i}": 40 for i in range(10)}.__getitem__
    cache = LandlordCache(100, 0.0, size_of)  # alpha 0: never merge
    slo = SloTracker(window=4)
    cache.enable_slo(slo)
    engine = AlertEngine(
        [AlertRule("eviction-storm", "eviction_rate", ">", 0.5,
                   for_requests=3)]
    )
    # 6 distinct 2-package inserts: each evicts to fit under 100 bytes,
    # holding the windowed eviction rate above 0.5 — pending then firing.
    for i in range(6):
        cache.request(frozenset({f"p{i}", f"p{(i + 1) % 10}"}))
        engine.evaluate(slo.values(), cache.stats.requests - 1)
    # 8 hits on the resident image: evictions leave the window, resolved.
    for _ in range(8):
        cache.request(frozenset({"p5", "p6"}))
        engine.evaluate(slo.values(), cache.stats.requests - 1)
    return engine


class TestGoldenLifeCycle:
    def test_scenario_walks_the_full_life_cycle(self):
        engine = golden_scenario()
        states = [t.state for t in engine.transitions]
        assert states == ["pending", "firing", "resolved"]
        assert engine.exit_code == 1
        assert engine.state_of("eviction-storm") == "inactive"

    def test_transitions_match_golden_file(self):
        engine = golden_scenario()
        got = [
            json.dumps(t.to_jsonable(), sort_keys=True)
            for t in engine.transitions
        ]
        assert "\n".join(got) + "\n" == GOLDEN.read_text()

    def test_golden_file_reads_back(self):
        transitions = read_transitions(GOLDEN)
        assert [t.state for t in transitions] == [
            "pending", "firing", "resolved",
        ]


@st.composite
def value_streams(draw):
    """Sequences of series values including nan and missing entries."""
    n = draw(st.integers(min_value=1, max_value=40))
    value = st.one_of(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.just(float("nan")),
    )
    return [
        draw(st.fixed_dictionaries({}, optional={"s": value}))
        for _ in range(n)
    ]


class TestDeterminism:
    """Alert evaluation is a pure state machine over its inputs."""

    @given(
        stream=value_streams(),
        threshold=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        op=st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
        for_requests=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_same_inputs_same_transitions(
        self, stream, threshold, op, for_requests
    ):
        def run():
            engine = AlertEngine(
                [AlertRule("r", "s", op, threshold, for_requests)]
            )
            for i, values in enumerate(stream):
                engine.evaluate(values, i)
            return engine

        def keys(engine):
            # nan-safe comparison: a resolved transition recorded when
            # the series went missing carries value=nan, and nan != nan
            # under dataclass equality even for identical sequences.
            return [
                json.dumps(t.to_jsonable(), sort_keys=True)
                for t in engine.transitions
            ]

        a, b = run(), run()
        assert keys(a) == keys(b)
        assert a.fired_ever == b.fired_ever
        assert a.state_of("r") == b.state_of("r")

    @given(stream=value_streams())
    @settings(max_examples=40, deadline=None)
    def test_life_cycle_invariants(self, stream):
        engine = AlertEngine([AlertRule("r", "s", ">", 0.5, 2)])
        for i, values in enumerate(stream):
            engine.evaluate(values, i)
        states = [t.state for t in engine.transitions]
        # resolved only ever follows firing; firing follows pending
        # (for >= 2 means a pending transition always precedes it)
        for prev, cur in zip([None] + states, states + [None]):
            if cur == "resolved":
                assert prev == "firing"
            if cur == "firing":
                assert prev == "pending"
        assert engine.fired_ever == ("firing" in states)


def decision_key(decision):
    return (
        decision.action.value,
        decision.image.id,
        decision.image.size,
        decision.requested_bytes,
        decision.distance,
        decision.bytes_added,
        tuple(decision.evicted),
    )


@st.composite
def request_streams(draw):
    n_packages = draw(st.integers(min_value=4, max_value=12))
    n_requests = draw(st.integers(min_value=1, max_value=25))
    return [
        frozenset(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n_packages - 1),
                    min_size=1, max_size=n_packages,
                ).map(lambda ids: {f"p{i}" for i in ids})
            )
        )
        for _ in range(n_requests)
    ]


class TestNonPerturbation:
    """SLO tracking + alert evaluation must never change a decision."""

    @given(
        stream=request_streams(),
        alpha=st.sampled_from([0.0, 0.3, 0.6, 0.9, 1.0]),
        capacity=st.sampled_from([40, 100, 10_000]),
    )
    @settings(max_examples=40, deadline=None)
    def test_alerted_run_is_bit_identical_to_bare_run(
        self, stream, alpha, capacity
    ):
        size_of = {f"p{i}": 10 * (i + 1) for i in range(12)}.__getitem__

        bare = LandlordCache(capacity, alpha, size_of)
        watched = LandlordCache(capacity, alpha, size_of)
        slo = SloTracker(window=7)
        watched.enable_slo(slo)
        engine = AlertEngine([
            AlertRule("storm", "eviction_rate", ">", 0.2, 2),
            AlertRule("slump", "hit_rate", "<", 0.6, 3),
        ])

        bare_decisions = [decision_key(bare.request(s)) for s in stream]
        watched_decisions = []
        for i, s in enumerate(stream):
            watched_decisions.append(decision_key(watched.request(s)))
            engine.evaluate(slo.values(), i)
        assert bare_decisions == watched_decisions
        assert bare.stats == watched.stats
        assert bare.evict_idle(max_idle_requests=1) == (
            watched.evict_idle(max_idle_requests=1)
        )

    def test_simulator_slo_collection_does_not_perturb(self):
        from repro.htc.simulator import SimulationConfig, simulate
        from repro.util.units import GB

        config = SimulationConfig(
            capacity=20 * GB, n_unique=20, repeats=2, n_packages=200,
            repo_total_size=8 * GB, seed=9,
        )
        bare = simulate(config)
        with_slo = simulate(config.with_(collect_slo=True))
        assert bare.stats == with_slo.stats
        assert with_slo.slo_window is not None
        assert not math.isnan(with_slo.slo_window["hit_rate"])
        assert bare.slo_window is None
