"""Tests for repro.obs.spans — distributed tracing primitives.

Covers the W3C traceparent round trip (including the spec's malformed
inputs), the bounded SpanRecorder ring with its per-stage histograms
and exemplars, trace grouping, stage quantiles, and the ASCII
waterfall renderer.  Everything runs on a FrozenClock, so span
timestamps and durations are byte-stable.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.obs.clock import FrozenClock
from repro.obs.spans import (
    SERVICE_STAGES,
    Span,
    SpanRecorder,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    render_waterfall,
)


class TestTraceContext:
    def test_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = format_traceparent(trace_id, span_id)
        assert parse_traceparent(header) == (trace_id, span_id)

    def test_ids_have_spec_shape(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)  # pure hex

    def test_header_shape(self):
        header = format_traceparent("ab" * 16, "cd" * 8)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        assert format_traceparent("ab" * 16, "cd" * 8, sampled=False).endswith(
            "-00"
        )

    def test_format_rejects_bad_ids(self):
        with pytest.raises(ValueError, match="invalid trace context"):
            format_traceparent("nothex", "cd" * 8)
        with pytest.raises(ValueError, match="invalid trace context"):
            format_traceparent("0" * 32, "cd" * 8)

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-short-span-01",
        f"ff-{'ab' * 16}-{'cd' * 8}-01",        # invalid version
        f"00-{'0' * 32}-{'cd' * 8}-01",          # all-zero trace id
        f"00-{'ab' * 16}-{'0' * 16}-01",         # all-zero span id
        f"00-{'AB' * 16}-{'cd' * 8}-01-extra",   # trailing garbage
    ])
    def test_malformed_headers_start_a_new_trace(self, header):
        assert parse_traceparent(header) is None

    def test_case_and_whitespace_normalised(self):
        header = f"  00-{'AB' * 16}-{'CD' * 8}-01  "
        assert parse_traceparent(header) == ("ab" * 16, "cd" * 8)


class TestSpanJson:
    def test_round_trip_with_optionals(self):
        span = Span(
            trace_id="t" * 32, span_id="s" * 16, name="apply",
            start=100.0, duration=0.5, parent_id="p" * 16,
            request_index=7, attrs=(("alpha", "0.8"),),
        )
        assert Span.from_jsonable(span.to_jsonable()) == span

    def test_optional_keys_omitted_when_unset(self):
        span = Span(
            trace_id="t" * 32, span_id="s" * 16, name="apply",
            start=100.0, duration=0.5,
        )
        data = span.to_jsonable()
        assert "parent_id" not in data and "request_index" not in data
        assert Span.from_jsonable(data) == span

    def test_end_is_start_plus_duration(self):
        assert Span("t", "s", "n", start=10.0, duration=2.5).end == 12.5


class TestSpanRecorder:
    def recorder(self, **kwargs):
        kwargs.setdefault("clock", FrozenClock())
        return SpanRecorder(**kwargs)

    def test_ring_is_bounded(self):
        rec = self.recorder(limit=3)
        for i in range(10):
            rec.observe(f"stage{i}", 0.0, 0.1, new_trace_id())
        assert len(rec) == 3
        assert [s.name for s in rec.spans()] == [
            "stage7", "stage8", "stage9",
        ]

    def test_limit_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            SpanRecorder(limit=0)

    def test_family_must_be_seconds(self):
        with pytest.raises(ValueError, match="_seconds"):
            SpanRecorder(family="service_stages")

    def test_observe_converts_monotonic_to_wall(self):
        clock = FrozenClock(start=1000.0)
        rec = self.recorder(clock=clock)
        span = rec.observe("apply", 1002.0, 0.5, new_trace_id())
        assert span.start == 1002.0  # frozen wall_of is identity
        assert span.end == 1002.5

    def test_active_span_context_manager_records_once(self):
        clock = FrozenClock()
        rec = self.recorder(clock=clock)
        with rec.start("queue", request_index=3):
            clock.advance(0.25)
        (span,) = rec.spans()
        assert span.name == "queue"
        assert span.duration == 0.25
        assert span.request_index == 3

    def test_traces_group_by_trace_id_in_arrival_order(self):
        rec = self.recorder()
        t1, t2 = new_trace_id(), new_trace_id()
        rec.observe("admission", 0.0, 0.1, t1)
        rec.observe("admission", 0.0, 0.1, t2)
        rec.observe("queue", 0.1, 0.2, t1, request_index=4)
        traces = rec.traces()
        assert [t["trace_id"] for t in traces] == [t1, t2]
        assert traces[0]["request_index"] == 4
        assert len(traces[0]["spans"]) == 2
        assert rec.traces(last=1)[0]["trace_id"] == t2

    def test_trace_prefix_lookup(self):
        rec = self.recorder()
        trace_id = new_trace_id()
        rec.observe("apply", 0.0, 0.1, trace_id)
        assert rec.trace(trace_id[:8])["trace_id"] == trace_id
        assert rec.trace("f" * 32) is None

    def test_stage_stats_quantiles_and_ordering(self):
        rec = self.recorder(limit=64)
        for ms in (1, 2, 3, 4, 100):
            rec.observe("apply", 0.0, ms / 1000, new_trace_id())
        rec.observe("zextra", 0.0, 0.5, new_trace_id())
        rec.observe("queue", 0.0, 0.2, new_trace_id())
        stats = rec.stage_stats()
        # SERVICE_STAGES rank first, unknown stages alphabetically after.
        assert list(stats) == ["queue", "apply", "zextra"]
        assert stats["apply"]["count"] == 5
        assert stats["apply"]["p50"] == 0.003
        assert stats["apply"]["p95"] == 0.1

    def test_histogram_and_exemplar_emission(self):
        registry = MetricsRegistry()
        clock = FrozenClock(start=1000.0)
        rec = SpanRecorder(limit=8, clock=clock, registry=registry)
        trace_id = new_trace_id()
        rec.observe("fsync", 1000.0, 0.004, trace_id)
        text = registry.to_openmetrics()
        assert 'service_stage_seconds_bucket{stage="fsync"' in text
        assert f'trace_id="{trace_id}"' in text
        assert "0.004 1000.004" in text  # exemplar value + wall-clock end

    def test_stage_seconds_out_of_deterministic_snapshot(self):
        registry = MetricsRegistry()
        rec = SpanRecorder(limit=8, clock=FrozenClock(), registry=registry)
        rec.observe("apply", 0.0, 0.1, new_trace_id())
        assert "service_stage_seconds" not in registry.deterministic_snapshot()


class TestRenderWaterfall:
    def build_trace(self):
        clock = FrozenClock(start=0.0)
        rec = SpanRecorder(limit=16, clock=clock)
        trace_id = new_trace_id()
        starts = {"admission": 0.0, "queue": 0.1, "fsync": 0.3,
                  "apply": 0.6, "ack": 0.9}
        for stage in SERVICE_STAGES:
            rec.observe(stage, starts[stage], 0.1, trace_id,
                        request_index=17)
        return rec.traces()[0]

    def test_waterfall_shape(self):
        text = render_waterfall(self.build_trace(), width=20)
        lines = text.split("\n")
        assert "request #17" in lines[0]
        assert "total 1.000s" in lines[0]
        assert len(lines) == 1 + len(SERVICE_STAGES)
        for stage, line in zip(SERVICE_STAGES, lines[1:]):
            assert line.lstrip().startswith(stage)
            assert "|" in line and "#" in line
            assert "10.0%" in line

    def test_bars_positioned_along_the_envelope(self):
        text = render_waterfall(self.build_trace(), width=10)
        lines = text.split("\n")[1:]
        admission_bar = lines[0].split("|")[1]
        ack_bar = lines[-1].split("|")[1]
        assert admission_bar.startswith("#")
        assert ack_bar.endswith("#")

    def test_zero_duration_trace_still_renders(self):
        rec = SpanRecorder(limit=4, clock=FrozenClock())
        rec.observe("apply", 0.0, 0.0, new_trace_id())
        text = render_waterfall(rec.traces()[0], width=8)
        assert "|########|" in text
        assert "100.0%" in text
