"""Tests for repro.obs.stream — JSONL event streams and stats parity."""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.cache import CacheStats, LandlordCache
from repro.core.events import CacheEvent, EventKind
from repro.obs import (
    event_from_jsonable,
    event_to_jsonable,
    iter_event_stream,
    read_event_stream,
    stats_from_events,
    write_event_stream,
)

SIZE = {f"p{i}": 10 * (i % 7 + 1) for i in range(40)}


def run_cache(n_requests=300, capacity=2000, alpha=0.6, seed=11):
    """A randomized request stream that exercises every event shape:
    hits, merges, inserts, capacity evictions, and idle evictions."""
    rng = np.random.default_rng(seed)
    c = LandlordCache(capacity, alpha, SIZE.__getitem__, record_events=True)
    pids = sorted(SIZE)
    for i in range(n_requests):
        k = int(rng.integers(1, 6))
        c.request(frozenset(rng.choice(pids, size=k, replace=False)))
        if i % 50 == 49:
            c.evict_idle(max_idle_requests=10)
    return c


class TestEventSerialisation:
    def test_round_trip_full_event(self):
        event = CacheEvent(
            EventKind.MERGE, 7, "img-000002", 400, bytes_written=400,
            requested_bytes=120, distance=0.25, candidates_examined=3,
            conflicts_skipped=1,
        )
        assert event_from_jsonable(event_to_jsonable(event)) == event

    def test_round_trip_delete_with_reason(self):
        event = CacheEvent(
            EventKind.DELETE, 9, "img-000001", 50, reason="capacity",
        )
        data = event_to_jsonable(event)
        assert data["reason"] == "capacity"
        assert event_from_jsonable(data) == event

    def test_none_fields_omitted(self):
        data = event_to_jsonable(CacheEvent(EventKind.HIT, 0, "img-0", 10))
        assert "reason" not in data and "distance" not in data

    def test_tolerates_old_streams(self):
        # Streams written before reason/distance/delta fields existed.
        event = event_from_jsonable(
            {"kind": "delete", "request_index": 3, "image_id": "img-0",
             "image_bytes": 50}
        )
        assert event.reason is None
        assert event.candidates_examined == 0
        assert event.bytes_written == 0

    def test_write_read_stream(self, tmp_path):
        c = run_cache(n_requests=60)
        path = write_event_stream(c.events, tmp_path / "events.jsonl")
        assert read_event_stream(path) == list(c.events)
        assert list(iter_event_stream(path)) == list(c.events)
        # every line is valid standalone JSON
        for line in path.read_text().splitlines():
            json.loads(line)


class TestStatsParity:
    def test_replaying_events_reproduces_stats_exactly(self):
        c = run_cache()
        stats = c.stats.copy()
        assert stats.evictions_capacity > 0, "scenario must evict"
        assert stats.evictions_idle > 0, "scenario must idle-evict"
        assert stats.hits > 0 and stats.merges > 0 and stats.inserts > 0
        assert stats_from_events(c.events) == stats

    def test_parity_survives_stream_round_trip(self, tmp_path):
        c = run_cache(n_requests=120)
        path = write_event_stream(c.events, tmp_path / "events.jsonl")
        assert stats_from_events(read_event_stream(path)) == c.stats.copy()

    def test_eviction_breakdown_sums_to_deletes(self):
        stats = run_cache().stats
        assert stats.evictions_capacity + stats.evictions_idle == (
            stats.deletes
        )


class TestCacheStatsCopy:
    def test_copy_covers_every_field(self):
        # copy() is built from __dict__, so a new field can only be
        # missed if it never reaches __init__ — this guards the
        # snapshot round-trip for fields added later.
        stats = CacheStats()
        for i, f in enumerate(dataclasses.fields(CacheStats)):
            setattr(stats, f.name, i + 1)
        clone = stats.copy()
        assert clone == stats
        assert clone is not stats
        clone.requests += 1
        assert clone != stats

    def test_new_eviction_fields_default_zero(self):
        stats = CacheStats()
        assert stats.evictions_capacity == 0
        assert stats.evictions_idle == 0


class TestTornTail:
    """A writer that crashes mid-line leaves a torn final line; replay
    heals it (drops it) like the journal does, but a malformed line
    anywhere else is real corruption and must raise."""

    def torn_stream(self, tmp_path, n_requests=60):
        c = run_cache(n_requests=n_requests)
        path = write_event_stream(c.events, tmp_path / "events.jsonl")
        whole = path.read_text()
        lines = whole.splitlines(keepends=True)
        torn = "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2]
        path.write_text(torn)
        return path, list(c.events)

    def test_torn_final_line_heals_by_default(self, tmp_path):
        path, events = self.torn_stream(tmp_path)
        assert read_event_stream(path) == events[:-1]
        assert list(iter_event_stream(path)) == events[:-1]

    def test_healed_stream_still_replays_to_stats(self, tmp_path):
        path, events = self.torn_stream(tmp_path)
        healed = stats_from_events(read_event_stream(path))
        assert healed == stats_from_events(events[:-1])

    def test_heal_false_raises_on_torn_tail(self, tmp_path):
        path, _ = self.torn_stream(tmp_path)
        with pytest.raises(ValueError, match="corrupt event stream"):
            read_event_stream(path, heal_torn_tail=False)

    def test_non_final_malformed_line_always_raises(self, tmp_path):
        c = run_cache(n_requests=40)
        path = write_event_stream(c.events, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        lines[10] = lines[10][: len(lines[10]) // 2]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="non-final"):
            read_event_stream(path)

    def test_torn_tail_then_blank_lines_still_heals(self, tmp_path):
        # Trailing whitespace after the torn fragment is not "a later
        # line" — the fragment is still the last real content.
        path, events = self.torn_stream(tmp_path)
        with path.open("a") as fh:
            fh.write("\n\n")
        assert read_event_stream(path) == events[:-1]

    def test_valid_json_wrong_shape_is_also_healed(self, tmp_path):
        # A tail line that parses as JSON but lacks required fields
        # (KeyError path) gets the same torn-tail treatment.
        c = run_cache(n_requests=30)
        path = write_event_stream(c.events, tmp_path / "events.jsonl")
        with path.open("a") as fh:
            fh.write('{"kind": "hit"}\n')
        assert read_event_stream(path) == list(c.events)
        with pytest.raises(ValueError):
            read_event_stream(path, heal_torn_tail=False)


class TestTimelineFromEvents:
    def test_matches_simulator_timeline(self):
        from repro.analysis.report import timeline_from_events
        from repro.htc.simulator import (
            SimulationConfig, make_workload, simulate_stream,
        )
        from repro.htc.workload import build_stream
        from repro.packages.sft import build_experiment_repository
        from repro.util.rng import spawn
        from repro.util.units import GB

        config = SimulationConfig(
            capacity=20 * GB, n_unique=25, repeats=3, max_selection=6,
            n_packages=300, repo_total_size=10 * GB, seed=4,
        )
        repository = build_experiment_repository(
            config.repo_kind, seed=config.seed,
            n_packages=config.n_packages,
            target_total_size=config.repo_total_size,
        )
        stream = build_stream(
            make_workload(config, repository),
            spawn(config.seed, "workload", config.scheme, config.n_unique),
            n_unique=config.n_unique, repeats=config.repeats,
        )
        cache = LandlordCache(
            config.capacity, config.alpha, repository.size_of,
            record_events=True, rng=spawn(config.seed, "cache-rng"),
        )
        result = simulate_stream(cache, stream, config=config)
        rebuilt = timeline_from_events(cache.events)
        for name in ("hits", "inserts", "merges", "deletes",
                     "cached_bytes", "bytes_written", "requested_bytes"):
            np.testing.assert_array_equal(
                rebuilt[name], result.timeline[name], err_msg=name
            )
        breakdown = rebuilt["deletes_capacity"] + rebuilt["deletes_idle"]
        np.testing.assert_array_equal(breakdown, rebuilt["deletes"])

    def test_accepts_stream_path(self, tmp_path):
        from repro.analysis.report import timeline_from_events

        c = run_cache(n_requests=80)
        path = write_event_stream(c.events, tmp_path / "events.jsonl")
        from_path = timeline_from_events(path)
        from_memory = timeline_from_events(c.events)
        for name, series in from_memory.items():
            np.testing.assert_array_equal(from_path[name], series)

    def test_empty_log(self):
        from repro.analysis.report import timeline_from_events

        timeline = timeline_from_events([])
        assert all(len(v) == 0 for v in timeline.values())
