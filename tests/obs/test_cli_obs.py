"""Tests for the CLI observability surface: submit --trace, explain,
metrics, cache-status --metrics-out, replay --events-out, sweep
--metrics-out."""

import json

import pytest

from repro.cli import main
from repro.experiments.common import get_scale
from repro.obs import load_registry
from repro.packages.sft import build_experiment_repository

from .test_metrics import validate_prometheus_text


@pytest.fixture(scope="module")
def tiny_apps():
    scale = get_scale("tiny")
    repo = build_experiment_repository(
        "sft", seed=2020, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
    return [i for i in repo.ids if i.startswith("app-")]


def submit(spec_path, state, *extra):
    return main([
        "submit", str(spec_path), "--state", str(state), "--scale", "tiny",
        *extra,
    ])


class TestSubmitTraceExplain:
    def test_traced_submit_then_explain(self, tmp_path, capsys, tiny_apps):
        spec = tmp_path / "job.txt"
        state = tmp_path / "state.json"
        spec.write_text("\n".join(tiny_apps[:3]))
        assert submit(spec, state, "--trace") == 0
        out = capsys.readouterr().out
        assert "traced request #0" in out

        spec.write_text("\n".join(tiny_apps[1:5]))
        assert submit(spec, state, "--trace") == 0
        capsys.readouterr()

        assert main(["explain", "1", "--state", str(state)]) == 0
        explained = capsys.readouterr().out
        assert "request #1" in explained
        # the acceptance bar: candidate list with distances and the
        # reason for the chosen operation.
        assert "distance" in explained
        assert "MERGE" in explained or "INSERT" in explained

    def test_explain_missing_index(self, tmp_path, capsys, tiny_apps):
        spec = tmp_path / "job.txt"
        state = tmp_path / "state.json"
        spec.write_text("\n".join(tiny_apps[:3]))
        assert submit(spec, state, "--trace") == 0
        capsys.readouterr()
        assert main(["explain", "7", "--state", str(state)]) == 1
        err = capsys.readouterr().err
        assert "request #7 is not in" in err
        assert "traced indices: 0..0" in err

    def test_explain_without_trace_file(self, tmp_path, capsys):
        state = tmp_path / "state.json"
        assert main(["explain", "0", "--state", str(state)]) == 2
        err = capsys.readouterr()
        assert "--trace" in err.err + err.out

    def test_untraced_submit_writes_no_sidecar(self, tmp_path, capsys,
                                               tiny_apps):
        spec = tmp_path / "job.txt"
        state = tmp_path / "state.json"
        spec.write_text("\n".join(tiny_apps[:3]))
        assert submit(spec, state) == 0
        assert not (tmp_path / "state.json.trace.jsonl").exists()


class TestSubmitMetrics:
    def test_metrics_accumulate_across_invocations(self, tmp_path, capsys,
                                                   tiny_apps):
        spec = tmp_path / "job.txt"
        state = tmp_path / "state.json"
        metrics = tmp_path / "m.json"
        spec.write_text("\n".join(tiny_apps[:3]))
        assert submit(spec, state, "--metrics-out", str(metrics)) == 0
        assert submit(spec, state, "--metrics-out", str(metrics)) == 0
        capsys.readouterr()
        reg = load_registry(metrics)
        requests = reg.get("landlord_requests_total")
        total = sum(child.value for _, child in requests.series())
        # two CLI invocations, one request each; counters accumulated
        # across processes via load -> merge -> save.
        assert total == 2
        assert reg.get("journal_appends_total").value() == 2

    def test_cache_status_reports_metrics(self, tmp_path, capsys, tiny_apps):
        spec = tmp_path / "job.txt"
        state = tmp_path / "state.json"
        metrics = tmp_path / "m.json"
        spec.write_text("\n".join(tiny_apps[:3]))
        assert submit(spec, state, "--metrics-out", str(metrics)) == 0
        capsys.readouterr()
        assert main(["cache-status", "--state", str(state), "--scale",
                     "tiny", "--metrics-out", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "journal fsync" in out
        assert "journal appends" in out

    def test_cache_status_without_metrics_file(self, tmp_path, capsys,
                                               tiny_apps):
        spec = tmp_path / "job.txt"
        state = tmp_path / "state.json"
        spec.write_text("\n".join(tiny_apps[:3]))
        assert submit(spec, state) == 0
        capsys.readouterr()
        assert main(["cache-status", "--state", str(state), "--scale",
                     "tiny", "--metrics-out", str(tmp_path / "nope.json")
                     ]) == 0
        assert "no metrics file" in capsys.readouterr().out


class TestMetricsCommand:
    def make_metrics(self, tmp_path, tiny_apps):
        spec = tmp_path / "job.txt"
        spec.write_text("\n".join(tiny_apps[:3]))
        metrics = tmp_path / "m.json"
        assert submit(spec, tmp_path / "state.json",
                      "--metrics-out", str(metrics)) == 0
        return metrics

    def test_table_format(self, tmp_path, capsys, tiny_apps):
        metrics = self.make_metrics(tmp_path, tiny_apps)
        capsys.readouterr()
        assert main(["metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "landlord_requests_total" in out
        assert "journal_fsync_seconds" in out

    def test_prom_format_is_valid_exposition(self, tmp_path, capsys,
                                             tiny_apps):
        metrics = self.make_metrics(tmp_path, tiny_apps)
        capsys.readouterr()
        assert main(["metrics", str(metrics), "--format", "prom"]) == 0
        validate_prometheus_text(capsys.readouterr().out)

    def test_json_format_round_trips(self, tmp_path, capsys, tiny_apps):
        metrics = self.make_metrics(tmp_path, tiny_apps)
        capsys.readouterr()
        assert main(["metrics", str(metrics), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "landlord_requests_total" in payload["families"]

    def test_openmetrics_format_is_valid_exposition(self, tmp_path, capsys,
                                                    tiny_apps):
        from repro.obs import validate_openmetrics_text

        metrics = self.make_metrics(tmp_path, tiny_apps)
        capsys.readouterr()
        assert main(["metrics", str(metrics),
                     "--format", "openmetrics"]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        validate_openmetrics_text(out)

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "absent.json")]) == 2


class TestReplayObservability:
    def test_events_and_metrics_out(self, tmp_path, capsys):
        stream = tmp_path / "stream.jsonl"
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "m.json"
        assert main(["trace", str(stream), "--scale", "tiny"]) == 0
        assert main([
            "replay", str(stream), "--scale", "tiny",
            "--events-out", str(events), "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "events written" in out
        assert events.exists()
        reg = load_registry(metrics)
        requests = reg.get("landlord_requests_total")
        n = sum(child.value for _, child in requests.series())
        assert n == reg.get("sim_requests_total").value() > 0
        # the event stream and the metrics agree on the decision counts
        from repro.obs import read_event_stream, stats_from_events

        stats = stats_from_events(read_event_stream(events))
        assert stats.requests == n


class TestReplayAlerts:
    def make_stream(self, tmp_path):
        stream = tmp_path / "stream.jsonl"
        assert main(["trace", str(stream), "--scale", "tiny"]) == 0
        return stream

    def test_fired_rule_gates_exit_code(self, tmp_path, capsys):
        stream = self.make_stream(tmp_path)
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([
            {"name": "always", "expr": "window_requests > 0"},
        ]))
        log = tmp_path / "transitions.jsonl"
        rc = main([
            "replay", str(stream), "--scale", "tiny",
            "--alert-rules", str(rules), "--alert-log", str(log),
        ])
        assert rc == 1
        captured = capsys.readouterr()
        assert "alert always [firing]" in captured.out
        assert "ALERT:" in captured.err
        from repro.obs import read_transitions

        transitions = read_transitions(log)
        assert transitions[0].rule == "always"
        assert transitions[0].state == "firing"

    def test_quiet_rules_exit_zero(self, tmp_path, capsys):
        stream = self.make_stream(tmp_path)
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps(["eviction_rate > 99"]))
        rc = main([
            "replay", str(stream), "--scale", "tiny",
            "--alert-rules", str(rules),
        ])
        assert rc == 0
        assert "[inactive]" in capsys.readouterr().out

    def test_unreadable_rules_exit_2(self, tmp_path, capsys):
        stream = self.make_stream(tmp_path)
        rc = main([
            "replay", str(stream), "--scale", "tiny",
            "--alert-rules", str(tmp_path / "absent.json"),
        ])
        assert rc == 2
        assert "cannot read alert rules" in capsys.readouterr().err


class TestSweepMetrics:
    def test_sweep_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "sweep.json"
        assert main([
            "sweep", "--scale", "tiny", "--repetitions", "2",
            "--alpha", "0.6", "0.8", "0.2",
            "--metrics-out", str(metrics),
        ]) == 0
        assert "metrics saved" in capsys.readouterr().out
        reg = load_registry(metrics)
        assert reg.get("sim_requests_total").value() > 0
