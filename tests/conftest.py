"""Shared fixtures: small deterministic repositories and RNGs.

Everything here is session-scoped and read-only; tests that mutate state
build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.packages.package import Package
from repro.packages.repository import Repository
from repro.packages.sft import build_experiment_repository, build_sft_repository
from repro.util.units import GB


@pytest.fixture(scope="session")
def tiny_repo() -> Repository:
    """A hand-built 8-package repository with a known dependency diamond.

    Layout (sizes in parentheses)::

        base (10)
        libA (20) -> base          libB (30) -> base
        appX (40) -> libA, libB    appY (50) -> libA
        appZ (60) -> libB          lone (70)  (no deps)
        data (80)  (no deps, no dependents)
    """
    return Repository(
        [
            Package("base/1.0", 10),
            Package("libA/1.0", 20, deps=("base/1.0",)),
            Package("libB/1.0", 30, deps=("base/1.0",)),
            Package("appX/1.0", 40, deps=("libA/1.0", "libB/1.0")),
            Package("appY/1.0", 50, deps=("libA/1.0",)),
            Package("appZ/1.0", 60, deps=("libB/1.0",)),
            Package("lone/1.0", 70),
            Package("data/1.0", 80),
        ]
    )


@pytest.fixture(scope="session")
def small_sft() -> Repository:
    """A small but structurally faithful SFT-style repository."""
    return build_sft_repository(seed=123, n_packages=600,
                                target_total_size=45 * GB)


@pytest.fixture(scope="session")
def small_random_repo() -> Repository:
    return build_experiment_repository(
        "random", seed=123, n_packages=600, target_total_size=45 * GB
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
