"""Tests for repro.specs.python_imports."""

import pytest

from repro.packages.package import Package
from repro.packages.repository import Repository
from repro.specs.python_imports import (
    imported_modules,
    spec_from_python_files,
    spec_from_python_source,
)
from repro.specs.resolver import PackageResolver


@pytest.fixture()
def resolver():
    repo = Repository(
        [Package("numpy/1.24.0", 1), Package("scipy/1.10.0", 1),
         Package("pandas/2.0.0", 1)]
    )
    return PackageResolver(repo)


class TestImportedModules:
    def test_plain_import(self):
        assert imported_modules("import numpy") == {"numpy"}

    def test_dotted_import_takes_top_level(self):
        assert imported_modules("import numpy.linalg.lapack") == {"numpy"}

    def test_from_import(self):
        assert imported_modules("from scipy.sparse import linalg") == {"scipy"}

    def test_aliased_and_multiple(self):
        mods = imported_modules("import numpy as np, pandas as pd")
        assert mods == {"numpy", "pandas"}

    def test_relative_imports_ignored(self):
        assert imported_modules("from . import helpers") == set()
        assert imported_modules("from ..pkg import x") == set()

    def test_nested_imports_found(self):
        source = "def f():\n    import scipy\n"
        assert imported_modules(source) == {"scipy"}

    def test_conditional_imports_found(self):
        source = "try:\n    import numpy\nexcept ImportError:\n    pass\n"
        assert imported_modules(source) == {"numpy"}

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            imported_modules("import (")


class TestSpecFromSource:
    def test_stdlib_filtered_by_default(self, resolver):
        report = spec_from_python_source(
            "import os, sys, numpy", resolver
        )
        assert report.spec.packages == {"numpy/1.24.0"}
        assert report.complete

    def test_stdlib_kept_when_disabled(self, resolver):
        report = spec_from_python_source(
            "import os, numpy", resolver, skip_stdlib=False
        )
        assert "os" in report.unresolved

    def test_unknown_third_party_reported(self, resolver):
        report = spec_from_python_source("import torch", resolver)
        assert report.unresolved == ("torch",)


class TestSpecFromFiles:
    def test_merges_across_files(self, resolver, tmp_path):
        (tmp_path / "a.py").write_text("import numpy\n")
        (tmp_path / "b.py").write_text("import scipy\n")
        report = spec_from_python_files(
            [tmp_path / "a.py", tmp_path / "b.py"], resolver
        )
        assert report.spec.packages == {"numpy/1.24.0", "scipy/1.10.0"}

    def test_missing_file_raises(self, resolver, tmp_path):
        with pytest.raises(OSError):
            spec_from_python_files([tmp_path / "ghost.py"], resolver)
