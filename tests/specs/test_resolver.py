"""Tests for repro.specs.resolver."""

import pytest

from repro.packages.package import Package
from repro.packages.repository import Repository
from repro.specs.resolver import PackageResolver


@pytest.fixture()
def repo():
    return Repository(
        [
            Package("root/6.18.00", 1),
            Package("root/6.20.04", 1),
            Package("root/6.20.04/x86_64-el9", 1),
            Package("numpy/1.24.0", 1),
            Package("GCC/8.3.0", 1),
        ]
    )


class TestResolveOne:
    def test_exact_id_passthrough(self, repo):
        resolver = PackageResolver(repo)
        assert resolver.resolve_one("numpy/1.24.0") == "numpy/1.24.0"

    def test_bare_name_takes_newest_version(self, repo):
        resolver = PackageResolver(repo)
        assert resolver.resolve_one("root").startswith("root/6.20.04")

    def test_name_version_pair(self, repo):
        resolver = PackageResolver(repo)
        assert resolver.resolve_one("root/6.18.00") == "root/6.18.00"

    def test_name_version_picks_deterministic_variant(self, repo):
        resolver = PackageResolver(repo)
        assert resolver.resolve_one("root/6.20.04") == "root/6.20.04"

    def test_case_insensitive_by_default(self, repo):
        resolver = PackageResolver(repo)
        assert resolver.resolve_one("gcc") == "GCC/8.3.0"
        assert resolver.resolve_one("ROOT") is not None

    def test_case_sensitive_mode(self, repo):
        resolver = PackageResolver(repo, case_insensitive=False)
        assert resolver.resolve_one("gcc") is None
        assert resolver.resolve_one("GCC") == "GCC/8.3.0"

    def test_alias(self, repo):
        resolver = PackageResolver(repo, aliases={"np": "numpy"})
        assert resolver.resolve_one("np") == "numpy/1.24.0"

    def test_unknown_returns_none(self, repo):
        assert PackageResolver(repo).resolve_one("tensorflow") is None

    def test_unknown_version_returns_none(self, repo):
        assert PackageResolver(repo).resolve_one("root/9.99") is None

    def test_empty_string_returns_none(self, repo):
        assert PackageResolver(repo).resolve_one("  ") is None


class TestResolveMany:
    def test_report_partitions_resolved_and_unresolved(self, repo):
        report = PackageResolver(repo).resolve(["numpy", "tensorflow", "root"])
        assert "numpy/1.24.0" in report.spec.packages
        assert report.unresolved == ("tensorflow",)
        assert not report.complete

    def test_complete_report(self, repo):
        report = PackageResolver(repo).resolve(["numpy"])
        assert report.complete

    def test_duplicate_unresolved_deduped(self, repo):
        report = PackageResolver(repo).resolve(["nope", "nope"])
        assert report.unresolved == ("nope",)

    def test_empty_input(self, repo):
        report = PackageResolver(repo).resolve([])
        assert report.complete and len(report.spec) == 0
