"""Tests for repro.specs.modulefiles."""

import pytest

from repro.packages.package import Package
from repro.packages.repository import Repository
from repro.specs.modulefiles import loaded_modules, spec_from_module_script
from repro.specs.resolver import PackageResolver


class TestLoadedModules:
    def test_basic_load(self):
        assert loaded_modules("module load gcc/8.3.0") == ["gcc/8.3.0"]

    def test_multiple_on_one_line(self):
        assert loaded_modules("module load root geant4") == ["root", "geant4"]

    def test_ml_shorthand(self):
        assert loaded_modules("ml python/3.9") == ["python/3.9"]

    def test_module_add_synonym(self):
        assert loaded_modules("module add cmake") == ["cmake"]

    def test_unload_removes_by_name(self):
        script = "module load gcc/8.3.0\nmodule unload gcc"
        assert loaded_modules(script) == []

    def test_unload_specific_version(self):
        script = "module load gcc/8.3.0\nmodule rm gcc/8.3.0"
        assert loaded_modules(script) == []

    def test_purge_clears_all(self):
        script = "module load a b c\nmodule purge\nmodule load d"
        assert loaded_modules(script) == ["d"]

    def test_comments_stripped(self):
        assert loaded_modules("module load gcc # compiler") == ["gcc"]

    def test_unrelated_lines_ignored(self):
        script = "#!/bin/bash\necho module load fake\npython job.py"
        assert loaded_modules(script) == []

    def test_option_flags_skipped(self):
        assert loaded_modules("module load --quiet gcc") == ["gcc"]

    def test_duplicates_collapse(self):
        assert loaded_modules("module load gcc\nmodule load gcc") == ["gcc"]

    def test_load_order_preserved(self):
        script = "module load z\nmodule load a"
        assert loaded_modules(script) == ["z", "a"]


class TestSpecFromModuleScript:
    def test_resolution(self):
        repo = Repository([Package("gcc/8.3.0", 1), Package("root/6.20", 1)])
        resolver = PackageResolver(repo)
        report = spec_from_module_script(
            "module load gcc/8.3.0 root\nmodule load ghost", resolver
        )
        assert report.spec.packages == {"gcc/8.3.0", "root/6.20"}
        assert report.unresolved == ("ghost",)
