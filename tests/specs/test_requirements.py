"""Tests for repro.specs.requirements."""

import pytest

from repro.packages.package import Package
from repro.packages.repository import Repository
from repro.packages.resolve import UnsatisfiableError
from repro.specs.requirements import (
    parse_environment_yml,
    parse_requirements_txt,
    spec_from_conda_env,
    spec_from_requirements,
)


@pytest.fixture()
def repo():
    return Repository(
        [
            Package("base/1.0", 1),
            Package("python/3.9.6", 1, deps=("base/1.0",)),
            Package("python/3.11.2", 1, deps=("base/1.0",)),
            Package("numpy/1.24.0", 1, deps=("python/3.11.2",)),
            Package("oldlib/2.0", 1, deps=("python/3.9.6",)),
        ]
    )


class TestParseRequirementsTxt:
    def test_basic(self):
        reqs, ignored = parse_requirements_txt(
            "numpy>=1.20\n# comment\n\npython==3.11.2\n"
        )
        assert [r.name for r in reqs] == ["numpy", "python"]
        assert ignored == []

    def test_option_lines_ignored(self):
        reqs, ignored = parse_requirements_txt(
            "-r other.txt\n--hash=sha256:x\nnumpy\n"
        )
        assert [r.name for r in reqs] == ["numpy"]
        assert len(ignored) == 2

    def test_inline_comment(self):
        reqs, _ = parse_requirements_txt("numpy>=1.20  # fast math\n")
        assert reqs[0].allows("1.24.0")


class TestParseEnvironmentYml:
    YML = """
name: analysis
channels:
  - conda-forge
dependencies:
  - python=3.11
  - numpy
  - pip:
    - oldlib==2.0
"""

    def test_conda_pins_translated(self):
        reqs, _ = parse_environment_yml(self.YML)
        names = {r.name: r for r in reqs}
        assert names["python"].allows("3.11")
        assert not names["python"].allows("3.9")
        assert names["numpy"].constraints == ()
        assert names["oldlib"].allows("2.0")

    def test_non_dependency_blocks_ignored(self):
        reqs, _ = parse_environment_yml("name: x\nchannels:\n  - defaults\n")
        assert reqs == []

    def test_build_strings_dropped(self):
        reqs, _ = parse_environment_yml(
            "dependencies:\n  - numpy=1.24.0=py311h64a7726_0\n"
        )
        assert reqs[0].allows("1.24.0")


class TestSolveIntegration:
    def test_requirements_solved_to_closure(self, repo):
        report = spec_from_requirements("numpy>=1.20\n", repo)
        assert "numpy/1.24.0" in report.spec.packages
        assert "python/3.11.2" in report.spec.packages  # dependency pulled
        assert "base/1.0" in report.spec.packages

    def test_conflicting_file_raises(self, repo):
        # numpy needs python 3.11; oldlib needs python 3.9 -> slot clash
        with pytest.raises(UnsatisfiableError):
            spec_from_requirements("numpy\noldlib\n", repo)

    def test_append_only_mode_tolerates(self, repo):
        report = spec_from_requirements(
            "numpy\noldlib\n", repo, enforce_slots=False
        )
        pythons = {p for p in report.spec.packages if p.startswith("python/")}
        assert len(pythons) == 2

    def test_conda_env_solved(self, repo):
        report = spec_from_conda_env(
            "dependencies:\n  - python=3.9.6\n", repo
        )
        assert "python/3.9.6" in report.spec.packages

    def test_ignored_lines_surface(self, repo):
        report = spec_from_requirements("-r base.txt\nnumpy\n", repo)
        assert report.ignored_lines == ("-r base.txt",)
