"""Tests for repro.specs.logparse."""

import pytest

from repro.packages.package import Package
from repro.packages.repository import Repository
from repro.specs.logparse import accessed_packages, spec_from_log, spec_from_logs
from repro.specs.resolver import PackageResolver

LOG = """
open("/cvmfs/sft.cern.ch/root/6.20.04/lib/libCore.so") = 3
open("/cvmfs/sft.cern.ch/root/6.20.04/lib/libHist.so") = 4
read("/cvmfs/sft.cern.ch/python/3.9.6/bin/python3") = 5
stat("/cvmfs/atlas.cern.ch/athena/22.0/setup.sh") = 0
open("/tmp/scratch/file") = 6
"""


class TestAccessedPackages:
    def test_extracts_name_version_pairs(self):
        assert accessed_packages(LOG) == [
            "root/6.20.04", "python/3.9.6", "athena/22.0",
        ]

    def test_repo_filter(self):
        assert accessed_packages(LOG, repo_filter="atlas.cern.ch") == [
            "athena/22.0"
        ]

    def test_duplicates_collapse_in_order(self):
        log = "/cvmfs/r.ch/a/1.0/x\n/cvmfs/r.ch/b/2.0/y\n/cvmfs/r.ch/a/1.0/z"
        assert accessed_packages(log) == ["a/1.0", "b/2.0"]

    def test_non_cvmfs_paths_ignored(self):
        assert accessed_packages("/usr/lib/libc.so\n/home/u/x.txt") == []

    def test_empty_log(self):
        assert accessed_packages("") == []


class TestSpecFromLogs:
    @pytest.fixture()
    def resolver(self):
        repo = Repository(
            [Package("root/6.20.04", 1), Package("python/3.9.6", 1)]
        )
        return PackageResolver(repo)

    def test_single_log(self, resolver):
        report = spec_from_log(LOG, resolver, repo_filter="sft.cern.ch")
        assert report.spec.packages == {"root/6.20.04", "python/3.9.6"}
        assert report.complete

    def test_unfiltered_log_reports_unknown(self, resolver):
        report = spec_from_log(LOG, resolver)
        assert "athena/22.0" in report.unresolved

    def test_multiple_runs_merged(self, resolver):
        log_a = "/cvmfs/sft.cern.ch/root/6.20.04/lib/x"
        log_b = "/cvmfs/sft.cern.ch/python/3.9.6/bin/y"
        report = spec_from_logs([log_a, log_b], resolver)
        assert report.spec.packages == {"root/6.20.04", "python/3.9.6"}
