"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamplesExist:
    def test_at_least_three_examples(self):
        assert len(ALL_EXAMPLES) >= 3
        assert "quickstart.py" in ALL_EXAMPLES


class TestExamplesRun:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "repository:" in out
        assert "hit" in out  # the resubmission hit

    def test_spec_inference(self):
        out = run_example("spec_inference.py")
        assert "python imports" in out
        assert "prepared container" in out

    def test_hep_pipeline(self):
        out = run_example("hep_pipeline.py")
        assert "build-per-job" in out
        assert "LANDLORD" in out

    def test_alpha_tuning(self):
        out = run_example("alpha_tuning.py")
        assert "operational zone" in out or "no alpha" in out

    def test_multi_tenant(self):
        out = run_example("multi_tenant.py")
        assert "shared" in out and "isolated" in out and "public-core" in out

    def test_federated_sites(self):
        out = run_example("federated_sites.py")
        assert "isolated" in out and "federated" in out and "registry" in out

    @pytest.mark.slow
    def test_multi_site(self):
        out = run_example("multi_site.py")
        assert "policy=round_robin" in out
        assert "policy=sticky_user" in out
