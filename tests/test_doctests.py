"""Docstring examples must stay true: run doctests for modules that
carry executable examples."""

import doctest

import pytest

import repro.core.similarity
import repro.core.spec
import repro.packages.package
import repro.packages.resolve
import repro.util.rng
import repro.util.tables
import repro.util.units

MODULES = [
    repro.util.rng,
    repro.util.units,
    repro.util.tables,
    repro.packages.package,
    repro.packages.resolve,
    repro.core.spec,
    repro.core.similarity,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
