"""Property-based tests for version parsing and constraint algebra."""

from hypothesis import given, settings, strategies as st

from repro.packages.resolve import Constraint, parse_version

numeric_versions = st.lists(
    st.integers(0, 99), min_size=1, max_size=4
).map(lambda parts: ".".join(str(p) for p in parts))


@settings(max_examples=150)
@given(numeric_versions, numeric_versions)
def test_numeric_versions_order_like_tuples(a, b):
    ta = tuple(int(x) for x in a.split("."))
    tb = tuple(int(x) for x in b.split("."))
    assert (parse_version(a) < parse_version(b)) == (ta < tb)
    assert (parse_version(a) == parse_version(b)) == (ta == tb)


@settings(max_examples=150)
@given(numeric_versions)
def test_version_equals_itself(v):
    assert parse_version(v) == parse_version(v)
    assert Constraint("==", v).satisfied_by(v)
    assert Constraint(">=", v).satisfied_by(v)
    assert Constraint("<=", v).satisfied_by(v)
    assert not Constraint("!=", v).satisfied_by(v)
    assert not Constraint(">", v).satisfied_by(v)
    assert not Constraint("<", v).satisfied_by(v)


@settings(max_examples=150)
@given(numeric_versions, numeric_versions)
def test_strict_and_inclusive_operators_consistent(boundary, probe):
    ge = Constraint(">=", boundary).satisfied_by(probe)
    gt = Constraint(">", boundary).satisfied_by(probe)
    eq = parse_version(probe) == parse_version(boundary)
    assert ge == (gt or eq)
    le = Constraint("<=", boundary).satisfied_by(probe)
    lt = Constraint("<", boundary).satisfied_by(probe)
    assert le == (lt or eq)
    # trichotomy
    assert gt + lt + eq == 1


@settings(max_examples=150)
@given(numeric_versions, numeric_versions)
def test_separators_do_not_matter(a, b):
    dashed = a.replace(".", "-")
    assert parse_version(dashed) == parse_version(a)
    assert (parse_version(dashed) < parse_version(b)) == (
        parse_version(a) < parse_version(b)
    )
