"""Tests for repro.packages.package."""

import pytest

from repro.packages.package import Package, make_package_id, split_package_id


class TestPackageId:
    def test_two_part_roundtrip(self):
        pid = make_package_id("ROOT", "6.20.04")
        assert pid == "ROOT/6.20.04"
        assert split_package_id(pid) == ("ROOT", "6.20.04", "")

    def test_three_part_roundtrip(self):
        pid = make_package_id("ROOT", "6.20.04", "x86_64-el9")
        assert split_package_id(pid) == ("ROOT", "6.20.04", "x86_64-el9")

    @pytest.mark.parametrize(
        "name,version,variant",
        [("", "1.0", ""), ("a/b", "1.0", ""), ("a", "", ""),
         ("a", "1/0", ""), ("a", "1.0", "x/y")],
    )
    def test_invalid_components_rejected(self, name, version, variant):
        with pytest.raises(ValueError):
            make_package_id(name, version, variant)

    @pytest.mark.parametrize("bad", ["justname", "a/b/c/d", ""])
    def test_split_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            split_package_id(bad)


class TestPackage:
    def test_accessors(self):
        p = Package("numpy/1.24.0/x86_64", size=100)
        assert p.name == "numpy"
        assert p.version == "1.24.0"
        assert p.variant == "x86_64"

    def test_slot_defaults_to_name(self):
        assert Package("gcc/8.3.0", 1).slot == "gcc"

    def test_explicit_slot_preserved(self):
        assert Package("gcc/8.3.0", 1, slot="toolchain").slot == "toolchain"

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Package("a/1.0", -1)

    def test_zero_size_allowed_for_metapackages(self):
        assert Package("meta/1.0", 0).size == 0

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError):
            Package("a/1.0", 1, deps=("a/1.0",))

    def test_frozen(self):
        p = Package("a/1.0", 1)
        with pytest.raises(Exception):
            p.size = 2
