"""Tests for repro.packages.sizes."""

import math

import numpy as np
import pytest

from repro.packages.sizes import (
    MIN_PACKAGE_SIZE,
    lognormal_sizes,
    mu_for_mean,
    size_histogram,
)


class TestMuForMean:
    def test_expectation_identity(self):
        mean, sigma = 5e7, 1.2
        mu = mu_for_mean(mean, sigma)
        assert math.isclose(math.exp(mu + sigma**2 / 2), mean, rel_tol=1e-9)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            mu_for_mean(0, 1.0)


class TestLognormalSizes:
    def test_mean_roughly_calibrated(self, rng):
        sizes = lognormal_sizes(rng, 200_000, mean_bytes=50e6, sigma=1.2)
        assert 0.9 * 50e6 < sizes.mean() < 1.1 * 50e6

    def test_minimum_clip(self, rng):
        sizes = lognormal_sizes(rng, 10_000, mean_bytes=5000, sigma=2.0)
        assert sizes.min() >= MIN_PACKAGE_SIZE

    def test_maximum_clip(self, rng):
        sizes = lognormal_sizes(rng, 10_000, mean_bytes=1e9, sigma=2.0,
                                max_bytes=10**10)
        assert sizes.max() <= 10**10

    def test_zero_n(self, rng):
        assert lognormal_sizes(rng, 0, 1e6).size == 0

    def test_negative_n_rejected(self, rng):
        with pytest.raises(ValueError):
            lognormal_sizes(rng, -1, 1e6)

    def test_dtype_int64(self, rng):
        assert lognormal_sizes(rng, 5, 1e6).dtype == np.int64

    def test_heavy_tail_present(self, rng):
        sizes = lognormal_sizes(rng, 100_000, mean_bytes=50e6, sigma=1.6)
        assert sizes.max() > 20 * np.median(sizes)


class TestSizeHistogram:
    def test_counts_sum_to_n(self, rng):
        sizes = lognormal_sizes(rng, 5000, 1e6)
        rows = size_histogram(sizes, n_bins=10)
        assert sum(count for _, _, count in rows) == 5000

    def test_empty_input(self):
        assert size_histogram(np.zeros(0)) == []

    def test_degenerate_single_value(self):
        rows = size_histogram(np.array([7, 7, 7]))
        assert rows == [(7.0, 7.0, 3)]
