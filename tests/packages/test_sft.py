"""Tests for repro.packages.sft: calibration of the synthetic repository."""

import numpy as np
import pytest

from repro.packages.sft import (
    SFT_PACKAGE_COUNT,
    build_experiment_repository,
    build_sft_repository,
)
from repro.util.rng import spawn
from repro.util.units import GB


class TestBuildSft:
    def test_scaled_package_count(self, small_sft):
        assert len(small_sft) == 600

    def test_exact_total_size(self, small_sft):
        assert small_sft.total_size == 45 * GB

    def test_deterministic_in_seed(self):
        a = build_sft_repository(seed=5, n_packages=200, target_total_size=GB)
        b = build_sft_repository(seed=5, n_packages=200, target_total_size=GB)
        assert a.ids == b.ids
        assert all(a[i].size == b[i].size for i in a.ids)

    def test_different_seed_differs(self):
        a = build_sft_repository(seed=5, n_packages=200, target_total_size=GB)
        b = build_sft_repository(seed=6, n_packages=200, target_total_size=GB)
        assert any(a[i].deps != b[i].deps for i in a.ids)

    def test_default_matches_paper_count(self):
        # Don't build the full repo here (slow-ish); just the constant.
        assert SFT_PACKAGE_COUNT == 9660

    def test_rejects_tiny_counts(self):
        with pytest.raises(ValueError):
            build_sft_repository(n_packages=5)

    def test_layer_naming_convention(self, small_sft):
        names = small_sft.ids
        assert any(n.startswith("core-") for n in names)
        assert any(n.startswith("fw-") for n in names)
        assert any(n.startswith("app-") for n in names)

    def test_apps_have_variants(self, small_sft):
        app_ids = [i for i in small_sft.ids if i.startswith("app-")]
        assert any(len(i.split("/")) == 3 for i in app_ids)


class TestClosureAmplification:
    """The Figure 3 calibration: closures amplify small selections ~5x."""

    def test_amplification_shape(self, small_sft):
        rng = spawn(1, "amp-test")
        ids = small_sft.ids

        def median_amp(k, trials=15):
            amps = []
            for _ in range(trials):
                sel = [ids[int(i)] for i in
                       rng.choice(len(ids), size=k, replace=False)]
                amps.append(len(small_sft.closure(sel)) / k)
            return float(np.median(amps))

        small, large = median_amp(6), median_amp(60)
        assert small > 2.0  # strong amplification for small selections
        assert large < small  # fading amplification (shared core)
        assert large > 1.05  # but closures still add something


class TestExperimentRepository:
    def test_kinds(self):
        for kind in ("sft", "random", "flat"):
            repo = build_experiment_repository(
                kind, seed=1, n_packages=100, target_total_size=GB
            )
            assert len(repo) == 100
            assert repo.total_size == GB

    def test_flat_has_no_deps(self):
        repo = build_experiment_repository(
            "flat", seed=1, n_packages=50, target_total_size=GB
        )
        assert all(not repo[i].deps for i in repo.ids)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            build_experiment_repository("weird")
