"""Tests for repro.packages.resolve (constraints + dependency solver)."""

import pytest

from repro.packages.package import Package
from repro.packages.repository import Repository
from repro.packages.resolve import (
    Constraint,
    DependencySolver,
    Requirement,
    UnsatisfiableError,
    parse_version,
)


class TestParseVersion:
    def test_numeric_ordering(self):
        assert parse_version("6.20.04") > parse_version("6.9.1")
        assert parse_version("10.0") > parse_version("9.9")

    def test_equal_despite_zero_padding(self):
        assert parse_version("6.04") == parse_version("6.4")

    def test_alphanumeric_components(self):
        assert parse_version("1.0a") != parse_version("1.0b")
        assert parse_version("1.0a") < parse_version("1.0b")

    def test_numbers_sort_after_letters_in_same_slot(self):
        assert parse_version("1.rc") < parse_version("1.1")


class TestConstraint:
    @pytest.mark.parametrize(
        "op,boundary,version,expected",
        [
            ("==", "6.20", "6.20", True),
            ("==", "6.20", "6.21", False),
            ("!=", "6.20", "6.21", True),
            (">=", "6.18", "6.20", True),
            (">=", "6.18", "6.18", True),
            ("<", "6.21", "6.20", True),
            ("<", "6.20", "6.20", False),
            (">", "6.20", "6.20.01", True),
            ("<=", "6.20", "6.20", True),
        ],
    )
    def test_operators(self, op, boundary, version, expected):
        assert Constraint(op, boundary).satisfied_by(version) is expected

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Constraint("~=", "1.0")


class TestRequirementParse:
    def test_bare_name(self):
        req = Requirement.parse("numpy")
        assert req.name == "numpy" and req.constraints == ()
        assert req.allows("anything")

    def test_single_constraint(self):
        req = Requirement.parse("gcc==8.3.0")
        assert req.allows("8.3.0") and not req.allows("9.1.0")

    def test_range(self):
        req = Requirement.parse("root>=6.18,<6.21")
        assert req.allows("6.20.04")
        assert not req.allows("6.21")
        assert not req.allows("6.17")

    def test_spaces_tolerated(self):
        req = Requirement.parse("root >= 6.18, < 6.21")
        assert req.allows("6.19")

    @pytest.mark.parametrize("bad", ["", ">=1.0", "name~~1.0", "name ==",
                                     "name foo"])
    def test_garbage_rejected(self, bad):
        with pytest.raises(ValueError):
            Requirement.parse(bad)


@pytest.fixture()
def repo():
    return Repository(
        [
            Package("base/1.0", 1),
            Package("gcc/8.3.0", 1, deps=("base/1.0",)),
            Package("gcc/9.1.0", 1, deps=("base/1.0",)),
            Package("root/6.18.00", 1, deps=("gcc/8.3.0",)),
            Package("root/6.20.04", 1, deps=("gcc/9.1.0",)),
            Package("geant/10.6", 1, deps=("gcc/9.1.0",)),
            Package("legacy-app/1.0", 1, deps=("root/6.18.00",)),
        ]
    )


class TestSolver:
    def test_newest_version_wins(self, repo):
        resolution = DependencySolver(repo).solve(["root"])
        assert resolution.assignments["root"] == "root/6.20.04"
        assert "gcc/9.1.0" in resolution.closure

    def test_constraint_pins_older(self, repo):
        resolution = DependencySolver(repo).solve(["root<6.20"])
        assert resolution.assignments["root<6.20"] == "root/6.18.00"

    def test_backtracks_to_compatible_version(self, repo):
        # Newest root needs gcc 9, legacy-app's chain needs gcc 8 via
        # root 6.18 -> the solver must fall back to root/6.18.00.
        resolution = DependencySolver(repo).solve(["root", "legacy-app"])
        assert resolution.assignments["root"] == "root/6.18.00"
        clash_versions = {
            pid for pid in resolution.closure if pid.startswith("gcc/")
        }
        assert len(clash_versions) == 1

    def test_unsatisfiable_with_explanation(self, repo):
        with pytest.raises(UnsatisfiableError, match="slot 'gcc'"):
            DependencySolver(repo).solve(["root>=6.20", "legacy-app"])

    def test_unknown_package(self, repo):
        with pytest.raises(UnsatisfiableError, match="unknown package"):
            DependencySolver(repo).solve(["tensorflow"])

    def test_constraint_excluding_everything(self, repo):
        with pytest.raises(UnsatisfiableError, match="no package satisfies"):
            DependencySolver(repo).solve(["root>9.0"])

    def test_append_only_mode_allows_coexistence(self, repo):
        resolution = DependencySolver(repo).solve(
            ["root>=6.20", "legacy-app"], enforce_slots=False
        )
        gccs = {p for p in resolution.closure if p.startswith("gcc/")}
        assert len(gccs) == 2  # CVMFS world: both versions coexist

    def test_closure_is_closed(self, repo):
        resolution = DependencySolver(repo).solve(["geant", "root>=6.20"])
        assert repo.closure(resolution.closure) == resolution.closure

    def test_requirement_objects_accepted(self, repo):
        req = Requirement.parse("gcc==8.3.0")
        resolution = DependencySolver(repo).solve([req])
        assert resolution.assignments[str(req)] == "gcc/8.3.0"

    def test_candidates_ordering(self, repo):
        solver = DependencySolver(repo)
        assert solver.candidates(Requirement.parse("gcc")) == [
            "gcc/9.1.0", "gcc/8.3.0",
        ]

    def test_budget_exhaustion_reported(self, repo):
        solver = DependencySolver(repo, max_steps=1)
        with pytest.raises(UnsatisfiableError, match="budget"):
            solver.solve(["root", "legacy-app"])
