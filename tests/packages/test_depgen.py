"""Tests for repro.packages.depgen: structure of generated DAGs."""

import numpy as np
import pytest

from repro.packages.depgen import LayerSpec, flat, layered_dag, random_dag
from repro.packages.repository import Repository


def _layers():
    return [
        LayerSpec(count=10, mean_size=1e6),
        LayerSpec(count=30, dep_range=(1, 3), mean_size=1e6),
        LayerSpec(count=60, dep_range=(2, 4), core_fraction=0.5, mean_size=1e6),
    ]


class TestLayerSpec:
    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            LayerSpec(count=-1)

    def test_rejects_bad_dep_range(self):
        with pytest.raises(ValueError):
            LayerSpec(count=1, dep_range=(3, 1))

    def test_rejects_bad_core_fraction(self):
        with pytest.raises(ValueError):
            LayerSpec(count=1, core_fraction=1.5)


class TestLayeredDag:
    def test_package_count(self, rng):
        packages = layered_dag(rng, _layers())
        assert len(packages) == 100

    def test_is_valid_acyclic_repository(self, rng):
        Repository(layered_dag(rng, _layers()))  # validates deps + acyclicity

    def test_layer_zero_has_no_deps(self, rng):
        packages = layered_dag(rng, _layers())
        layer0 = [p for p in packages if p.id.startswith("L0-")]
        assert layer0 and all(not p.deps for p in layer0)

    def test_deps_point_to_lower_layers_only(self, rng):
        packages = layered_dag(rng, _layers())
        for p in packages:
            layer = int(p.id[1])
            for dep in p.deps:
                assert int(dep[1]) < layer

    def test_popularity_skew_creates_hubs(self):
        rng = np.random.default_rng(0)
        packages = layered_dag(
            rng,
            [LayerSpec(count=50, mean_size=1e6),
             LayerSpec(count=500, dep_range=(2, 4), zipf_s=1.2, mean_size=1e6)],
        )
        repo = Repository(packages)
        counts = sorted(
            (len(v) for v in repo.dependents_index().values()), reverse=True
        )
        # Zipf choice concentrates dependents on a few core packages.
        assert counts[0] > 10 * max(1, counts[len(counts) // 2])

    def test_requires_nonempty_base(self, rng):
        with pytest.raises(ValueError):
            layered_dag(rng, [])

    def test_custom_namer(self, rng):
        packages = layered_dag(
            rng,
            [LayerSpec(count=2, mean_size=1e6)],
            namer=lambda layer, i: f"custom-{layer}-{i}/9.9",
        )
        assert packages[0].id == "custom-0-0/9.9"

    def test_deterministic_under_same_rng_seed(self):
        a = layered_dag(np.random.default_rng(5), _layers())
        b = layered_dag(np.random.default_rng(5), _layers())
        assert [(p.id, p.size, p.deps) for p in a] == [
            (p.id, p.size, p.deps) for p in b
        ]


class TestRandomDag:
    def test_count_and_validity(self, rng):
        repo = Repository(random_dag(rng, 80, mean_deps=2.5))
        assert len(repo) == 80

    def test_zero_packages(self, rng):
        assert random_dag(rng, 0) == []

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            random_dag(rng, -1)

    def test_edges_point_backwards(self, rng):
        packages = random_dag(rng, 50)
        index = {p.id: i for i, p in enumerate(packages)}
        for p in packages:
            for dep in p.deps:
                assert index[dep] < index[p.id]


class TestFlat:
    def test_no_dependencies(self, rng):
        packages = flat(rng, 20)
        assert all(not p.deps for p in packages)

    def test_sizes_positive(self, rng):
        assert all(p.size > 0 for p in flat(rng, 20))
