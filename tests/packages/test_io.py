"""Tests for repro.packages.io (JSON-lines repository interchange)."""

import json

import pytest

from repro.packages.io import load_repository, save_repository
from repro.packages.package import Package
from repro.packages.repository import Repository, RepositoryError


class TestRoundTrip:
    def test_preserves_everything(self, tiny_repo, tmp_path):
        path = tmp_path / "repo.jsonl"
        count = save_repository(path, tiny_repo)
        assert count == len(tiny_repo)
        loaded = load_repository(path)
        assert loaded.ids == tiny_repo.ids
        for pid in tiny_repo.ids:
            assert loaded[pid].size == tiny_repo[pid].size
            assert loaded[pid].deps == tiny_repo[pid].deps
        assert loaded.total_size == tiny_repo.total_size

    def test_sft_roundtrip_closures_match(self, small_sft, tmp_path):
        path = tmp_path / "sft.jsonl"
        save_repository(path, small_sft)
        loaded = load_repository(path)
        probe = small_sft.ids[:10]
        assert loaded.closure(probe) == small_sft.closure(probe)

    def test_custom_slot_preserved(self, tmp_path):
        repo = Repository([Package("gcc/8.3.0", 1, slot="toolchain")])
        path = tmp_path / "r.jsonl"
        save_repository(path, repo)
        assert load_repository(path)["gcc/8.3.0"].slot == "toolchain"

    def test_blank_lines_tolerated(self, tiny_repo, tmp_path):
        path = tmp_path / "r.jsonl"
        save_repository(path, tiny_repo)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_repository(path)) == len(tiny_repo)


class TestValidation:
    def test_invalid_json_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "a/1", "size": 1}\n{broken\n')
        with pytest.raises(RepositoryError, match=":2:"):
            load_repository(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"size": 1}\n')
        with pytest.raises(RepositoryError, match="invalid package record"):
            load_repository(path)

    def test_dangling_dependency_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": "a/1", "size": 1, "deps": ["ghost/1"]}\n')
        with pytest.raises(RepositoryError, match="missing"):
            load_repository(path)

    def test_cycle_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"id": "a/1", "size": 1, "deps": ["b/1"]}\n'
            '{"id": "b/1", "size": 1, "deps": ["a/1"]}\n'
        )
        with pytest.raises(RepositoryError, match="cycle"):
            load_repository(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            load_repository(tmp_path / "ghost.jsonl")
