"""Tests for repro.packages.repository: lookup, closure, sizes, validation."""

import pytest

from repro.packages.package import Package
from repro.packages.repository import Repository, RepositoryError


class TestConstruction:
    def test_duplicate_id_rejected(self):
        with pytest.raises(RepositoryError, match="duplicate"):
            Repository([Package("a/1.0", 1), Package("a/1.0", 2)])

    def test_missing_dependency_rejected(self):
        with pytest.raises(RepositoryError, match="missing"):
            Repository([Package("a/1.0", 1, deps=("ghost/1.0",))])

    def test_two_node_cycle_rejected(self):
        with pytest.raises(RepositoryError, match="cycle"):
            Repository(
                [
                    Package("a/1.0", 1, deps=("b/1.0",)),
                    Package("b/1.0", 1, deps=("a/1.0",)),
                ]
            )

    def test_longer_cycle_rejected(self):
        with pytest.raises(RepositoryError, match="cycle"):
            Repository(
                [
                    Package("a/1.0", 1, deps=("b/1.0",)),
                    Package("b/1.0", 1, deps=("c/1.0",)),
                    Package("c/1.0", 1, deps=("a/1.0",)),
                ]
            )

    def test_empty_repository_allowed(self):
        repo = Repository([])
        assert len(repo) == 0 and repo.total_size == 0


class TestContainerProtocol:
    def test_len_contains_iter(self, tiny_repo):
        assert len(tiny_repo) == 8
        assert "base/1.0" in tiny_repo
        assert "ghost/1.0" not in tiny_repo
        assert sorted(tiny_repo) == tiny_repo.ids

    def test_getitem(self, tiny_repo):
        assert tiny_repo["appX/1.0"].size == 40

    def test_getitem_unknown_raises_keyerror(self, tiny_repo):
        with pytest.raises(KeyError, match="ghost"):
            tiny_repo["ghost/1.0"]

    def test_ids_sorted_and_copied(self, tiny_repo):
        ids = tiny_repo.ids
        ids.append("mutated")
        assert "mutated" not in tiny_repo.ids


class TestClosure:
    def test_leaf_closure_includes_transitive_deps(self, tiny_repo):
        assert tiny_repo.closure_of("appX/1.0") == {
            "appX/1.0", "libA/1.0", "libB/1.0", "base/1.0",
        }

    def test_root_closure_is_self(self, tiny_repo):
        assert tiny_repo.closure_of("base/1.0") == {"base/1.0"}

    def test_multi_package_closure_is_union(self, tiny_repo):
        closure = tiny_repo.closure(["appY/1.0", "appZ/1.0"])
        assert closure == {
            "appY/1.0", "appZ/1.0", "libA/1.0", "libB/1.0", "base/1.0",
        }

    def test_empty_closure(self, tiny_repo):
        assert tiny_repo.closure([]) == frozenset()

    def test_unknown_package_raises(self, tiny_repo):
        with pytest.raises(KeyError):
            tiny_repo.closure_of("ghost/1.0")

    def test_memoisation_returns_same_object(self, tiny_repo):
        a = tiny_repo.closure_of("appX/1.0")
        b = tiny_repo.closure_of("appX/1.0")
        assert a is b

    def test_deep_chain_does_not_recurse_out(self):
        n = 5000
        packages = [Package("p0/1.0", 1)]
        packages += [
            Package(f"p{i}/1.0", 1, deps=(f"p{i-1}/1.0",)) for i in range(1, n)
        ]
        repo = Repository(packages)
        assert len(repo.closure_of(f"p{n-1}/1.0")) == n


class TestSizes:
    def test_bytes_of_counts_each_package_once(self, tiny_repo):
        assert tiny_repo.bytes_of(["base/1.0", "base/1.0", "libA/1.0"]) == 30

    def test_total_size(self, tiny_repo):
        assert tiny_repo.total_size == 10 + 20 + 30 + 40 + 50 + 60 + 70 + 80

    def test_size_of(self, tiny_repo):
        assert tiny_repo.size_of("data/1.0") == 80


class TestStats:
    def test_dependents_index(self, tiny_repo):
        idx = tiny_repo.dependents_index()
        assert sorted(idx["libA/1.0"]) == ["appX/1.0", "appY/1.0"]
        assert idx["data/1.0"] == []

    def test_stats_fields(self, tiny_repo):
        stats = tiny_repo.stats()
        assert stats["packages"] == 8
        assert stats["roots"] == 3  # base, lone, data
        assert stats["max_direct_deps"] == 2
