"""Tests for repro.packages.conflicts."""

import pytest

from repro.packages.conflicts import NoConflicts, SlotConflicts


class TestNoConflicts:
    def test_never_conflicts(self):
        policy = NoConflicts()
        assert not policy.conflicts({"a/1.0"}, {"a/2.0"})
        assert not policy.conflicts(set(), set())
        assert policy.conflicting_slots({"a/1.0"}, {"a/2.0"}) == []


class TestSlotConflicts:
    def setup_method(self):
        self.policy = SlotConflicts()

    def test_same_version_no_conflict(self):
        assert not self.policy.conflicts({"root/6.20"}, {"root/6.20"})

    def test_different_versions_conflict(self):
        assert self.policy.conflicts({"root/6.20"}, {"root/6.18"})
        assert self.policy.conflicting_slots(
            {"root/6.20"}, {"root/6.18"}
        ) == ["root"]

    def test_disjoint_names_no_conflict(self):
        assert not self.policy.conflicts({"a/1.0"}, {"b/2.0"})

    def test_internal_conflict_within_one_side(self):
        # A side that itself contains two versions of one slot conflicts
        # with anything (including the empty set).
        assert self.policy.conflicts({"a/1.0", "a/2.0"}, set())
        assert self.policy.conflicts(set(), {"a/1.0", "a/2.0"})

    def test_multiple_conflicting_slots_reported_sorted(self):
        slots = self.policy.conflicting_slots(
            {"z/1.0", "a/1.0"}, {"z/2.0", "a/2.0"}
        )
        assert slots == ["a", "z"]

    def test_variants_of_same_version_conflict_by_default(self):
        # Same name+version, different platform variants share a slot and
        # are distinct ids -> conflict under one-version-per-slot.
        assert self.policy.conflicts({"app/1.0/el7"}, {"app/1.0/el9"})

    def test_slot_override_allows_coinstall(self):
        policy = SlotConflicts(
            slot_of={"app/1.0/el7": "app-el7", "app/1.0/el9": "app-el9"}
        )
        assert not policy.conflicts({"app/1.0/el7"}, {"app/1.0/el9"})

    def test_empty_sets_never_conflict(self):
        assert not self.policy.conflicts(set(), set())
