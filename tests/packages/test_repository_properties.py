"""Property-based tests: the dependency closure is a closure operator.

For any repository DAG and any selection S:
- extensive: S ⊆ closure(S)
- monotone: S ⊆ T implies closure(S) ⊆ closure(T)
- idempotent: closure(closure(S)) == closure(S)
- closed: every dependency of a closure member is in the closure
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.packages.depgen import random_dag
from repro.packages.repository import Repository


@st.composite
def repo_and_selection(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(1, 60))
    rng = np.random.default_rng(seed)
    repo = Repository(random_dag(rng, n, mean_deps=2.0))
    ids = repo.ids
    selection = draw(
        st.lists(st.sampled_from(ids), min_size=0, max_size=min(10, n))
    )
    return repo, frozenset(selection)


@settings(max_examples=60, deadline=None)
@given(repo_and_selection())
def test_closure_is_extensive(case):
    repo, selection = case
    assert selection <= repo.closure(selection)


@settings(max_examples=60, deadline=None)
@given(repo_and_selection())
def test_closure_is_idempotent(case):
    repo, selection = case
    once = repo.closure(selection)
    assert repo.closure(once) == once


@settings(max_examples=60, deadline=None)
@given(repo_and_selection(), st.data())
def test_closure_is_monotone(case, data):
    repo, selection = case
    subset = data.draw(
        st.sets(st.sampled_from(sorted(selection)), max_size=len(selection))
        if selection
        else st.just(set())
    )
    assert repo.closure(subset) <= repo.closure(selection)


@settings(max_examples=60, deadline=None)
@given(repo_and_selection())
def test_closure_is_dependency_closed(case):
    repo, selection = case
    closure = repo.closure(selection)
    for pid in closure:
        for dep in repo[pid].deps:
            assert dep in closure


@settings(max_examples=60, deadline=None)
@given(repo_and_selection())
def test_closure_union_decomposition(case):
    """closure(S) equals the union of single-package closures."""
    repo, selection = case
    union = frozenset().union(
        *[repo.closure_of(p) for p in selection]
    ) if selection else frozenset()
    assert repo.closure(selection) == union
