"""Crash-injection suite: kill the wrapper at every persistence call
site and prove recovery is bit-identical to an uninterrupted run."""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import LandlordCache
from repro.testing.faults import (
    CRASH_SITES,
    TORN_SITES,
    CrashPoint,
    SimulatedCrash,
    checkpoint,
)
from repro.testing.harness import WrapperHarness, decision_key

SIZE = {f"p{i}": 7 + (i % 5) for i in range(16)}
CAPACITY = 120
ALPHA = 0.8


def make_stream(n, seed, universe=16, lo=1, hi=4):
    """Deterministic pseudo-random request stream."""
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(n):
        k = int(rng.integers(lo, hi + 1))
        picks = rng.choice(universe, size=k, replace=False)
        stream.append(sorted(f"p{int(i)}" for i in picks))
    return stream


def baseline_run(stream):
    """The uninterrupted, purely in-memory reference run."""
    cache = LandlordCache(CAPACITY, ALPHA, SIZE.__getitem__)
    decisions = [decision_key(cache.request(frozenset(s))) for s in stream]
    return decisions, cache.stats


class TestCrashPointUnit:
    def test_checkpoint_is_noop_when_disarmed(self):
        checkpoint("state:write")  # must not raise

    def test_fires_at_matching_site_only(self):
        with CrashPoint("state:synced") as cp:
            checkpoint("journal:append")
            assert not cp.fired
            with pytest.raises(SimulatedCrash):
                checkpoint("state:synced")
        assert cp.fired

    def test_fires_on_nth_hit(self):
        with CrashPoint("journal:append", hits=3) as cp:
            checkpoint("journal:append")
            checkpoint("journal:append")
            assert not cp.fired
            with pytest.raises(SimulatedCrash):
                checkpoint("journal:append")
        assert cp.fired

    def test_fires_at_most_once(self):
        with CrashPoint("journal:append") as cp:
            with pytest.raises(SimulatedCrash):
                checkpoint("journal:append")
            checkpoint("journal:append")  # already fired: no-op
        assert cp.fired

    def test_nested_arming_rejected(self):
        with CrashPoint("state:write"):
            with pytest.raises(RuntimeError, match="already armed"):
                with CrashPoint("state:torn"):
                    pass

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown crash site"):
            CrashPoint("nowhere")
        with pytest.raises(ValueError, match="hits"):
            CrashPoint("state:write", hits=0)
        with pytest.raises(ValueError, match="fraction"):
            CrashPoint("state:torn", torn=1.5)
        with pytest.raises(ValueError, match="no in-flight write"):
            CrashPoint("state:synced", torn=0.5)

    def test_torn_write_truncates_in_flight_bytes(self, tmp_path):
        path = tmp_path / "file.txt"
        with open(path, "w") as fh:
            fh.write("durable-prefix;")
            fh.flush()
            start = fh.tell()
            fh.write("x" * 100)
            fh.flush()
            with CrashPoint("journal:torn", torn=0.5) as cp:
                with pytest.raises(SimulatedCrash):
                    checkpoint("journal:torn", fh=fh, start=start)
        assert cp.fired
        text = path.read_text()
        assert text.startswith("durable-prefix;")
        assert len(text) == start + 50


def crash_cases():
    """Every crash site, with torn variants where a write is in flight."""
    cases = [(site, None) for site in CRASH_SITES]
    for site in TORN_SITES:
        cases.append((site, 0.3))
        cases.append((site, 0.7))
    return cases


class TestCrashRecovery:
    @pytest.mark.parametrize("site,torn", crash_cases())
    def test_every_site_recovers_identically(self, tmp_path, site, torn):
        stream = make_stream(30, seed=101)
        expected, expected_stats = baseline_run(stream)
        harness = WrapperHarness(
            tmp_path, SIZE.__getitem__, CAPACITY, ALPHA, snapshot_every=3
        )
        got = harness.run(stream, crash_site=site, crash_at=7, torn=torn)
        assert got == expected
        final, _, _ = harness._recover()
        assert final.stats == expected_stats

    @pytest.mark.parametrize("site", ["journal:synced", "state:write"])
    def test_repeated_crashes_along_one_stream(self, tmp_path, site):
        stream = make_stream(24, seed=202)
        expected, expected_stats = baseline_run(stream)
        harness = WrapperHarness(
            tmp_path, SIZE.__getitem__, CAPACITY, ALPHA, snapshot_every=2
        )
        # crash over and over at successive instants, recovering between
        for crash_at in (0, 5, 11, 17):
            try:
                with CrashPoint(site):
                    while True:
                        done = harness.processed_requests()
                        if done > crash_at or done >= len(stream):
                            break
                        harness.submit(stream[done])
            except SimulatedCrash:
                pass
        got = harness.run(stream)  # finish cleanly
        assert got == expected
        final, _, _ = harness._recover()
        assert final.stats == expected_stats

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        site=st.sampled_from(CRASH_SITES),
        crash_at=st.integers(0, 19),
        torn=st.sampled_from([None, 0.2, 0.8]),
    )
    def test_random_streams_random_crashes(self, seed, site, crash_at, torn):
        if torn is not None and site not in TORN_SITES:
            torn = None
        stream = make_stream(20, seed=seed)
        expected, expected_stats = baseline_run(stream)
        with tempfile.TemporaryDirectory() as tmp:
            harness = WrapperHarness(
                Path(tmp), SIZE.__getitem__, CAPACITY, ALPHA,
                snapshot_every=1 + seed % 4,
            )
            got = harness.run(
                stream, crash_site=site, crash_at=crash_at, torn=torn
            )
            assert got == expected
            final, _, _ = harness._recover()
            assert final.stats == expected_stats


@pytest.fixture(scope="module")
def thousand_stream():
    return make_stream(1000, seed=42)


@pytest.fixture(scope="module")
def thousand_baseline(thousand_stream):
    return baseline_run(thousand_stream)


class TestThousandRequestAcceptance:
    """The acceptance criterion: a 1k-request run crashed at every
    persistence call site recovers bit-identically."""

    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_1k_run_survives_crash_at(
        self, tmp_path, site, thousand_stream, thousand_baseline
    ):
        expected, expected_stats = thousand_baseline
        torn = 0.5 if site in TORN_SITES else None
        harness = WrapperHarness(
            tmp_path, SIZE.__getitem__, CAPACITY, ALPHA, snapshot_every=25
        )
        got = harness.run(
            thousand_stream, crash_site=site, crash_at=500, torn=torn
        )
        assert got == expected
        final, _, _ = harness._recover()
        assert final.stats == expected_stats
