"""Tests for repro.cvmfs.objects.ObjectStore."""

import pytest

from repro.cvmfs.objects import ObjectStore


class TestRegister:
    def test_register_and_size(self):
        store = ObjectStore()
        store.register("d1", 100)
        assert store.size_of("d1") == 100
        assert "d1" in store and len(store) == 1

    def test_idempotent_same_size(self):
        store = ObjectStore()
        store.register("d1", 100)
        store.register("d1", 100)
        assert len(store) == 1

    def test_digest_collision_rejected(self):
        store = ObjectStore()
        store.register("d1", 100)
        with pytest.raises(ValueError, match="collision"):
            store.register("d1", 200)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ObjectStore().register("d", -1)

    def test_unknown_digest_raises(self):
        with pytest.raises(KeyError):
            ObjectStore().size_of("ghost")

    def test_total_bytes_deduplicated(self):
        store = ObjectStore()
        store.register("a", 10)
        store.register("b", 20)
        assert store.total_bytes == 30


class TestFetch:
    def setup_method(self):
        self.store = ObjectStore()
        for i in range(5):
            self.store.register(f"d{i}", 10 * (i + 1))

    def test_cold_fetch_downloads_everything(self):
        downloaded = self.store.fetch(["d0", "d1"])
        assert downloaded == 30
        assert self.store.stats.bytes_fetched == 30

    def test_warm_fetch_costs_nothing(self):
        self.store.fetch(["d0"])
        assert self.store.fetch(["d0"]) == 0
        assert self.store.stats.cache_hits == 1
        assert self.store.stats.bytes_served_from_cache == 10

    def test_duplicates_in_one_call_fetched_once(self):
        assert self.store.fetch(["d0", "d0", "d0"]) == 10

    def test_partial_warm(self):
        self.store.fetch(["d0"])
        assert self.store.fetch(["d0", "d1"]) == 20

    def test_cached_accounting(self):
        self.store.fetch(["d0", "d2"])
        assert self.store.cached_objects == 2
        assert self.store.cached_bytes == 40

    def test_evict_local_makes_refetch_cost(self):
        self.store.fetch(["d0"])
        self.store.evict_local(["d0"])
        assert self.store.fetch(["d0"]) == 10

    def test_drop_local_cache(self):
        self.store.fetch(["d0", "d1"])
        self.store.drop_local_cache()
        assert self.store.cached_objects == 0

    def test_fetch_unknown_raises(self):
        with pytest.raises(KeyError):
            self.store.fetch(["ghost"])
