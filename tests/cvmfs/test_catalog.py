"""Tests for repro.cvmfs.catalog."""

import pytest

from repro.cvmfs.catalog import FileCatalog, FileEntry, generate_catalog
from repro.cvmfs.objects import ObjectStore


def entry(path, digest, size):
    return FileEntry(path=path, digest=digest, size=size)


class TestFileCatalog:
    def setup_method(self):
        self.catalog = FileCatalog(ObjectStore())
        self.catalog.add_package(
            "a/1.0",
            [entry("a/bin", "d-a", 50), entry("a/shared", "d-s", 30)],
        )
        self.catalog.add_package(
            "b/1.0",
            [entry("b/bin", "d-b", 70), entry("b/shared", "d-s", 30)],
        )

    def test_manifest_roundtrip(self):
        assert len(self.catalog.manifest("a/1.0")) == 2
        assert "a/1.0" in self.catalog and len(self.catalog) == 2

    def test_duplicate_package_rejected(self):
        with pytest.raises(ValueError):
            self.catalog.add_package("a/1.0", [])

    def test_unknown_package_raises(self):
        with pytest.raises(KeyError):
            self.catalog.manifest("ghost/1.0")

    def test_installed_bytes_copies_everything(self):
        # container images carry full copies: shared file counted twice
        assert self.catalog.installed_bytes(["a/1.0", "b/1.0"]) == 180

    def test_deduplicated_bytes_shares_content(self):
        assert self.catalog.deduplicated_bytes(["a/1.0", "b/1.0"]) == 150

    def test_digests_of(self):
        digests = self.catalog.digests_of(["a/1.0", "b/1.0"])
        assert digests == {"d-a": 50, "d-s": 30, "d-b": 70}

    def test_store_registration_happens_on_add(self):
        assert self.catalog.store.size_of("d-s") == 30

    def test_inconsistent_shared_digest_rejected(self):
        with pytest.raises(ValueError):
            self.catalog.add_package(
                "c/1.0", [entry("c/x", "d-s", 999)]  # d-s is 30 elsewhere
            )


class TestGenerateCatalog:
    def test_manifests_cover_repo_and_sizes_match(self, tiny_repo):
        catalog = generate_catalog(tiny_repo, seed=1)
        for pid in tiny_repo.ids:
            manifest = catalog.manifest(pid)
            total = sum(e.size for e in manifest)
            # file sizes sum to the package's installed size (exactly:
            # unique chunks fill whatever the shared draws left over)
            assert total == tiny_repo.size_of(pid)

    def test_sharing_exists_across_packages(self, small_sft):
        catalog = generate_catalog(small_sft, seed=1, shared_fraction=0.3)
        some = small_sft.ids[:200]
        installed = catalog.installed_bytes(some)
        deduped = catalog.deduplicated_bytes(some)
        assert deduped < installed  # shared objects collapse

    def test_deterministic(self, tiny_repo):
        a = generate_catalog(tiny_repo, seed=9)
        b = generate_catalog(tiny_repo, seed=9)
        for pid in tiny_repo.ids:
            assert a.manifest(pid) == b.manifest(pid)

    def test_invalid_shared_fraction(self, tiny_repo):
        with pytest.raises(ValueError):
            generate_catalog(tiny_repo, shared_fraction=1.0)
