"""Tests for repro.cvmfs.shrinkwrap."""

import pytest

from repro.core.spec import ImageSpec
from repro.cvmfs.catalog import generate_catalog
from repro.cvmfs.shrinkwrap import Shrinkwrap


class TestResolve:
    def test_resolves_closure(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo)
        assert sw.resolve(["appX/1.0"]) == tiny_repo.closure(["appX/1.0"])

    def test_accepts_image_spec(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo)
        assert "base/1.0" in sw.resolve(ImageSpec(["libA/1.0"]))


class TestBuildWithoutCatalog:
    def test_image_bytes_equal_closure_bytes(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo)
        report = sw.build(["appX/1.0"])
        assert report.image_bytes == tiny_repo.bytes_of(report.packages) == 100

    def test_no_closure_mode(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo)
        report = sw.build(["appX/1.0"], resolve_closure=False)
        assert report.packages == {"appX/1.0"}
        assert report.image_bytes == 40

    def test_prep_time_model(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo, download_bw=10, write_bw=20,
                        setup_seconds=1.0)
        report = sw.build(["appX/1.0"])  # 100 bytes
        assert report.prep_seconds == pytest.approx(1.0 + 10.0 + 5.0)

    def test_invalid_bandwidth_rejected(self, tiny_repo):
        with pytest.raises(ValueError):
            Shrinkwrap(tiny_repo, download_bw=0)


class TestBuildWithCatalog:
    def test_cold_build_downloads_dedup_writes_full(self, tiny_repo):
        catalog = generate_catalog(tiny_repo, seed=3, shared_fraction=0.4)
        sw = Shrinkwrap(tiny_repo, catalog=catalog)
        report = sw.build(["appX/1.0"])
        # downloads are content-deduplicated; the image is written in full
        assert report.bytes_downloaded <= report.image_bytes
        assert report.image_bytes == catalog.installed_bytes(report.packages)
        assert report.files > 0

    def test_warm_cache_reduces_downloads(self, tiny_repo):
        catalog = generate_catalog(tiny_repo, seed=3)
        sw = Shrinkwrap(tiny_repo, catalog=catalog)
        first = sw.build(["appX/1.0"])
        second = sw.build(["appX/1.0"])
        assert second.bytes_downloaded == 0
        assert second.bytes_from_cache > 0
        assert second.download_hit_rate == 1.0
        assert first.prep_seconds > second.prep_seconds

    def test_overlapping_builds_share_objects(self, tiny_repo):
        catalog = generate_catalog(tiny_repo, seed=3)
        sw = Shrinkwrap(tiny_repo, catalog=catalog)
        sw.build(["appY/1.0"])  # pulls libA+base content
        report = sw.build(["appX/1.0"])  # shares libA+base
        assert report.bytes_from_cache > 0
