"""Tests for repro.cvmfs.nested.NestedCatalogTree."""

import pytest

from repro.cvmfs.nested import BYTES_PER_ENTRY, NestedCatalogTree


@pytest.fixture()
def tree(tiny_repo):
    return NestedCatalogTree(tiny_repo)


class TestStructure:
    def test_all_packages_reachable(self, tree, tiny_repo):
        for pid in tiny_repo.ids:
            tree.lookup(pid)  # raises if unreachable

    def test_catalog_count(self, tree):
        # root + shards + one program catalog per name
        assert tree.catalog_count >= 1 + 1 + 8  # 8 distinct programs

    def test_total_metadata_scales_with_entries(self, tree, tiny_repo):
        assert tree.total_metadata_bytes >= len(tiny_repo) * BYTES_PER_ENTRY

    def test_prefix_len_validation(self, tiny_repo):
        with pytest.raises(ValueError):
            NestedCatalogTree(tiny_repo, prefix_len=0)


class TestLookup:
    def test_first_lookup_loads_path(self, tree):
        loaded = tree.lookup("appX/1.0")
        assert loaded > 0
        assert tree.catalogs_loaded >= 2  # shard + program (root counted too)

    def test_second_lookup_is_cached(self, tree):
        tree.lookup("appX/1.0")
        assert tree.lookup("appX/1.0") == 0

    def test_sibling_shares_catalogs(self, tree):
        tree.lookup("appX/1.0")
        before = tree.metadata_bytes_loaded
        tree.lookup("appY/1.0")  # same "ap" shard, different program
        delta = tree.metadata_bytes_loaded - before
        assert 0 < delta < tree.metadata_bytes_loaded

    def test_unknown_package_raises_after_walk(self, tree):
        with pytest.raises(KeyError):
            tree.lookup("apocrypha/9.9")
        # negative lookups still load the shard catalog they walked
        assert tree.catalogs_loaded >= 1

    def test_drop_cache_restores_cold_costs(self, tree):
        first = tree.lookup("appX/1.0")
        tree.drop_cache()
        assert tree.lookup("appX/1.0") == first


class TestMetadataCost:
    def test_cost_counts_distinct_catalogs_once(self, tree):
        single = tree.metadata_cost_of(["appX/1.0"])
        double = tree.metadata_cost_of(["appX/1.0", "appX/1.0"])
        assert single == double

    def test_cost_grows_with_spread(self, tree):
        narrow = tree.metadata_cost_of(["appX/1.0"])
        wide = tree.metadata_cost_of(["appX/1.0", "libA/1.0", "data/1.0"])
        assert wide > narrow

    def test_cost_independent_of_client_cache(self, tree):
        cost = tree.metadata_cost_of(["appX/1.0"])
        tree.lookup("appX/1.0")
        assert tree.metadata_cost_of(["appX/1.0"]) == cost

    def test_unknown_package_rejected(self, tree):
        with pytest.raises(KeyError):
            tree.metadata_cost_of(["ghost/1.0"])

    def test_full_repo_cost_at_sft_scale(self, small_sft):
        """The paper's 'metadata listings consumed gigabytes' effect is
        visible in shape: full-repo metadata dwarfs a single spec's."""
        tree = NestedCatalogTree(small_sft)
        one_spec = tree.metadata_cost_of(small_sft.ids[:20])
        assert tree.total_metadata_bytes > 5 * one_spec
