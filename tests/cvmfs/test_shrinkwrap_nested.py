"""Tests for Shrinkwrap + nested-catalog metadata accounting."""

import pytest

from repro.cvmfs.nested import NestedCatalogTree
from repro.cvmfs.shrinkwrap import Shrinkwrap


class TestNestedIntegration:
    def test_first_build_pays_metadata(self, tiny_repo):
        plain = Shrinkwrap(tiny_repo)
        nested = Shrinkwrap(tiny_repo, nested=NestedCatalogTree(tiny_repo))
        a = plain.build(["appX/1.0"])
        b = nested.build(["appX/1.0"])
        assert b.bytes_downloaded > a.bytes_downloaded
        assert b.image_bytes == a.image_bytes  # metadata never enters images

    def test_warm_client_pays_no_metadata_again(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo, nested=NestedCatalogTree(tiny_repo))
        first = sw.build(["appX/1.0"])
        second = sw.build(["appX/1.0"])
        assert second.bytes_downloaded < first.bytes_downloaded

    def test_overlapping_specs_share_catalogs(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo, nested=NestedCatalogTree(tiny_repo))
        sw.build(["appX/1.0"])
        tree = sw.nested
        loaded_before = tree.metadata_bytes_loaded
        sw.build(["appY/1.0"])  # shares libA/base catalogs
        newly = tree.metadata_bytes_loaded - loaded_before
        assert newly < loaded_before

    def test_metadata_increases_prep_time(self, tiny_repo):
        plain = Shrinkwrap(tiny_repo, download_bw=100, write_bw=1e12,
                           setup_seconds=0.0)
        nested = Shrinkwrap(tiny_repo, nested=NestedCatalogTree(tiny_repo),
                            download_bw=100, write_bw=1e12,
                            setup_seconds=0.0)
        assert (
            nested.build(["appX/1.0"]).prep_seconds
            > plain.build(["appX/1.0"]).prep_seconds
        )
