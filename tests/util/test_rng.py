"""Tests for repro.util.rng: determinism and stream independence."""

import numpy as np
import pytest

from repro.util.rng import RngFactory, key_to_entropy, spawn


class TestSpawn:
    def test_same_seed_same_key_is_reproducible(self):
        a = spawn(42, "workload", 0).integers(1 << 40)
        b = spawn(42, "workload", 0).integers(1 << 40)
        assert a == b

    def test_different_keys_give_independent_streams(self):
        a = spawn(42, "workload", 0).integers(1 << 40, size=8)
        b = spawn(42, "workload", 1).integers(1 << 40, size=8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = spawn(1, "x").integers(1 << 40, size=8)
        b = spawn(2, "x").integers(1 << 40, size=8)
        assert not np.array_equal(a, b)

    def test_string_and_int_key_parts_both_work(self):
        g = spawn(0, "repo", 9660, "layered")
        assert isinstance(g, np.random.Generator)

    def test_none_seed_still_returns_generator(self):
        g = spawn(None, "anything")
        assert isinstance(g, np.random.Generator)

    def test_key_order_matters(self):
        a = spawn(5, "a", "b").integers(1 << 40, size=4)
        b = spawn(5, "b", "a").integers(1 << 40, size=4)
        assert not np.array_equal(a, b)


class TestKeyToEntropy:
    def test_ints_pass_through_masked(self):
        assert key_to_entropy([3]) == [3]
        assert key_to_entropy([-1]) == [0xFFFFFFFF]

    def test_strings_hash_deterministically(self):
        assert key_to_entropy(["x"]) == key_to_entropy(["x"])
        assert key_to_entropy(["x"]) != key_to_entropy(["y"])


class TestRngFactory:
    def test_get_reproducible_across_factories(self):
        assert (
            RngFactory(7).get("repo").integers(1000)
            == RngFactory(7).get("repo").integers(1000)
        )

    def test_child_factories_are_nested_streams(self):
        f = RngFactory(7)
        a = f.child("rep", 0).get("w").integers(1 << 40, size=4)
        b = f.child("rep", 1).get("w").integers(1 << 40, size=4)
        assert not np.array_equal(a, b)

    def test_child_deterministic(self):
        a = RngFactory(7).child("rep", 3).get("w").integers(1 << 40)
        b = RngFactory(7).child("rep", 3).get("w").integers(1 << 40)
        assert a == b

    def test_unseeded_child_stays_unseeded(self):
        assert RngFactory(None).child("x").seed is None
