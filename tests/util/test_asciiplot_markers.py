"""Marker handling in ASCII plots beyond the basics."""

from repro.util.asciiplot import Series, line_plot


class TestManySeries:
    def test_markers_wrap_after_palette_exhausts(self):
        series = [
            Series(f"s{i}", [0, 1], [i, i + 1]) for i in range(10)
        ]
        out = line_plot(series)
        # all ten series named in the legend
        for i in range(10):
            assert f"s{i}" in out

    def test_later_series_overdraw_earlier(self):
        a = Series("under", [0.5], [0.5])
        b = Series("over", [0.5], [0.5])
        out = line_plot([a, b], width=11, height=5)
        grid_lines = [l for l in out.splitlines() if "|" in l]
        plotted = "".join(grid_lines)
        # only the second series' marker ('o') remains at the shared point
        assert "o" in plotted
        assert "*" not in plotted

    def test_width_parameter_respected(self):
        out = line_plot([Series("s", [0, 1], [0, 1])], width=30)
        grid_lines = [l for l in out.splitlines() if l.strip().endswith("|") or "|" in l]
        assert all(len(l) <= 30 + 12 for l in grid_lines)
