"""Tests for repro.util.tables."""

from repro.util.tables import render_table


class TestRenderTable:
    def test_basic_alignment(self):
        out = render_table([["a", 1], ["bb", 22]], header=["name", "n"])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert lines[2].startswith("a ")
        assert lines[3].endswith("22")

    def test_default_alignment_left_then_right(self):
        out = render_table([["x", 1]], header=["col", "val"])
        # numeric column is right-aligned under its header
        assert out.splitlines()[2].rstrip().endswith("1")

    def test_explicit_alignment(self):
        out = render_table([["a", "b"]], align="rr")
        assert out == "a | b"

    def test_empty_table(self):
        assert render_table([]) == "(empty table)"

    def test_ragged_rows_padded(self):
        out = render_table([["a"], ["b", "c"]])
        assert len(out.splitlines()) == 2

    def test_float_formatting(self):
        out = render_table([[0.123456789]])
        assert "0.123457" in out

    def test_no_header(self):
        out = render_table([["only", "row"]])
        assert "-+-" not in out
