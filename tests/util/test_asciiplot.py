"""Tests for repro.util.asciiplot."""

import math

import pytest

from repro.util.asciiplot import Series, line_plot


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", [1, 2], [1])

    def test_values_coerced_to_float(self):
        s = Series("s", [1], [2])
        assert s.xs == [1.0] and s.ys == [2.0]


class TestLinePlot:
    def test_contains_markers_and_legend(self):
        out = line_plot([Series("alpha", [0, 1], [0, 1])])
        assert "*" in out
        assert "alpha" in out

    def test_multiple_series_distinct_markers(self):
        out = line_plot(
            [Series("a", [0, 1], [0, 1]), Series("b", [0, 1], [1, 0])]
        )
        assert "* a" in out and "o b" in out

    def test_empty_series_degrades_gracefully(self):
        out = line_plot([Series("none", [], [])], title="t")
        assert "(no data)" in out

    def test_nan_points_skipped(self):
        out = line_plot([Series("s", [0, 1, 2], [0, math.nan, 2])])
        assert "*" in out

    def test_constant_series_does_not_crash(self):
        out = line_plot([Series("flat", [0, 1, 2], [5, 5, 5])])
        assert "5" in out

    def test_axis_labels_present(self):
        out = line_plot(
            [Series("s", [0.4, 1.0], [1, 2])],
            xlabel="alpha",
            ylabel="ops",
            title="T",
        )
        assert "alpha" in out and "ops" in out and "T" in out

    def test_y_range_rendered(self):
        out = line_plot([Series("s", [0, 10], [3, 17])])
        assert "17" in out and "3" in out

    def test_respects_height(self):
        out = line_plot([Series("s", [0, 1], [0, 1])], height=5)
        # 5 grid rows + axis + x labels + legend
        assert len(out.splitlines()) < 12
