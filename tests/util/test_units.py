"""Tests for repro.util.units: parsing and formatting byte sizes."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import (
    GB,
    GiB,
    KB,
    MB,
    TB,
    format_bytes,
    parse_bytes,
)


class TestConstants:
    def test_decimal_ladder(self):
        assert KB == 1000 and MB == 1000 * KB and GB == 1000 * MB
        assert TB == 1000 * GB

    def test_binary_differs_from_decimal(self):
        assert GiB == 2**30 != GB


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (1000, "1.0KB"),
            (1_400_000_000_000, "1.4TB"),
            (700 * GB, "700.0GB"),
            (2.5 * MB, "2.5MB"),
        ],
    )
    def test_examples(self, value, expected):
        assert format_bytes(value) == expected

    def test_negative_values_keep_sign(self):
        assert format_bytes(-1500) == "-1.5KB"

    def test_precision_parameter(self):
        assert format_bytes(1_234_000, precision=3) == "1.234MB"


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1.4TB", 1_400_000_000_000),
            ("700 GB", 700 * GB),
            ("700gb", 700 * GB),
            ("5", 5),
            ("2KiB", 2048),
            ("3g", 3 * GB),
            (42, 42),
            (1.5, 1),
        ],
    )
    def test_examples(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("bad", ["", "GB", "1.2.3MB", "12 parsecs", "-5GB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_bytes(bad)

    def test_rejects_negative_number(self):
        with pytest.raises(ValueError):
            parse_bytes(-3)

    @given(st.integers(min_value=0, max_value=10**15))
    def test_format_parse_roundtrip_within_precision(self, n):
        # format rounds to one decimal of the leading unit; parsing back
        # must land within that rounding error.
        text = format_bytes(n)
        back = parse_bytes(text)
        unit = max(1, 10 ** (len(str(max(n, 1))) - 2))
        assert abs(back - n) <= 0.06 * max(n, 1) + 1
