"""Differential property suite: naive vs vectorized decision engines.

The contract (see :mod:`repro.core.engine`): the two engines are
**bit-identical** — same decision stream, same statistics, same event
log, same snapshot dicts — for every combination of policy knobs.  This
suite replays the same randomized workload (requests interleaved with
``evict_idle`` sweeps, federation ``adopt``s, ``split``s, and
snapshot/restore round-trips that *cross* engines) into two caches that
differ only in ``engine=``, asserting equality after every operation.

The workload generator is seeded per knob combination, so failures
reproduce exactly; the grid is exhaustive over
hit_selection × candidate_order × eviction × merge_write_mode ×
use_minhash × conflict policy (216 combinations, ≥1000 requests each).
"""

import itertools
from random import Random

import numpy as np
import pytest

from repro.core.cache import (
    CANDIDATE_ORDER,
    EVICTION,
    HIT_SELECTION,
    LandlordCache,
)
from repro.packages.conflicts import NoConflicts, SlotConflicts

# Package ids are name/version so SlotConflicts has real slots to clash.
NAMES = [f"lib{i}" for i in range(16)]
VERSIONS = ("1.0", "2.0", "3.0")
PACKAGES = [f"{name}/{ver}" for name in NAMES for ver in VERSIONS]
SIZES = {pid: 5 + (i * 37) % 90 for i, pid in enumerate(PACKAGES)}

CAPACITY = 1200  # small enough that eviction runs constantly
ALPHA = 0.6
N_REQUESTS = 1000

GRID = list(
    itertools.product(
        HIT_SELECTION,
        CANDIDATE_ORDER,
        EVICTION,
        ("full", "delta"),
        (False, True),  # use_minhash
        (False, True),  # slot conflicts
    )
)


def _size_of(pid: str) -> int:
    return SIZES[pid]


def _combo_id(combo) -> str:
    hit, order, evict, mode, minhash, conflicts = combo
    return "-".join(
        [
            hit,
            order,
            evict,
            mode,
            "minhash" if minhash else "exact",
            "slots" if conflicts else "noconf",
        ]
    )


def make_pair(combo):
    """Two caches differing only in ``engine=``."""
    hit, order, evict, mode, minhash, conflicts = combo
    kwargs = dict(
        hit_selection=hit,
        candidate_order=order,
        eviction=evict,
        merge_write_mode=mode,
        use_minhash=minhash,
        minhash_perm=8,
        minhash_bands=4,
        record_events=True,
        conflict_policy=SlotConflicts() if conflicts else NoConflicts(),
    )
    naive = LandlordCache(
        CAPACITY, ALPHA, _size_of, engine="naive",
        rng=np.random.default_rng(7), **kwargs,
    )
    vec = LandlordCache(
        CAPACITY, ALPHA, _size_of, engine="vectorized",
        rng=np.random.default_rng(7), **kwargs,
    )
    return naive, vec


def decision_key(decision):
    return (
        decision.action,
        decision.image.id,
        decision.image.size,
        decision.requested_bytes,
        decision.distance,
        decision.bytes_added,
        tuple(decision.evicted),
    )


def assert_same_state(naive, vec):
    assert naive.stats.__dict__ == vec.stats.__dict__
    assert naive.events == vec.events
    assert naive.snapshot() == vec.snapshot()
    assert naive.cached_bytes == vec.cached_bytes
    assert naive.unique_bytes == vec.unique_bytes


def run_differential(combo, n_requests=N_REQUESTS):
    naive, vec = make_pair(combo)
    rng = Random("|".join(map(str, combo)))  # str seeding is stable
    for step in range(1, n_requests + 1):
        spec = frozenset(rng.sample(PACKAGES, rng.randint(1, 6)))
        d_naive = naive.request(spec)
        d_vec = vec.request(spec)
        assert decision_key(d_naive) == decision_key(d_vec), (
            f"step {step}: engines diverged on {sorted(spec)}"
        )

        if step % 61 == 0:
            adopted = frozenset(rng.sample(PACKAGES, rng.randint(1, 4)))
            a_naive = naive.adopt(adopted)
            a_vec = vec.adopt(adopted)
            assert (a_naive.id, a_naive.size) == (a_vec.id, a_vec.size)

        if step % 97 == 0:
            horizon = rng.randint(0, 25)
            assert naive.evict_idle(horizon) == vec.evict_idle(horizon)

        if step % 113 == 0 and naive._images:
            image_id = rng.choice(sorted(naive._images))
            pkgs = sorted(naive._images[image_id].packages)
            rng.shuffle(pkgs)
            cut = rng.randint(1, len(pkgs))
            parts = [frozenset(pkgs[:cut])]
            if cut < len(pkgs) and rng.random() < 0.8:
                parts.append(frozenset(pkgs[cut:]))
            s_naive = naive.split(image_id, parts)
            s_vec = vec.split(image_id, parts)
            assert [im.id for im in s_naive] == [im.id for im in s_vec]

        if step % 149 == 0:
            # Snapshot both, then restore each snapshot into a fresh
            # cache of the *other* engine: a restored matrix must pick
            # up exactly where the big-int path left off (and vice
            # versa).  Events reset at the boundary, so compare first.
            assert_same_state(naive, vec)
            snap_naive, snap_vec = naive.snapshot(), vec.snapshot()
            assert snap_naive == snap_vec
            naive, vec = make_pair(combo)
            naive.restore(snap_vec)
            vec.restore(snap_naive)
    assert_same_state(naive, vec)


@pytest.mark.parametrize("combo", GRID, ids=_combo_id)
def test_engines_bit_identical(combo):
    run_differential(combo)
