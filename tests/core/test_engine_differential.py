"""Differential property suite: naive vs vectorized decision engines.

The contract (see :mod:`repro.core.engine`): the two engines are
**bit-identical** — same decision stream, same statistics, same event
log, same snapshot dicts — for every combination of policy knobs.  This
suite replays the same randomized workload (requests interleaved with
``evict_idle`` sweeps, federation ``adopt``s, ``split``s, and
snapshot/restore round-trips that *cross* engines) into two caches that
differ only in ``engine=``, asserting equality after every operation.

The workload generator is seeded per knob combination, so failures
reproduce exactly; the grid is exhaustive over
hit_selection × candidate_order × eviction × merge_write_mode ×
use_minhash × conflict policy (216 combinations, ≥1000 requests each).
"""

import itertools
from random import Random

import numpy as np
import pytest

from repro.core.cache import (
    CANDIDATE_ORDER,
    EVICTION,
    HIT_SELECTION,
    LandlordCache,
)
from repro.packages.conflicts import NoConflicts, SlotConflicts

# Package ids are name/version so SlotConflicts has real slots to clash.
NAMES = [f"lib{i}" for i in range(16)]
VERSIONS = ("1.0", "2.0", "3.0")
PACKAGES = [f"{name}/{ver}" for name in NAMES for ver in VERSIONS]
SIZES = {pid: 5 + (i * 37) % 90 for i, pid in enumerate(PACKAGES)}

CAPACITY = 1200  # small enough that eviction runs constantly
ALPHA = 0.6
N_REQUESTS = 1000

GRID = list(
    itertools.product(
        HIT_SELECTION,
        CANDIDATE_ORDER,
        EVICTION,
        ("full", "delta"),
        (False, True),  # use_minhash
        (False, True),  # slot conflicts
    )
)


def _size_of(pid: str) -> int:
    return SIZES[pid]


def _combo_id(combo) -> str:
    hit, order, evict, mode, minhash, conflicts = combo
    return "-".join(
        [
            hit,
            order,
            evict,
            mode,
            "minhash" if minhash else "exact",
            "slots" if conflicts else "noconf",
        ]
    )


def make_pair(combo, lsh_min_live=None):
    """Two caches differing only in ``engine=``.

    ``lsh_min_live`` lowers the vectorized engine's signature-LSH build
    threshold so the prefilter probe engages on these tiny pools (the
    production default waits for hundreds of live images).
    """
    hit, order, evict, mode, minhash, conflicts = combo
    kwargs = dict(
        hit_selection=hit,
        candidate_order=order,
        eviction=evict,
        merge_write_mode=mode,
        use_minhash=minhash,
        minhash_perm=8,
        minhash_bands=4,
        record_events=True,
        conflict_policy=SlotConflicts() if conflicts else NoConflicts(),
    )
    naive = LandlordCache(
        CAPACITY, ALPHA, _size_of, engine="naive",
        rng=np.random.default_rng(7), **kwargs,
    )
    vec = LandlordCache(
        CAPACITY, ALPHA, _size_of, engine="vectorized",
        rng=np.random.default_rng(7), **kwargs,
    )
    if lsh_min_live is not None:
        vec._engine.lsh_min_live = lsh_min_live
    return naive, vec


def decision_key(decision):
    return (
        decision.action,
        decision.image.id,
        decision.image.size,
        decision.requested_bytes,
        decision.distance,
        decision.bytes_added,
        tuple(decision.evicted),
    )


def assert_same_state(naive, vec):
    assert naive.stats.__dict__ == vec.stats.__dict__
    assert naive.events == vec.events
    assert naive.snapshot() == vec.snapshot()
    assert naive.cached_bytes == vec.cached_bytes
    assert naive.unique_bytes == vec.unique_bytes


def run_differential(combo, n_requests=N_REQUESTS, lsh_min_live=None):
    naive, vec = make_pair(combo, lsh_min_live=lsh_min_live)
    rng = Random("|".join(map(str, combo)))  # str seeding is stable
    for step in range(1, n_requests + 1):
        spec = frozenset(rng.sample(PACKAGES, rng.randint(1, 6)))
        d_naive = naive.request(spec)
        d_vec = vec.request(spec)
        assert decision_key(d_naive) == decision_key(d_vec), (
            f"step {step}: engines diverged on {sorted(spec)}"
        )

        if step % 61 == 0:
            adopted = frozenset(rng.sample(PACKAGES, rng.randint(1, 4)))
            a_naive = naive.adopt(adopted)
            a_vec = vec.adopt(adopted)
            assert (a_naive.id, a_naive.size) == (a_vec.id, a_vec.size)

        if step % 97 == 0:
            horizon = rng.randint(0, 25)
            assert naive.evict_idle(horizon) == vec.evict_idle(horizon)

        if step % 113 == 0 and naive._images:
            image_id = rng.choice(sorted(naive._images))
            pkgs = sorted(naive._images[image_id].packages)
            rng.shuffle(pkgs)
            cut = rng.randint(1, len(pkgs))
            parts = [frozenset(pkgs[:cut])]
            if cut < len(pkgs) and rng.random() < 0.8:
                parts.append(frozenset(pkgs[cut:]))
            s_naive = naive.split(image_id, parts)
            s_vec = vec.split(image_id, parts)
            assert [im.id for im in s_naive] == [im.id for im in s_vec]

        if step % 149 == 0:
            # Snapshot both, then restore each snapshot into a fresh
            # cache of the *other* engine: a restored matrix must pick
            # up exactly where the big-int path left off (and vice
            # versa).  Events reset at the boundary, so compare first.
            assert_same_state(naive, vec)
            snap_naive, snap_vec = naive.snapshot(), vec.snapshot()
            assert snap_naive == snap_vec
            naive, vec = make_pair(combo, lsh_min_live=lsh_min_live)
            naive.restore(snap_vec)
            vec.restore(snap_naive)
    assert_same_state(naive, vec)
    return naive, vec


@pytest.mark.parametrize("combo", GRID, ids=_combo_id)
def test_engines_bit_identical(combo):
    run_differential(combo)


# -- LSH-prefiltered and batched-submission variants ------------------------
#
# Reduced grids (deterministic strides over the full 216-combination grid)
# keep the added runtime modest while still crossing every knob value.

LSH_GRID = GRID[::12]
BATCH_GRID = GRID[::18]
BATCH_LSH_GRID = GRID[::36]


def run_differential_batched(
    combo, batch_size, n_requests=600, lsh_min_live=None
):
    """Drive both engines through ``submit_batch`` windows, interleaving
    maintenance operations (adopt / evict_idle / split) and cross-engine
    snapshot/restore round-trips *between* windows.

    ``batch_size="auto"`` gives each cache its own AIMD governor: the
    naive engine reports a zero dirty rate (no predictions to repair)
    while the vectorized engine reports the real one, so the two replay
    the same stream with *different* window boundaries — the strongest
    form of the windowing-never-affects-decisions invariant."""
    naive, vec = make_pair(combo, lsh_min_live=lsh_min_live)
    rng = Random("batched|" + "|".join(map(str, combo)) + f"|{batch_size}")
    submission = 400 if batch_size == "auto" else 2 * batch_size
    submitted = 0
    window_no = 0
    while submitted < n_requests:
        window_no += 1
        window = [
            frozenset(rng.sample(PACKAGES, rng.randint(1, 6)))
            for _ in range(rng.randint(1, submission))
        ]
        d_naive = naive.submit_batch(window, batch_size=batch_size)
        d_vec = vec.submit_batch(window, batch_size=batch_size)
        assert [decision_key(d) for d in d_naive] == [
            decision_key(d) for d in d_vec
        ], f"window {window_no}: engines diverged"
        submitted += len(window)

        if window_no % 2 == 0:
            adopted = frozenset(rng.sample(PACKAGES, rng.randint(1, 4)))
            a_naive = naive.adopt(adopted)
            a_vec = vec.adopt(adopted)
            assert (a_naive.id, a_naive.size) == (a_vec.id, a_vec.size)

        if window_no % 3 == 0:
            horizon = rng.randint(0, 25)
            assert naive.evict_idle(horizon) == vec.evict_idle(horizon)

        if window_no % 4 == 0 and naive._images:
            image_id = rng.choice(sorted(naive._images))
            pkgs = sorted(naive._images[image_id].packages)
            rng.shuffle(pkgs)
            cut = rng.randint(1, len(pkgs))
            parts = [frozenset(pkgs[:cut])]
            if cut < len(pkgs) and rng.random() < 0.8:
                parts.append(frozenset(pkgs[cut:]))
            s_naive = naive.split(image_id, parts)
            s_vec = vec.split(image_id, parts)
            assert [im.id for im in s_naive] == [im.id for im in s_vec]

        if window_no % 5 == 0:
            assert_same_state(naive, vec)
            snap_naive, snap_vec = naive.snapshot(), vec.snapshot()
            assert snap_naive == snap_vec
            naive, vec = make_pair(combo, lsh_min_live=lsh_min_live)
            naive.restore(snap_vec)
            vec.restore(snap_naive)
    assert_same_state(naive, vec)
    return naive, vec


@pytest.mark.parametrize("combo", LSH_GRID, ids=_combo_id)
def test_engines_bit_identical_with_lsh_prefilter(combo):
    run_differential(combo, n_requests=600, lsh_min_live=1)


@pytest.mark.parametrize("combo", BATCH_GRID, ids=_combo_id)
def test_engines_bit_identical_batched(combo):
    run_differential_batched(combo, batch_size=7)


@pytest.mark.parametrize("combo", BATCH_LSH_GRID, ids=_combo_id)
def test_engines_bit_identical_batched_with_lsh_prefilter(combo):
    run_differential_batched(combo, batch_size=5, lsh_min_live=1)


def test_batch_kernels_match_reference():
    """Direct engine-level differential: ``find_hits`` and
    ``scan_candidates_batch`` agree with the naive loops on identical
    cache state, including hit identity, candidate order, distances, and
    examined counts."""
    combo = ("smallest", "distance", "lru", "full", False, False)
    naive, vec = make_pair(combo, lsh_min_live=1)
    rng = Random("kernels")
    for _ in range(300):
        spec = frozenset(rng.sample(PACKAGES, rng.randint(1, 6)))
        naive.request(spec)
        vec.request(spec)

    specs = [
        frozenset(rng.sample(PACKAGES, rng.randint(1, 6))) for _ in range(64)
    ]
    n_masks = [naive._intern(spec)[0] for spec in specs]
    v_masks = [vec._intern(spec)[0] for spec in specs]
    assert n_masks == v_masks

    hits_naive = naive._engine.find_hits(n_masks)
    hits_vec = vec._engine.find_hits(v_masks)
    assert [h.id if h else None for h in hits_naive] == [
        h.id if h else None for h in hits_vec
    ]

    queries = [(mask, mask.bit_count()) for mask in n_masks]
    cands_naive = naive._engine.scan_candidates_batch(queries, ALPHA)
    cands_vec = vec._engine.scan_candidates_batch(queries, ALPHA)
    for (cn, examined_n), (cv, examined_v) in zip(cands_naive, cands_vec):
        assert examined_n == examined_v
        assert [(d, img.id) for d, img in cn] == [(d, img.id) for d, img in cv]


# -- Adaptive batching, forced compaction, and scratch-budget variants ------

ADAPTIVE_GRID = GRID[::24]
COMPACT_GRID = GRID[5::24]


@pytest.mark.parametrize("combo", ADAPTIVE_GRID, ids=_combo_id)
def test_engines_bit_identical_adaptive_batching(combo):
    run_differential_batched(combo, batch_size="auto", n_requests=800)


@pytest.mark.parametrize("combo", COMPACT_GRID, ids=_combo_id)
def test_engines_bit_identical_forced_compaction(combo, monkeypatch):
    """Compaction on effectively every eviction, mid-stream.

    With the thresholds floored, any dead row triggers a live-row
    repack, so the sequential differential (which interleaves
    evict_idle, splits, and cross-engine snapshot/restore round-trips)
    keeps crossing compaction boundaries — decisions, events, stats and
    snapshots must stay bit-identical throughout."""
    from repro.core.engine import VectorizedEngine

    monkeypatch.setattr(VectorizedEngine, "_COMPACT_MIN_TOP", 1)
    monkeypatch.setattr(VectorizedEngine, "_COMPACT_DEAD_FRACTION", 0.0)
    naive, vec = run_differential(combo, n_requests=600)
    # A final mass idle-eviction guarantees at least one compaction on
    # the *current* pair (restore boundaries reset the counters).
    assert naive.evict_idle(0) == vec.evict_idle(0)
    assert vec._engine.compaction_stats["compactions"] >= 1
    assert vec._engine._top == vec._engine._n_live
    assert not vec._engine._free
    assert_same_state(naive, vec)


def test_snapshot_restore_across_compaction_boundary():
    """Snapshots taken right after a compaction restore exactly, into
    either engine, and both caches continue bit-identically."""
    combo = ("smallest", "distance", "lru", "full", False, False)
    naive, vec = make_pair(combo)
    rng = Random("compaction-boundary")
    for _ in range(400):
        spec = frozenset(rng.sample(PACKAGES, rng.randint(1, 6)))
        naive.request(spec)
        vec.request(spec)
    assert naive.evict_idle(1) == vec.evict_idle(1)

    engine = vec._engine
    # Force the repack regardless of the organic dead fraction.
    engine.compact()
    assert engine._top == engine._n_live
    assert not engine._free
    assert_same_state(naive, vec)

    snap = vec.snapshot()
    assert snap == naive.snapshot()
    naive2, vec2 = make_pair(combo)
    naive2.restore(snap)   # vectorized snapshot into the big-int path
    vec2.restore(snap)
    for _ in range(200):
        spec = frozenset(rng.sample(PACKAGES, rng.randint(1, 6)))
        d_naive = naive2.request(spec)
        d_vec = vec2.request(spec)
        assert decision_key(d_naive) == decision_key(d_vec)
    assert_same_state(naive2, vec2)


def test_adaptive_fixed_naive_agree():
    """The same stream through naive-sequential, vectorized fixed
    windows, and vectorized AIMD-governed windows lands on the same
    snapshot: window sizing is pure dispatch, never policy."""
    combo = ("mru", "insertion", "lru", "delta", False, False)
    rng = Random("three-ways")
    stream = [
        frozenset(rng.sample(PACKAGES, rng.randint(1, 6)))
        for _ in range(900)
    ]
    naive, _ = make_pair(combo)
    _, fixed = make_pair(combo)
    _, auto = make_pair(combo)
    for spec in stream:
        naive.request(spec)
    fixed.submit_batch(stream, batch_size=64)
    auto.submit_batch(stream, batch_size="auto")
    governor = auto.last_batch_governor
    assert governor is not None and governor.steps >= 1
    assert naive.snapshot() == fixed.snapshot() == auto.snapshot()
    assert naive.stats.__dict__ == auto.stats.__dict__


def test_scratch_budget_chunking_bit_identical():
    """A 1 MiB scratch budget forces the batched kernels through many
    small chunks; decisions must not change relative to the 32 MiB
    default or the naive reference."""
    combo = ("smallest", "distance", "lru", "full", False, False)
    hit, order, evict, mode, minhash, conflicts = combo
    kwargs = dict(
        hit_selection=hit, candidate_order=order, eviction=evict,
        merge_write_mode=mode, use_minhash=minhash,
        conflict_policy=NoConflicts(), record_events=True,
    )
    naive = LandlordCache(CAPACITY, ALPHA, _size_of, engine="naive", **kwargs)
    wide = LandlordCache(
        CAPACITY, ALPHA, _size_of, engine="vectorized", **kwargs
    )
    tight = LandlordCache(
        CAPACITY, ALPHA, _size_of, engine="vectorized", scratch_mb=1.0,
        **kwargs,
    )
    assert tight._engine._cell_budget < wide._engine._cell_budget

    rng = Random("scratch")
    submitted = 0
    while submitted < 600:
        window = [
            frozenset(rng.sample(PACKAGES, rng.randint(1, 6)))
            for _ in range(rng.randint(32, 128))
        ]
        for cache in (naive, wide, tight):
            cache.submit_batch(window, batch_size=64)
        submitted += len(window)
    assert naive.snapshot() == wide.snapshot() == tight.snapshot()
    assert naive.events == wide.events == tight.events
