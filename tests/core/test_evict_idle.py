"""Tests for LandlordCache.evict_idle (stale-image maintenance)."""

import pytest

from repro.core.cache import LandlordCache

SIZE = {f"p{i}": 10 for i in range(20)}


def cache():
    return LandlordCache(10**9, 0.0, SIZE.__getitem__, record_events=True)


class TestEvictIdle:
    def test_idle_images_swept(self):
        c = cache()
        c.request(frozenset({"p0"}))          # clock 1
        for i in range(1, 6):
            c.request(frozenset({f"p{i}"}))   # clocks 2..6
        evicted = c.evict_idle(max_idle_requests=3)
        assert len(evicted) >= 1
        # the most recent images survive
        assert c.peek(frozenset({"p5"})) is not None
        assert c.peek(frozenset({"p0"})) is None

    def test_recently_used_images_survive(self):
        c = cache()
        c.request(frozenset({"p0"}))
        c.request(frozenset({"p1"}))
        c.request(frozenset({"p0"}))  # touch p0's image
        evicted = c.evict_idle(max_idle_requests=1)
        assert c.peek(frozenset({"p0"})) is not None
        assert all("p0" not in SIZE or True for _ in evicted)

    def test_counts_as_deletes_and_emits_events(self):
        c = cache()
        c.request(frozenset({"p0"}))
        for i in range(1, 5):
            c.request(frozenset({f"p{i}"}))
        before = c.stats.deletes
        evicted = c.evict_idle(0)
        assert c.stats.deletes == before + len(evicted)
        assert sum(1 for e in c.events if e.kind.value == "delete") >= len(evicted)

    def test_zero_horizon_keeps_only_latest(self):
        c = cache()
        for i in range(4):
            c.request(frozenset({f"p{i}"}))
        c.evict_idle(0)
        assert len(c) == 1

    def test_huge_horizon_is_noop(self):
        c = cache()
        for i in range(4):
            c.request(frozenset({f"p{i}"}))
        assert c.evict_idle(10**6) == []
        assert len(c) == 4

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            cache().evict_idle(-1)

    def test_gauges_consistent_after_sweep(self):
        c = cache()
        for i in range(6):
            c.request(frozenset({f"p{i}", "p9"}))
        c.evict_idle(2)
        assert c.cached_bytes == sum(img.size for img in c.images)
        union = set().union(*[i.packages for i in c.images]) if c.images else set()
        assert c.unique_bytes == sum(SIZE[p] for p in union)
