"""Tests for LandlordCache.evict_idle (stale-image maintenance)."""

import pytest

from repro.core.cache import LandlordCache

SIZE = {f"p{i}": 10 for i in range(20)}


def cache():
    return LandlordCache(10**9, 0.0, SIZE.__getitem__, record_events=True)


class TestEvictIdle:
    def test_idle_images_swept(self):
        c = cache()
        c.request(frozenset({"p0"}))          # clock 1
        for i in range(1, 6):
            c.request(frozenset({f"p{i}"}))   # clocks 2..6
        evicted = c.evict_idle(max_idle_requests=3)
        assert len(evicted) >= 1
        # the most recent images survive
        assert c.peek(frozenset({"p5"})) is not None
        assert c.peek(frozenset({"p0"})) is None

    def test_recently_used_images_survive(self):
        c = cache()
        c.request(frozenset({"p0"}))
        c.request(frozenset({"p1"}))
        c.request(frozenset({"p0"}))  # touch p0's image
        evicted = c.evict_idle(max_idle_requests=1)
        assert c.peek(frozenset({"p0"})) is not None
        assert all("p0" not in SIZE or True for _ in evicted)

    def test_counts_as_deletes_and_emits_events(self):
        c = cache()
        c.request(frozenset({"p0"}))
        for i in range(1, 5):
            c.request(frozenset({f"p{i}"}))
        before = c.stats.deletes
        evicted = c.evict_idle(0)
        assert c.stats.deletes == before + len(evicted)
        assert sum(1 for e in c.events if e.kind.value == "delete") >= len(evicted)

    def test_zero_horizon_keeps_only_latest(self):
        c = cache()
        for i in range(4):
            c.request(frozenset({f"p{i}"}))
        c.evict_idle(0)
        assert len(c) == 1

    def test_huge_horizon_is_noop(self):
        c = cache()
        for i in range(4):
            c.request(frozenset({f"p{i}"}))
        assert c.evict_idle(10**6) == []
        assert len(c) == 4

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            cache().evict_idle(-1)

    def test_gauges_consistent_after_sweep(self):
        c = cache()
        for i in range(6):
            c.request(frozenset({f"p{i}", "p9"}))
        c.evict_idle(2)
        assert c.cached_bytes == sum(img.size for img in c.images)
        union = set().union(*[i.packages for i in c.images]) if c.images else set()
        assert c.unique_bytes == sum(SIZE[p] for p in union)


class TestIndexConvention:
    def test_event_and_tracer_agree_on_request_index(self):
        # regression: the DELETE event used stats.requests while the
        # tracer callback used stats.requests - 1, so the event pointed
        # one past the request the trace hung the eviction on.
        from repro.obs.trace import DecisionTracer

        tracer = DecisionTracer()
        c = cache()
        c.enable_tracing(tracer)
        for i in range(4):
            c.request(frozenset({f"p{i}"}))
        evicted = c.evict_idle(0)
        assert len(evicted) == 3
        last_index = c.stats.requests - 1
        delete_events = [e for e in c.events if e.kind.value == "delete"]
        assert {e.request_index for e in delete_events} == {last_index}
        trace = tracer.trace(last_index)
        assert trace is not None
        assert sorted(ev.image_id for ev in trace.evictions) == sorted(evicted)
        assert all(ev.reason == "idle" for ev in trace.evictions)


class TestIdleUnitIsRequests:
    def test_adoptions_do_not_age_requested_images(self):
        # regression: the horizon used to be computed against the internal
        # activity clock, which adopt() advances — a burst of federation
        # pulls made a just-requested image look idle and swept it.
        c = cache()
        c.request(frozenset({"p0"}))
        for i in range(1, 8):
            c.adopt(frozenset({f"p{i}"}))
        assert c.evict_idle(max_idle_requests=3) == []
        assert c.peek(frozenset({"p0"})) is not None

    def test_adopted_images_not_instantly_idle(self):
        c = cache()
        for i in range(5):
            c.request(frozenset({f"p{i}"}))
        adopted = c.adopt(frozenset({"p9"}))
        evicted = c.evict_idle(max_idle_requests=2)
        assert adopted.id not in evicted

    def test_interleaved_adopts_and_requests(self):
        c = cache()
        c.request(frozenset({"p0"}))            # request 1
        c.adopt(frozenset({"p10"}))
        c.request(frozenset({"p1"}))            # request 2
        c.adopt(frozenset({"p11"}))
        c.request(frozenset({"p2"}))            # request 3
        # horizon = 3 - 2 = 1: nothing is older than request 1
        assert c.evict_idle(max_idle_requests=2) == []
        evicted = c.evict_idle(max_idle_requests=1)
        # horizon 2 sweeps what was last active at request-time 1: p0's
        # image and the adoption that arrived between requests 1 and 2;
        # the later adoption (request-time 2) survives alongside p1, p2
        assert c.peek(frozenset({"p0"})) is None
        assert c.peek(frozenset({"p10"})) is None
        assert c.peek(frozenset({"p1"})) is not None
        assert c.peek(frozenset({"p11"})) is not None
        assert len(evicted) == 2
