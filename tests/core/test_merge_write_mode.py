"""Tests for the merge-write-mode ablation knob (full vs delta rewrite)."""

import pytest

from repro.core.cache import LandlordCache

SIZE = {f"p{i}": 10 for i in range(20)}


def cache(mode):
    return LandlordCache(10_000, 0.9, SIZE.__getitem__,
                         merge_write_mode=mode)


class TestMergeWriteMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="merge_write_mode"):
            cache("incremental")

    def test_full_mode_rewrites_whole_image(self):
        c = cache("full")
        c.request(frozenset({"p0", "p1", "p2"}))  # 30 written
        c.request(frozenset({"p0", "p1", "p3"}))  # merge -> 40 rewritten
        assert c.stats.bytes_written == 30 + 40

    def test_delta_mode_writes_only_added_content(self):
        c = cache("delta")
        c.request(frozenset({"p0", "p1", "p2"}))  # 30 written
        c.request(frozenset({"p0", "p1", "p3"}))  # merge adds p3 -> +10
        assert c.stats.bytes_written == 30 + 10

    def test_modes_agree_on_everything_but_writes(self):
        streams = [
            frozenset({"p0", "p1", "p2"}),
            frozenset({"p0", "p1", "p3"}),
            frozenset({"p4", "p5"}),
            frozenset({"p0", "p1"}),
        ]
        full, delta = cache("full"), cache("delta")
        for spec in streams:
            a = full.request(spec)
            b = delta.request(spec)
            assert a.action == b.action
            assert a.image.packages == b.image.packages
        assert full.cached_bytes == delta.cached_bytes
        assert full.unique_bytes == delta.unique_bytes
        assert full.stats.merges == delta.stats.merges
        assert full.stats.bytes_written > delta.stats.bytes_written

    def test_delta_write_amplification_stays_near_one(self, small_sft):
        """The mechanism ablation: with delta writes, even lax alpha does
        not inflate I/O — Figure 4c's blow-up is the full rewrite."""
        from repro.htc.simulator import SimulationConfig, simulate
        from repro.util.units import GB

        base = SimulationConfig(
            alpha=0.9, capacity=90 * GB, n_unique=40, repeats=4,
            max_selection=10, n_packages=600, repo_total_size=45 * GB,
            seed=3, record_timeline=False,
        )
        full = simulate(base, repository=small_sft)
        delta = simulate(base.with_(merge_write_mode="delta"),
                         repository=small_sft)
        assert delta.stats.write_amplification < 1.0
        assert full.stats.write_amplification > delta.stats.write_amplification
