"""Tests for repro.core.federation.FederatedLandlord."""

import pytest

from repro.containers.registry import ImageRegistry
from repro.core.events import EventKind
from repro.core.federation import FederatedLandlord
from repro.util.units import GB


@pytest.fixture()
def registry():
    return ImageRegistry()


def make_site(repo, registry, **kw):
    return FederatedLandlord(
        repo, capacity=50 * GB, alpha=0.8, registry=registry, **kw
    )


def a_spec(repo, offset=0, k=4):
    ids = repo.ids
    return [ids[(offset * 13 + i * 3) % len(ids)] for i in range(k)]


class TestFederation:
    def test_build_is_pushed(self, small_sft, registry):
        site = make_site(small_sft, registry)
        prepared = site.prepare(a_spec(small_sft))
        assert prepared.action is EventKind.INSERT
        assert site.federation.pushes == 1
        assert len(registry) == 1

    def test_second_site_pulls_instead_of_building(self, small_sft, registry):
        site_a = make_site(small_sft, registry)
        site_b = make_site(small_sft, registry)
        spec = a_spec(small_sft)
        site_a.prepare(spec)
        prepared_b = site_b.prepare(spec)
        # site B never built: the adopted registry image served a hit
        assert prepared_b.action is EventKind.HIT
        assert prepared_b.bytes_written == 0
        assert site_b.federation.pulls == 1
        assert site_b.federation.pull_bytes == prepared_b.image.size
        assert site_b.cache.stats.adoptions == 1

    def test_local_hit_skips_registry(self, small_sft, registry):
        site = make_site(small_sft, registry)
        spec = a_spec(small_sft)
        site.prepare(spec)
        pulls_before = registry.stats.pulls
        prepared = site.prepare(spec)
        assert prepared.action is EventKind.HIT
        assert registry.stats.pulls == pulls_before

    def test_oversized_pull_declined(self, small_sft, registry):
        site_a = make_site(small_sft, registry)
        # A built a huge image covering lots of the repo.
        site_a.prepare(small_sft.ids[: len(small_sft) // 2])
        site_b = make_site(small_sft, registry, max_pull_overhead=2.0)
        tiny = [small_sft.ids[0]]
        prepared = site_b.prepare(tiny)
        assert site_b.federation.declined_pulls == 1
        assert site_b.federation.pulls == 0
        assert prepared.action in (EventKind.INSERT, EventKind.MERGE)

    def test_no_registry_degrades_to_plain_landlord(self, small_sft):
        site = FederatedLandlord(small_sft, capacity=50 * GB, registry=None)
        prepared = site.prepare(a_spec(small_sft))
        assert prepared.action is EventKind.INSERT
        assert site.federation.pushes == 0

    def test_push_dedup_across_sites(self, small_sft, registry):
        spec = a_spec(small_sft)
        site_a = make_site(small_sft, registry)
        site_b = make_site(small_sft, registry, max_pull_overhead=1.0)
        site_a.prepare(spec)
        # force B to build (decline its own pull) then push identical contents
        site_b.max_pull_overhead = 1.0
        site_b.prepare(spec)
        assert registry.stats.deduplicated_pushes + len(registry) >= 1
        assert len(registry) == 1  # identical contents stored once

    def test_global_build_io_reduced(self, small_sft, registry):
        """Federation headline: N sites, one build."""
        specs = [a_spec(small_sft, offset=i) for i in range(3)]
        federated_written = 0
        sites = [make_site(small_sft, registry) for _ in range(4)]
        for site in sites:
            for spec in specs:
                site.prepare(spec)
            federated_written += site.cache.stats.bytes_written

        isolated_written = 0
        for _ in range(4):
            solo = FederatedLandlord(small_sft, capacity=50 * GB,
                                     registry=None)
            for spec in specs:
                solo.prepare(spec)
            isolated_written += solo.cache.stats.bytes_written

        assert federated_written < isolated_written

    def test_invalid_overhead(self, small_sft, registry):
        with pytest.raises(ValueError):
            make_site(small_sft, registry, max_pull_overhead=0.5)
