"""Tests for repro.core.similarity."""

import pytest

from repro.core.similarity import (
    containment,
    jaccard_distance,
    jaccard_similarity,
    overlap_coefficient,
)
from repro.core.spec import ImageSpec


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_similarity({"a"}, {"a"}) == 1.0
        assert jaccard_distance({"a"}, {"a"}) == 0.0

    def test_disjoint_sets(self):
        assert jaccard_similarity({"a"}, {"b"}) == 0.0
        assert jaccard_distance({"a"}, {"b"}) == 1.0

    def test_half_overlap(self):
        # |{a}| / |{a,b,c}| = 1/3
        assert jaccard_similarity({"a", "b"}, {"a", "c"}) == pytest.approx(1 / 3)

    def test_paper_example_one_element_difference(self):
        # Two specs differing by one element are close (paper §V).
        a = set(f"p{i}" for i in range(20))
        b = a | {"extra"}
        assert jaccard_distance(a, b) == pytest.approx(1 / 21)

    def test_empty_conventions(self):
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity(set(), {"a"}) == 0.0

    def test_accepts_image_specs(self):
        assert jaccard_distance(ImageSpec(["a/1"]), ImageSpec(["a/1"])) == 0.0

    def test_mixed_spec_and_set(self):
        assert jaccard_similarity(ImageSpec(["a/1"]), {"a/1"}) == 1.0


class TestContainment:
    def test_full_containment(self):
        assert containment({"a"}, {"a", "b"}) == 1.0

    def test_partial(self):
        assert containment({"a", "b"}, {"a"}) == 0.5

    def test_empty_request_always_contained(self):
        assert containment(set(), {"a"}) == 1.0
        assert containment(set(), set()) == 1.0

    def test_asymmetric(self):
        assert containment({"a"}, {"a", "b"}) != containment({"a", "b"}, {"a"})


class TestOverlapCoefficient:
    def test_subset_gives_one(self):
        assert overlap_coefficient({"a"}, {"a", "b"}) == 1.0

    def test_disjoint_gives_zero(self):
        assert overlap_coefficient({"a"}, {"b"}) == 0.0

    def test_empty_convention(self):
        assert overlap_coefficient(set(), {"a"}) == 1.0
