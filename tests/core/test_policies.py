"""Tests for repro.core.policies (the baseline strategies)."""

import pytest

from repro.core.events import EventKind
from repro.core.policies import (
    ExactLRUPolicy,
    FullRepoPolicy,
    NoCachePolicy,
    SingleImagePolicy,
)

SIZE = {f"p{i}": 10 for i in range(50)}


def size_of(pid):
    return SIZE[pid]


def spec(*ids):
    return frozenset(ids)


class TestExactLRU:
    def test_never_merges(self):
        policy = ExactLRUPolicy(10_000, size_of)
        policy.request(spec("p0", "p1"))
        policy.request(spec("p0", "p2"))
        assert policy.stats.merges == 0
        assert policy.stats.inserts == 2

    def test_subset_reuse_still_happens(self):
        policy = ExactLRUPolicy(10_000, size_of)
        policy.request(spec("p0", "p1"))
        assert policy.request(spec("p0")).action is EventKind.HIT

    def test_evicts_lru(self):
        policy = ExactLRUPolicy(30, size_of)
        policy.request(spec("p0", "p1"))
        policy.request(spec("p2"))
        policy.request(spec("p3", "p4"))
        assert policy.stats.deletes >= 1


class TestSingleImage:
    def test_absorbs_everything_even_disjoint(self):
        policy = SingleImagePolicy(size_of)
        policy.request(spec("p0"))
        policy.request(spec("p1"))          # disjoint: d_j = 1.0
        policy.request(spec("p2", "p3"))
        assert len(policy) == 1
        assert policy.cached_bytes == 40

    def test_cache_efficiency_always_one(self):
        policy = SingleImagePolicy(size_of)
        policy.request(spec("p0", "p1"))
        policy.request(spec("p2"))
        assert policy.unique_bytes == policy.cached_bytes

    def test_container_efficiency_degrades(self):
        policy = SingleImagePolicy(size_of)
        for i in range(10):
            policy.request(spec(f"p{i}"))
        # every later request runs in the ever-growing image
        assert policy.stats.container_efficiency < 0.5

    def test_repeat_requests_hit(self):
        policy = SingleImagePolicy(size_of)
        policy.request(spec("p0"))
        policy.request(spec("p1"))
        assert policy.request(spec("p0")).action is EventKind.HIT


class TestFullRepo:
    def test_every_request_is_a_hit(self):
        policy = FullRepoPolicy(SIZE.keys(), size_of)
        for s in (spec("p0"), spec("p1", "p2"), spec("p49")):
            assert policy.request(s).action is EventKind.HIT

    def test_setup_cost_recorded_separately(self):
        policy = FullRepoPolicy(SIZE.keys(), size_of)
        assert policy.setup_bytes_written == 500
        assert policy.stats.bytes_written == 0

    def test_out_of_repo_request_rejected(self):
        policy = FullRepoPolicy(["p0"], size_of)
        with pytest.raises(KeyError):
            policy.request(spec("p1"))

    def test_empty_repo_rejected(self):
        with pytest.raises(ValueError):
            FullRepoPolicy([], size_of)

    def test_container_efficiency_is_request_over_repo(self):
        policy = FullRepoPolicy(SIZE.keys(), size_of)
        policy.request(spec("p0"))
        assert policy.stats.container_efficiency == pytest.approx(10 / 500)


class TestNoCache:
    def test_every_request_is_an_insert(self):
        policy = NoCachePolicy(size_of)
        policy.request(spec("p0"))
        policy.request(spec("p0"))   # identical request, still rebuilt
        assert policy.stats.inserts == 2
        assert policy.stats.hits == 0

    def test_writes_equal_requests(self):
        policy = NoCachePolicy(size_of)
        policy.request(spec("p0", "p1"))
        policy.request(spec("p2"))
        assert policy.stats.bytes_written == policy.stats.requested_bytes == 30

    def test_reports_no_storage(self):
        policy = NoCachePolicy(size_of)
        policy.request(spec("p0"))
        assert policy.cached_bytes == 0
        assert policy.cache_efficiency == 1.0
