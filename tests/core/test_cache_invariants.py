"""Property-based invariants of the LANDLORD cache under random streams.

Whatever the request stream, α, and capacity:

1. the returned image always satisfies the request (superset);
2. gauges are consistent: cached_bytes equals the sum of image sizes, and
   unique_bytes equals the size of the union of cached package sets;
3. after each request the cache holds at most capacity bytes, except for
   the transient overflow of the single image just served;
4. operation counters partition the request count;
5. write accounting: bytes_written is the sum of insert sizes and merge
   rewrites (never less than the bytes of images currently cached... for
   streams with no eviction).
"""

from hypothesis import given, settings, strategies as st

from repro.core.cache import LandlordCache
from repro.core.events import EventKind

PACKAGES = [f"p{i}" for i in range(30)]
SIZE = {p: (i % 7 + 1) * 5 for i, p in enumerate(PACKAGES)}

specs = st.frozensets(st.sampled_from(PACKAGES), min_size=1, max_size=10)
streams = st.lists(specs, min_size=1, max_size=40)
alphas = st.sampled_from([0.0, 0.25, 0.5, 0.75, 0.9, 1.0])
capacities = st.sampled_from([0, 50, 200, 1000, 10**9])


def build_cache(alpha, capacity, **kw):
    return LandlordCache(capacity, alpha, SIZE.__getitem__, **kw)


@settings(max_examples=80, deadline=None)
@given(streams, alphas, capacities)
def test_returned_image_always_satisfies_request(stream, alpha, capacity):
    cache = build_cache(alpha, capacity)
    for request in stream:
        decision = cache.request(request)
        assert request <= decision.image.packages


@settings(max_examples=80, deadline=None)
@given(streams, alphas, capacities)
def test_byte_gauges_consistent(stream, alpha, capacity):
    cache = build_cache(alpha, capacity)
    for request in stream:
        cache.request(request)
        images = cache.images
        assert cache.cached_bytes == sum(img.size for img in images)
        union = set().union(*[img.packages for img in images]) if images else set()
        assert cache.unique_bytes == sum(SIZE[p] for p in union)
        for img in images:
            assert img.size == sum(SIZE[p] for p in img.packages)


@settings(max_examples=80, deadline=None)
@given(streams, alphas, capacities)
def test_capacity_respected_up_to_pinned_image(stream, alpha, capacity):
    cache = build_cache(alpha, capacity)
    for request in stream:
        decision = cache.request(request)
        overflow = max(0, cache.cached_bytes - capacity)
        # Any overflow must be attributable to the just-served image alone.
        assert overflow <= decision.image.size
        if overflow:
            assert len(cache) == 1


@settings(max_examples=80, deadline=None)
@given(streams, alphas, capacities)
def test_operation_counters_partition_requests(stream, alpha, capacity):
    cache = build_cache(alpha, capacity)
    for request in stream:
        cache.request(request)
    stats = cache.stats
    assert stats.requests == len(stream)
    assert stats.hits + stats.merges + stats.inserts == stats.requests
    assert stats.bytes_written <= stats.used_bytes
    assert stats.requested_bytes <= stats.used_bytes


@settings(max_examples=80, deadline=None)
@given(streams, alphas)
def test_event_log_matches_counters(stream, alpha):
    cache = build_cache(alpha, 500, record_events=True)
    for request in stream:
        cache.request(request)
    by_kind = {kind: 0 for kind in EventKind}
    for event in cache.events:
        by_kind[event.kind] += 1
    assert by_kind[EventKind.HIT] == cache.stats.hits
    assert by_kind[EventKind.MERGE] == cache.stats.merges
    assert by_kind[EventKind.INSERT] == cache.stats.inserts
    assert by_kind[EventKind.DELETE] == cache.stats.deletes


@settings(max_examples=60, deadline=None)
@given(streams, alphas, capacities)
def test_minhash_mode_preserves_correctness(stream, alpha, capacity):
    """The LSH prefilter may merge less, but every invariant still holds."""
    cache = build_cache(alpha, capacity, use_minhash=True)
    for request in stream:
        decision = cache.request(request)
        assert request <= decision.image.packages
    stats = cache.stats
    assert stats.hits + stats.merges + stats.inserts == stats.requests


@settings(max_examples=60, deadline=None)
@given(streams)
def test_alpha_zero_images_are_exactly_requests(stream):
    """Without merging, every cached image equals some requested spec."""
    cache = build_cache(0.0, 10**9)
    seen = set()
    for request in stream:
        cache.request(request)
        seen.add(request)
    for img in cache.images:
        assert img.packages in seen
