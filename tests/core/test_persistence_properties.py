"""Property test: persistence is transparent to future cache behaviour.

For any request stream and any split point, running the stream straight
through must be indistinguishable from snapshotting at the split,
restoring into a fresh cache, and continuing — the guarantee the
job-wrapper CLI relies on across invocations.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cache import LandlordCache

PACKAGES = [f"p{i}" for i in range(20)]
SIZE = {p: (i % 4 + 1) * 10 for i, p in enumerate(PACKAGES)}

streams = st.lists(
    st.frozensets(st.sampled_from(PACKAGES), min_size=1, max_size=6),
    min_size=2,
    max_size=30,
)
alphas = st.sampled_from([0.0, 0.5, 0.8, 1.0])
capacities = st.sampled_from([80, 300, 10**9])


def fresh(alpha, capacity):
    return LandlordCache(capacity, alpha, SIZE.__getitem__)


@settings(max_examples=80, deadline=None)
@given(streams, alphas, capacities, st.data())
def test_snapshot_restore_is_transparent(stream, alpha, capacity, data):
    split = data.draw(st.integers(0, len(stream)))

    straight = fresh(alpha, capacity)
    for spec in stream:
        straight.request(spec)

    first = fresh(alpha, capacity)
    for spec in stream[:split]:
        first.request(spec)
    resumed = fresh(alpha, capacity)
    resumed.restore(first.snapshot())
    decisions = []
    for spec in stream[split:]:
        decisions.append(resumed.request(spec))

    assert resumed.stats == straight.stats
    assert resumed.cached_bytes == straight.cached_bytes
    assert resumed.unique_bytes == straight.unique_bytes
    assert {i.id for i in resumed.images} == {i.id for i in straight.images}
    assert {i.packages for i in resumed.images} == {
        i.packages for i in straight.images
    }


@settings(max_examples=40, deadline=None)
@given(streams, alphas, capacities, st.integers(1, 5))
def test_file_layer_is_transparent(stream, alpha, capacity, every):
    """The full durable store (snapshot file + write-ahead journal, one
    process per request, snapshot every k-th operation) must reproduce
    the purely in-memory run decision for decision."""
    import tempfile
    from pathlib import Path

    from repro.core.journal import JournaledState
    from repro.core.persistence import StateNotFound

    straight = fresh(alpha, capacity)
    expected = [straight.request(spec) for spec in stream]

    with tempfile.TemporaryDirectory() as tmp:
        state = Path(tmp) / "state.json"
        got = []
        for spec in stream:
            # each request is its own "process": recover from disk first
            store = JournaledState(state, snapshot_every=every)
            try:
                cache, metadata, _ = store.load(SIZE.__getitem__)
            except StateNotFound:
                cache, metadata = fresh(alpha, capacity), {}
                store.initialise(cache, metadata)
            got.append(
                store.apply(
                    cache, metadata, "request", packages=sorted(spec)
                )
            )
        final_store = JournaledState(state, snapshot_every=every)
        final, _meta, _ = final_store.load(SIZE.__getitem__)

    assert [(d.action, d.image.id) for d in got] == [
        (d.action, d.image.id) for d in expected
    ]
    assert final.stats == straight.stats
    assert {i.packages for i in final.images} == {
        i.packages for i in straight.images
    }
