"""Property test: persistence is transparent to future cache behaviour.

For any request stream and any split point, running the stream straight
through must be indistinguishable from snapshotting at the split,
restoring into a fresh cache, and continuing — the guarantee the
job-wrapper CLI relies on across invocations.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cache import LandlordCache

PACKAGES = [f"p{i}" for i in range(20)]
SIZE = {p: (i % 4 + 1) * 10 for i, p in enumerate(PACKAGES)}

streams = st.lists(
    st.frozensets(st.sampled_from(PACKAGES), min_size=1, max_size=6),
    min_size=2,
    max_size=30,
)
alphas = st.sampled_from([0.0, 0.5, 0.8, 1.0])
capacities = st.sampled_from([80, 300, 10**9])


def fresh(alpha, capacity):
    return LandlordCache(capacity, alpha, SIZE.__getitem__)


@settings(max_examples=80, deadline=None)
@given(streams, alphas, capacities, st.data())
def test_snapshot_restore_is_transparent(stream, alpha, capacity, data):
    split = data.draw(st.integers(0, len(stream)))

    straight = fresh(alpha, capacity)
    for spec in stream:
        straight.request(spec)

    first = fresh(alpha, capacity)
    for spec in stream[:split]:
        first.request(spec)
    resumed = fresh(alpha, capacity)
    resumed.restore(first.snapshot())
    decisions = []
    for spec in stream[split:]:
        decisions.append(resumed.request(spec))

    assert resumed.stats == straight.stats
    assert resumed.cached_bytes == straight.cached_bytes
    assert resumed.unique_bytes == straight.unique_bytes
    assert {i.id for i in resumed.images} == {i.id for i in straight.images}
    assert {i.packages for i in resumed.images} == {
        i.packages for i in straight.images
    }
