"""Tests for repro.core.tenancy.MultiTenantLandlord."""

import pytest

from repro.core.events import EventKind
from repro.core.tenancy import MultiTenantLandlord
from repro.util.units import GB


@pytest.fixture()
def repo(small_sft):
    return small_sft


def tenant_spec(repo, offset, k=4):
    """A deterministic selection per tenant, distinct by offset."""
    ids = repo.ids
    return frozenset(ids[(offset * 17 + i * 7) % len(ids)] for i in range(k))


class TestConstruction:
    def test_unknown_isolation_rejected(self, repo):
        with pytest.raises(ValueError, match="isolation"):
            MultiTenantLandlord(repo, GB, isolation="chaos")

    def test_isolated_requires_tenants(self, repo):
        with pytest.raises(ValueError, match="tenants"):
            MultiTenantLandlord(repo, GB, isolation="isolated")

    def test_quota_validation(self, repo):
        with pytest.raises(ValueError, match="missing"):
            MultiTenantLandlord(
                repo, 10 * GB, isolation="isolated",
                tenants=["a", "b"], quotas={"a": GB},
            )
        with pytest.raises(ValueError, match="exceed"):
            MultiTenantLandlord(
                repo, 2 * GB, isolation="isolated",
                tenants=["a", "b"], quotas={"a": 2 * GB, "b": GB},
            )

    def test_even_quota_split(self, repo):
        landlord = MultiTenantLandlord(
            repo, 10 * GB, isolation="isolated", tenants=["a", "b"]
        )
        assert landlord.cache_for("a").capacity == 5 * GB
        assert landlord.cache_for("b").capacity == 5 * GB

    def test_unknown_tenant_lookup(self, repo):
        landlord = MultiTenantLandlord(
            repo, GB, isolation="isolated", tenants=["a"]
        )
        with pytest.raises(KeyError):
            landlord.cache_for("ghost")


class TestSharedMode:
    def test_cross_tenant_reuse(self, repo):
        landlord = MultiTenantLandlord(repo, 100 * GB, isolation="shared")
        spec = tenant_spec(repo, 0)
        landlord.prepare("alice", spec)
        decision = landlord.prepare("bob", spec)
        assert decision.private.action is EventKind.HIT

    def test_storage_reported_as_shared(self, repo):
        landlord = MultiTenantLandlord(repo, 100 * GB, isolation="shared")
        landlord.prepare("alice", tenant_spec(repo, 0))
        assert list(landlord.storage_by_tenant()) == ["<shared>"]


class TestIsolatedMode:
    def test_no_cross_tenant_visibility(self, repo):
        landlord = MultiTenantLandlord(
            repo, 200 * GB, isolation="isolated", tenants=["alice", "bob"]
        )
        spec = tenant_spec(repo, 0)
        landlord.prepare("alice", spec)
        decision = landlord.prepare("bob", spec)
        # bob pays a full insert for the identical requirements
        assert decision.private.action is EventKind.INSERT

    def test_isolation_duplicates_storage(self, repo):
        shared = MultiTenantLandlord(repo, 200 * GB, isolation="shared")
        isolated = MultiTenantLandlord(
            repo, 200 * GB, isolation="isolated", tenants=["alice", "bob"]
        )
        spec = tenant_spec(repo, 0)
        for landlord in (shared, isolated):
            landlord.prepare("alice", spec)
            landlord.prepare("bob", spec)
        assert isolated.total_cached_bytes > shared.total_cached_bytes
        assert isolated.total_unique_bytes > shared.total_unique_bytes

    def test_per_tenant_storage_accounting(self, repo):
        landlord = MultiTenantLandlord(
            repo, 200 * GB, isolation="isolated", tenants=["alice", "bob"]
        )
        landlord.prepare("alice", tenant_spec(repo, 0))
        storage = landlord.storage_by_tenant()
        assert storage["alice"] > 0
        assert storage["bob"] == 0

    def test_combined_stats_sum(self, repo):
        landlord = MultiTenantLandlord(
            repo, 200 * GB, isolation="isolated", tenants=["alice", "bob"]
        )
        landlord.prepare("alice", tenant_spec(repo, 0))
        landlord.prepare("bob", tenant_spec(repo, 1))
        stats = landlord.combined_stats()
        assert stats.requests == 2
        assert stats.inserts == 2


class TestPublicCoreMode:
    def make(self, repo):
        return MultiTenantLandlord(
            repo,
            200 * GB,
            isolation="public-core",
            tenants=["alice", "bob"],
            is_public=lambda pid: pid.startswith(("core-", "fw-")),
        )

    def test_public_packages_shared(self, repo):
        landlord = self.make(repo)
        spec = tenant_spec(repo, 0, k=6)
        first = landlord.prepare("alice", spec)
        second = landlord.prepare("bob", spec)
        assert first.public is not None
        # bob reuses the shared public image alice materialised
        assert second.public.action is EventKind.HIT

    def test_private_packages_not_shared(self, repo):
        landlord = self.make(repo)
        spec = tenant_spec(repo, 0, k=6)
        landlord.prepare("alice", spec)
        second = landlord.prepare("bob", spec)
        if second.private is not None:  # spec had private packages
            assert second.private.action is not EventKind.HIT

    def test_decision_reports_both_images(self, repo):
        landlord = self.make(repo)
        decision = landlord.prepare("alice", tenant_spec(repo, 0, k=6))
        assert decision.bytes_used == sum(
            d.image.size for d in (decision.public, decision.private) if d
        )
        assert 1 <= len(decision.actions) <= 2

    def test_public_storage_reported(self, repo):
        landlord = self.make(repo)
        landlord.prepare("alice", tenant_spec(repo, 0, k=6))
        assert "<public>" in landlord.storage_by_tenant()

    def test_fully_public_spec_has_no_private_decision(self, repo):
        landlord = self.make(repo)
        core_ids = [i for i in repo.ids if i.startswith("core-")][:3]
        decision = landlord.prepare("alice", frozenset(core_ids))
        assert decision.private is None
        assert decision.public is not None
