"""Tests for LandlordCache.split — the de-bloat operation."""

import pytest

from repro.core.cache import LandlordCache
from repro.core.events import EventKind

SIZE = {f"p{i}": 10 for i in range(20)}


def cache(**kw):
    return LandlordCache(10_000, 0.9, SIZE.__getitem__, **kw)


def spec(*ids):
    return frozenset(ids)


class TestSplit:
    def _bloated_cache(self):
        c = cache()
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p2"))
        c.request(spec("p0", "p3"))
        assert len(c) == 1  # merged into one bloated image
        return c, c.images[0]

    def test_split_into_two(self):
        c, image = self._bloated_cache()
        parts = c.split(image.id, [spec("p0", "p1"), spec("p0", "p2", "p3")])
        assert len(c) == 2
        assert {frozenset(p.packages) for p in parts} == {
            spec("p0", "p1"), spec("p0", "p2", "p3"),
        }
        assert c.stats.splits == 1

    def test_split_charges_writes(self):
        c, image = self._bloated_cache()
        before = c.stats.bytes_written
        c.split(image.id, [spec("p0", "p1"), spec("p2", "p3")])
        assert c.stats.bytes_written == before + 20 + 20

    def test_uncovered_packages_dropped(self):
        c, image = self._bloated_cache()
        c.split(image.id, [spec("p1")])
        assert c.unique_bytes == 10
        assert c.cached_bytes == 10

    def test_gauges_consistent_after_split(self):
        c, image = self._bloated_cache()
        c.split(image.id, [spec("p0", "p1"), spec("p0", "p2")])
        assert c.cached_bytes == sum(img.size for img in c.images)
        union = set().union(*[img.packages for img in c.images])
        assert c.unique_bytes == 10 * len(union)

    def test_split_parts_serve_future_requests(self):
        c, image = self._bloated_cache()
        c.split(image.id, [spec("p0", "p1"), spec("p0", "p2", "p3")])
        assert c.request(spec("p0", "p1")).action is EventKind.HIT

    def test_unknown_image_rejected(self):
        c = cache()
        with pytest.raises(KeyError):
            c.split("ghost", [spec("p0")])

    def test_empty_parts_rejected(self):
        c, image = self._bloated_cache()
        with pytest.raises(ValueError):
            c.split(image.id, [])
        with pytest.raises(ValueError):
            c.split(image.id, [frozenset()])

    def test_non_subset_part_rejected(self):
        c, image = self._bloated_cache()
        with pytest.raises(ValueError, match="not a subset"):
            c.split(image.id, [spec("p9")])
        # failed split leaves the cache untouched
        assert len(c) == 1 and c.images[0].id == image.id

    def test_split_works_with_minhash(self):
        c = cache(use_minhash=True)
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p2"))
        image = c.images[0]
        parts = c.split(image.id, [spec("p0", "p1"), spec("p2")])
        assert all(p.signature is not None for p in parts)
        # hits still work through the rebuilt index
        assert c.request(spec("p2")).action is EventKind.HIT
