"""Tests for repro.core.events."""

import pytest

from repro.core.events import CacheEvent, EventKind


class TestEventKind:
    def test_values_are_algorithm_ops(self):
        assert {k.value for k in EventKind} == {
            "hit", "merge", "insert", "delete",
        }


class TestCacheEvent:
    def test_frozen(self):
        event = CacheEvent(EventKind.HIT, 0, "img-0", 100)
        with pytest.raises(Exception):
            event.kind = EventKind.MERGE

    def test_defaults(self):
        event = CacheEvent(EventKind.DELETE, 3, "img-1", 50)
        assert event.bytes_written == 0
        assert event.requested_bytes is None
        assert event.reason is None
        assert event.distance is None
        assert event.candidates_examined == 0
        assert event.conflicts_skipped == 0

    def test_full_record(self):
        event = CacheEvent(
            EventKind.MERGE, 7, "img-2", 400, bytes_written=400,
            requested_bytes=120, distance=0.25, candidates_examined=3,
            conflicts_skipped=1,
        )
        assert event.request_index == 7
        assert event.image_bytes == 400
        assert event.bytes_written == 400
        assert event.requested_bytes == 120
        assert event.distance == 0.25
        assert event.candidates_examined == 3
        assert event.conflicts_skipped == 1

    def test_delete_carries_reason(self):
        capacity = CacheEvent(EventKind.DELETE, 3, "img-1", 50,
                              reason="capacity")
        idle = CacheEvent(EventKind.DELETE, 3, "img-1", 50, reason="idle")
        assert capacity.reason == "capacity"
        assert idle.reason == "idle"
