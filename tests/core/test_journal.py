"""Tests for the write-ahead journal and the journalled durable store."""

import json

import pytest

from repro.core.cache import LandlordCache
from repro.core.journal import (
    Journal,
    JournalError,
    JournaledState,
    apply_entry,
    recover_state,
    replay,
)
from repro.core.persistence import StateNotFound, load_bundle

SIZE = {f"p{i}": 10 for i in range(30)}


def make_cache(**kw):
    return LandlordCache(500, 0.8, SIZE.__getitem__, **kw)


class TestJournal:
    def test_append_entries_roundtrip(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        journal.append("request", packages=["p0", "p1"])
        journal.append("adopt", packages=["p2"])
        entries = journal.entries()
        assert [(e.seq, e.op) for e in entries] == [
            (1, "request"), (2, "adopt"),
        ]
        assert entries[0].data == {"packages": ["p0", "p1"]}

    def test_empty_or_missing_journal(self, tmp_path):
        journal = Journal(tmp_path / "none.journal")
        assert journal.entries() == []
        assert journal.last_seq == 0

    def test_sequence_continues_across_sessions(self, tmp_path):
        path = tmp_path / "j.journal"
        Journal(path).append("request", packages=["p0"])
        second = Journal(path)
        entry = second.append("request", packages=["p1"])
        assert entry.seq == 2

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append("request", packages=["p0"])
        journal.append("request", packages=["p1"])
        journal.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 10])  # tear the last line
        entries = Journal(path).entries()
        assert [e.seq for e in entries] == [1]

    def test_midfile_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append("request", packages=["p0"])
        journal.append("request", packages=["p1"])
        journal.close()
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-10] + "corrupted}"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="mid-file"):
            Journal(path).entries()

    def test_crc_detects_bit_flip_in_tail(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append("request", packages=["p0"])
        journal.close()
        record = json.loads(path.read_text())
        record["data"]["packages"] = ["p9"]  # flip payload, keep old crc
        path.write_text(json.dumps(record) + "\n")
        assert Journal(path).entries() == []

    def test_sequence_regression_is_fatal(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        first = journal.append("request", packages=["p0"])
        journal.close()
        line = path.read_text()
        path.write_text(line + line)  # duplicate seq 1
        with pytest.raises(JournalError, match="regressed"):
            Journal(path).entries()
        assert first.seq == 1

    def test_compact_drops_snapshotted_prefix(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        for i in range(4):
            journal.append("request", packages=[f"p{i}"])
        dropped = journal.compact(upto_seq=2)
        assert dropped == 2
        assert [e.seq for e in journal.entries()] == [3, 4]
        # appends keep numbering after compaction
        assert journal.append("request", packages=["p9"]).seq == 5

    def test_numbering_survives_compaction_across_sessions(self, tmp_path):
        # regression: without the compaction marker a fresh process
        # restarted numbering at 1 after a full compaction, and replay
        # (filtering by the snapshot's journal_seq) silently skipped the
        # new entries — losing operations.
        path = tmp_path / "j.journal"
        journal = Journal(path)
        for i in range(3):
            journal.append("request", packages=[f"p{i}"])
        journal.compact(upto_seq=3)  # journal now empty of entries
        assert journal.entries() == []
        fresh = Journal(path)
        assert fresh.last_seq == 3
        assert fresh.append("request", packages=["p9"]).seq == 4

    def test_corrupt_compaction_marker_is_fatal(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append("request", packages=["p0"])
        journal.compact(upto_seq=1)
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"compacted_to":1', '"compacted_to":7')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="marker"):
            Journal(path).entries()

    def test_reset_restarts_numbering(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        journal.append("request", packages=["p0"])
        journal.reset()
        assert journal.entries() == []
        assert journal.append("request", packages=["p1"]).seq == 1


class TestReplay:
    def test_replay_reproduces_decisions(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        live = make_cache()
        results = []
        for spec in (["p0", "p1"], ["p0", "p1", "p2"], ["p5"]):
            entry = journal.append("request", packages=spec)
            results.append(apply_entry(live, entry))
        replayed = replay(make_cache(), journal.entries())
        assert len(replayed) == 3
        for (entry, redo), original in zip(replayed, results):
            assert redo.action == original.action
            assert redo.image.id == original.image.id

    def test_replay_skips_covered_entries(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        for i in range(3):
            journal.append("request", packages=[f"p{i}"])
        cache = make_cache()
        replayed = replay(cache, journal.entries(), after_seq=2)
        assert [entry.seq for entry, _ in replayed] == [3]
        assert cache.stats.requests == 1

    def test_replay_detects_gap(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        for i in range(3):
            journal.append("request", packages=[f"p{i}"])
        journal.compact(upto_seq=2)
        with pytest.raises(JournalError, match="gap"):
            replay(make_cache(), journal.entries(), after_seq=0)

    def test_apply_entry_dispatch(self):
        cache = make_cache()
        apply_entry(cache, _entry(1, "request", {"packages": ["p0"]}))
        apply_entry(cache, _entry(2, "adopt", {"packages": ["p1"]}))
        assert len(cache) == 2
        apply_entry(
            cache, _entry(3, "evict_idle", {"max_idle_requests": 1000})
        )
        apply_entry(cache, _entry(4, "clear", {}))
        assert len(cache) == 0

    def test_apply_entry_unknown_op(self):
        with pytest.raises(JournalError, match="unknown"):
            apply_entry(make_cache(), _entry(1, "frobnicate", {}))


def _entry(seq, op, data):
    from repro.core.journal import JournalEntry

    return JournalEntry(seq, op, data)


class TestJournaledState:
    def test_load_before_initialise_raises(self, tmp_path):
        store = JournaledState(tmp_path / "state.json")
        with pytest.raises(StateNotFound):
            store.load(SIZE.__getitem__)

    def test_apply_snapshot_every_1_keeps_journal_empty(self, tmp_path):
        store = JournaledState(tmp_path / "state.json")
        cache = make_cache()
        store.initialise(cache, {"site": "s0"})
        store.apply(cache, {"site": "s0"}, "request", packages=["p0", "p1"])
        assert store.journal.entries() == []
        bundle = load_bundle(tmp_path / "state.json", SIZE.__getitem__)
        assert bundle.cache.stats.requests == 1
        assert bundle.journal_seq == 1

    def test_periodic_snapshot_leans_on_replay(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", snapshot_every=3)
        cache = make_cache()
        store.initialise(cache)
        for i in range(5):
            store.apply(cache, None, "request", packages=[f"p{i}"])
        # 5 ops, snapshot fired at seq 3: journal holds the tail 4..5
        assert [e.seq for e in store.journal.entries()] == [4, 5]
        fresh = JournaledState(tmp_path / "state.json", snapshot_every=3)
        recovered, _meta, replayed = fresh.load(SIZE.__getitem__)
        assert len(replayed) == 2
        assert recovered.stats == cache.stats

    def test_no_journal_mode_snapshots_every_op(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", use_journal=False)
        cache = make_cache()
        store.initialise(cache)
        store.apply(cache, None, "request", packages=["p0"])
        assert not (tmp_path / "state.json.journal").exists()
        recovered, _meta, replayed = JournaledState(
            tmp_path / "state.json", use_journal=False
        ).load(SIZE.__getitem__)
        assert replayed == []
        assert recovered.stats.requests == 1

    def test_snapshot_every_validation(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            JournaledState(tmp_path / "state.json", snapshot_every=0)

    def test_recover_state_folds_tail(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", snapshot_every=100)
        cache = make_cache()
        store.initialise(cache)
        for i in range(4):
            store.apply(cache, None, "request", packages=[f"p{i}"])
        # snapshot never fired; all 4 ops live only in the journal
        assert len(store.journal.entries()) == 4
        recovered, _meta, count = recover_state(
            tmp_path / "state.json", package_size=SIZE.__getitem__
        )
        assert count == 4
        assert recovered.stats == cache.stats
        # recovery compacted: snapshot now covers everything
        assert Journal(tmp_path / "state.json.journal").entries() == []
        bundle = load_bundle(tmp_path / "state.json", SIZE.__getitem__)
        assert bundle.cache.stats.requests == 4
