"""Tests for the write-ahead journal and the journalled durable store."""

import json

import pytest

from repro.core.cache import LandlordCache
from repro.core.journal import (
    Journal,
    JournalError,
    JournaledState,
    apply_entry,
    recover_state,
    replay,
)
from repro.core.persistence import StateNotFound, load_bundle

SIZE = {f"p{i}": 10 for i in range(30)}


def make_cache(**kw):
    return LandlordCache(500, 0.8, SIZE.__getitem__, **kw)


class TestJournal:
    def test_append_entries_roundtrip(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        journal.append("request", packages=["p0", "p1"])
        journal.append("adopt", packages=["p2"])
        entries = journal.entries()
        assert [(e.seq, e.op) for e in entries] == [
            (1, "request"), (2, "adopt"),
        ]
        assert entries[0].data == {"packages": ["p0", "p1"]}

    def test_empty_or_missing_journal(self, tmp_path):
        journal = Journal(tmp_path / "none.journal")
        assert journal.entries() == []
        assert journal.last_seq == 0

    def test_sequence_continues_across_sessions(self, tmp_path):
        path = tmp_path / "j.journal"
        Journal(path).append("request", packages=["p0"])
        second = Journal(path)
        entry = second.append("request", packages=["p1"])
        assert entry.seq == 2

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append("request", packages=["p0"])
        journal.append("request", packages=["p1"])
        journal.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 10])  # tear the last line
        entries = Journal(path).entries()
        assert [e.seq for e in entries] == [1]

    def test_midfile_corruption_is_fatal(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append("request", packages=["p0"])
        journal.append("request", packages=["p1"])
        journal.close()
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-10] + "corrupted}"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="mid-file"):
            Journal(path).entries()

    def test_crc_detects_bit_flip_in_tail(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append("request", packages=["p0"])
        journal.close()
        record = json.loads(path.read_text())
        record["data"]["packages"] = ["p9"]  # flip payload, keep old crc
        path.write_text(json.dumps(record) + "\n")
        assert Journal(path).entries() == []

    def test_sequence_regression_is_fatal(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        first = journal.append("request", packages=["p0"])
        journal.close()
        line = path.read_text()
        path.write_text(line + line)  # duplicate seq 1
        with pytest.raises(JournalError, match="regressed"):
            Journal(path).entries()
        assert first.seq == 1

    def test_compact_drops_snapshotted_prefix(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        for i in range(4):
            journal.append("request", packages=[f"p{i}"])
        dropped = journal.compact(upto_seq=2)
        assert dropped == 2
        assert [e.seq for e in journal.entries()] == [3, 4]
        # appends keep numbering after compaction
        assert journal.append("request", packages=["p9"]).seq == 5

    def test_numbering_survives_compaction_across_sessions(self, tmp_path):
        # regression: without the compaction marker a fresh process
        # restarted numbering at 1 after a full compaction, and replay
        # (filtering by the snapshot's journal_seq) silently skipped the
        # new entries — losing operations.
        path = tmp_path / "j.journal"
        journal = Journal(path)
        for i in range(3):
            journal.append("request", packages=[f"p{i}"])
        journal.compact(upto_seq=3)  # journal now empty of entries
        assert journal.entries() == []
        fresh = Journal(path)
        assert fresh.last_seq == 3
        assert fresh.append("request", packages=["p9"]).seq == 4

    def test_corrupt_compaction_marker_is_fatal(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append("request", packages=["p0"])
        journal.compact(upto_seq=1)
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('"compacted_to":1', '"compacted_to":7')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="marker"):
            Journal(path).entries()

    def test_reset_restarts_numbering(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        journal.append("request", packages=["p0"])
        journal.reset()
        assert journal.entries() == []
        assert journal.append("request", packages=["p1"]).seq == 1


class TestReplay:
    def test_replay_reproduces_decisions(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        live = make_cache()
        results = []
        for spec in (["p0", "p1"], ["p0", "p1", "p2"], ["p5"]):
            entry = journal.append("request", packages=spec)
            results.append(apply_entry(live, entry))
        replayed = replay(make_cache(), journal.entries())
        assert len(replayed) == 3
        for (entry, redo), original in zip(replayed, results):
            assert redo.action == original.action
            assert redo.image.id == original.image.id

    def test_replay_skips_covered_entries(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        for i in range(3):
            journal.append("request", packages=[f"p{i}"])
        cache = make_cache()
        replayed = replay(cache, journal.entries(), after_seq=2)
        assert [entry.seq for entry, _ in replayed] == [3]
        assert cache.stats.requests == 1

    def test_replay_detects_gap(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        for i in range(3):
            journal.append("request", packages=[f"p{i}"])
        journal.compact(upto_seq=2)
        with pytest.raises(JournalError, match="gap"):
            replay(make_cache(), journal.entries(), after_seq=0)

    def test_apply_entry_dispatch(self):
        cache = make_cache()
        apply_entry(cache, _entry(1, "request", {"packages": ["p0"]}))
        apply_entry(cache, _entry(2, "adopt", {"packages": ["p1"]}))
        assert len(cache) == 2
        apply_entry(
            cache, _entry(3, "evict_idle", {"max_idle_requests": 1000})
        )
        apply_entry(cache, _entry(4, "clear", {}))
        assert len(cache) == 0

    def test_apply_entry_unknown_op(self):
        with pytest.raises(JournalError, match="unknown"):
            apply_entry(make_cache(), _entry(1, "frobnicate", {}))


def _entry(seq, op, data):
    from repro.core.journal import JournalEntry

    return JournalEntry(seq, op, data)


class TestJournaledState:
    def test_load_before_initialise_raises(self, tmp_path):
        store = JournaledState(tmp_path / "state.json")
        with pytest.raises(StateNotFound):
            store.load(SIZE.__getitem__)

    def test_apply_snapshot_every_1_keeps_journal_empty(self, tmp_path):
        store = JournaledState(tmp_path / "state.json")
        cache = make_cache()
        store.initialise(cache, {"site": "s0"})
        store.apply(cache, {"site": "s0"}, "request", packages=["p0", "p1"])
        assert store.journal.entries() == []
        bundle = load_bundle(tmp_path / "state.json", SIZE.__getitem__)
        assert bundle.cache.stats.requests == 1
        assert bundle.journal_seq == 1

    def test_periodic_snapshot_leans_on_replay(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", snapshot_every=3)
        cache = make_cache()
        store.initialise(cache)
        for i in range(5):
            store.apply(cache, None, "request", packages=[f"p{i}"])
        # 5 ops, snapshot fired at seq 3: journal holds the tail 4..5
        assert [e.seq for e in store.journal.entries()] == [4, 5]
        fresh = JournaledState(tmp_path / "state.json", snapshot_every=3)
        recovered, _meta, replayed = fresh.load(SIZE.__getitem__)
        assert len(replayed) == 2
        assert recovered.stats == cache.stats

    def test_no_journal_mode_snapshots_every_op(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", use_journal=False)
        cache = make_cache()
        store.initialise(cache)
        store.apply(cache, None, "request", packages=["p0"])
        assert not (tmp_path / "state.json.journal").exists()
        recovered, _meta, replayed = JournaledState(
            tmp_path / "state.json", use_journal=False
        ).load(SIZE.__getitem__)
        assert replayed == []
        assert recovered.stats.requests == 1

    def test_snapshot_every_validation(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            JournaledState(tmp_path / "state.json", snapshot_every=0)

    def test_recover_state_folds_tail(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", snapshot_every=100)
        cache = make_cache()
        store.initialise(cache)
        for i in range(4):
            store.apply(cache, None, "request", packages=[f"p{i}"])
        # snapshot never fired; all 4 ops live only in the journal
        assert len(store.journal.entries()) == 4
        recovered, _meta, count = recover_state(
            tmp_path / "state.json", package_size=SIZE.__getitem__
        )
        assert count == 4
        assert recovered.stats == cache.stats
        # recovery compacted: snapshot now covers everything
        assert Journal(tmp_path / "state.json.journal").entries() == []
        bundle = load_bundle(tmp_path / "state.json", SIZE.__getitem__)
        assert bundle.cache.stats.requests == 4


class TestGroupCommit:
    """Batch append (one fsync per window) and batched application."""

    def test_append_many_assigns_contiguous_seqs(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        journal.append("request", packages=["p0"])
        entries = journal.append_many([
            ("request", {"packages": ["p1"]}),
            ("request", {"packages": ["p2"]}),
            ("clear", {}),
        ])
        assert [(e.seq, e.op) for e in entries] == [
            (2, "request"), (3, "request"), (4, "clear"),
        ]
        assert [e.seq for e in journal.entries()] == [1, 2, 3, 4]
        assert journal.append("request", packages=["p3"]).seq == 5

    def test_append_many_empty_is_a_noop(self, tmp_path):
        journal = Journal(tmp_path / "j.journal")
        assert journal.append_many([]) == []
        assert journal.last_seq == 0

    def test_torn_batch_tail_keeps_intact_prefix(self, tmp_path):
        # A crash mid-group-commit must leave a gap-free prefix: the
        # entries before the tear replay, the torn one is dropped.
        path = tmp_path / "j.journal"
        journal = Journal(path)
        journal.append_many([
            ("request", {"packages": [f"p{i}"]}) for i in range(3)
        ])
        journal.close()
        text = path.read_text()
        path.write_text(text[: len(text) - 10])  # tear the final record
        assert [e.seq for e in Journal(path).entries()] == [1, 2]

    def test_apply_entries_coalesces_requests(self, tmp_path):
        from repro.core.journal import JournalEntry, apply_entries

        ops = (
            [("request", {"packages": [f"p{i}", f"p{i + 1}"]})
             for i in range(4)]
            + [("clear", {})]
            + [("request", {"packages": [f"p{i}"]}) for i in range(3)]
        )
        entries = [
            JournalEntry(seq, op, data)
            for seq, (op, data) in enumerate(ops, start=1)
        ]
        batched = make_cache()
        results = apply_entries(batched, entries)
        serial = make_cache()
        serial_results = [apply_entry(serial, e) for e in entries]
        assert batched.snapshot() == serial.snapshot()
        assert len(results) == len(serial_results)
        for got, want in zip(results, serial_results):
            if want is None:
                assert got is None
            else:
                assert got.action == want.action
                assert got.image.id == want.image.id

    def test_apply_batch_matches_serial_apply(self, tmp_path):
        ops = [("request", {"packages": [f"p{i}", f"p{(i * 3) % 20}"]})
               for i in range(7)]
        batch_store = JournaledState(
            tmp_path / "batch.json", snapshot_every=100
        )
        batch_cache = make_cache()
        batch_store.initialise(batch_cache)
        results = batch_store.apply_batch(batch_cache, None, ops)
        serial_store = JournaledState(
            tmp_path / "serial.json", snapshot_every=100
        )
        serial_cache = make_cache()
        serial_store.initialise(serial_cache)
        for op, data in ops:
            serial_store.apply(serial_cache, None, op, **data)
        assert len(results) == 7
        assert batch_cache.snapshot() == serial_cache.snapshot()
        assert (
            batch_store.journal.last_seq == serial_store.journal.last_seq
        )
        recovered, _meta, replayed = JournaledState(
            tmp_path / "batch.json"
        ).load(SIZE.__getitem__)
        assert len(replayed) == 7
        assert recovered.snapshot() == batch_cache.snapshot()

    def test_apply_batch_snapshot_cadence(self, tmp_path):
        # Crossing the snapshot_every boundary inside a batch flushes
        # once, after the batch: the journal is compacted to its end.
        store = JournaledState(tmp_path / "state.json", snapshot_every=4)
        cache = make_cache()
        store.initialise(cache)
        store.apply_batch(cache, None, [
            ("request", {"packages": [f"p{i}"]}) for i in range(6)
        ])
        assert store.journal.entries() == []  # compacted by the flush
        recovered, _meta, replayed = JournaledState(
            tmp_path / "state.json", snapshot_every=4
        ).load(SIZE.__getitem__)
        assert replayed == []
        assert recovered.snapshot() == cache.snapshot()

    def test_apply_batch_below_cadence_skips_snapshot(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", snapshot_every=10)
        cache = make_cache()
        store.initialise(cache)
        store.apply_batch(cache, None, [
            ("request", {"packages": [f"p{i}"]}) for i in range(3)
        ])
        # no flush fired: all three ops still live in the journal only
        assert [e.seq for e in store.journal.entries()] == [1, 2, 3]

    def test_apply_batch_on_result_fires_in_entry_order(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", snapshot_every=100)
        cache = make_cache()
        store.initialise(cache)
        seen = []
        store.apply_batch(
            cache, None,
            [("request", {"packages": [f"p{i}"]}) for i in range(4)],
            on_result=lambda entry, result: seen.append(entry.seq),
        )
        assert seen == [1, 2, 3, 4]

    def test_apply_batch_without_journal(self, tmp_path):
        store = JournaledState(tmp_path / "state.json", use_journal=False)
        cache = make_cache()
        store.initialise(cache)
        results = store.apply_batch(cache, None, [
            ("request", {"packages": ["p0"]}),
            ("request", {"packages": ["p1"]}),
        ])
        assert len(results) == 2
        recovered, _meta, replayed = JournaledState(
            tmp_path / "state.json", use_journal=False
        ).load(SIZE.__getitem__)
        assert replayed == []
        assert recovered.snapshot() == cache.snapshot()
