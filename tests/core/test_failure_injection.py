"""Failure injection: the cache must stay consistent when collaborators
misbehave (size oracles raising or returning garbage, hostile specs)."""

import pytest

from repro.core.cache import LandlordCache
from repro.core.spec import ImageSpec


class FlakyOracle:
    """Size oracle that fails for configured package ids."""

    def __init__(self, bad=frozenset()):
        self.bad = set(bad)
        self.calls = 0

    def __call__(self, pid: str) -> int:
        self.calls += 1
        if pid in self.bad:
            raise RuntimeError(f"metadata service down for {pid}")
        return 10


class TestOracleFailures:
    def test_failure_surfaces_to_caller(self):
        cache = LandlordCache(1000, 0.8, FlakyOracle(bad={"pX"}))
        with pytest.raises(RuntimeError, match="metadata service"):
            cache.request(frozenset({"p0", "pX"}))

    def test_cache_unchanged_after_failed_request(self):
        oracle = FlakyOracle(bad={"pX"})
        cache = LandlordCache(1000, 0.8, oracle)
        cache.request(frozenset({"p0", "p1"}))
        snapshot = (len(cache), cache.cached_bytes, cache.unique_bytes)
        with pytest.raises(RuntimeError):
            cache.request(frozenset({"p2", "pX"}))
        assert (len(cache), cache.cached_bytes, cache.unique_bytes) == snapshot
        # And the cache still serves good requests afterwards.
        assert cache.request(frozenset({"p0"})).action.value == "hit"

    def test_negative_size_oracle_rejected(self):
        cache = LandlordCache(1000, 0.8, lambda pid: -5)
        with pytest.raises(ValueError, match="negative size"):
            cache.request(frozenset({"p0"}))

    def test_oracle_called_once_per_package(self):
        oracle = FlakyOracle()
        cache = LandlordCache(1000, 0.8, oracle)
        cache.request(frozenset({"p0", "p1"}))
        cache.request(frozenset({"p0", "p1"}))  # memoised: no re-query
        cache.request(frozenset({"p0", "p2"}))
        assert oracle.calls == 3  # p0, p1, p2 exactly once each


class TestHostileSpecs:
    def test_non_string_package_ids_rejected_by_imagespec(self):
        with pytest.raises(TypeError):
            ImageSpec([b"bytes-id"])

    def test_unicode_package_ids_supported(self):
        cache = LandlordCache(1000, 0.8, lambda pid: 10)
        spec = frozenset({"pkg-日本語/1.0", "pkg-ümlaut/2.0"})
        decision = cache.request(spec)
        assert decision.image.packages == spec

    def test_very_large_spec(self):
        cache = LandlordCache(1 << 40, 0.8, lambda pid: 1)
        spec = frozenset(f"p{i:06d}" for i in range(20_000))
        decision = cache.request(spec)
        assert decision.image.size == 20_000
        assert cache.request(spec).action.value == "hit"

    def test_landlord_propagates_unknown_package(self, tiny_repo):
        from repro.core.landlord import Landlord

        landlord = Landlord(tiny_repo, capacity=1000)
        with pytest.raises(KeyError):
            landlord.prepare(["not-a-package/0.0"])
