"""Property-based invariants of the adaptive-α controller."""

from hypothesis import given, settings, strategies as st

from repro.core.adaptive import AlphaController
from repro.core.cache import LandlordCache

PACKAGES = [f"p{i}" for i in range(25)]
SIZE = {p: (i % 5 + 1) * 10 for i, p in enumerate(PACKAGES)}

streams = st.lists(
    st.frozensets(st.sampled_from(PACKAGES), min_size=1, max_size=8),
    min_size=5,
    max_size=60,
)
bounds = st.tuples(
    st.floats(0.0, 0.5), st.floats(0.6, 1.0)
)


@settings(max_examples=60, deadline=None)
@given(streams, bounds, st.integers(1, 10))
def test_alpha_always_within_clamp(stream, alpha_bounds, interval):
    lo, hi = alpha_bounds
    cache = LandlordCache(500, 0.8, SIZE.__getitem__)
    controller = AlphaController(
        cache, interval=interval, alpha_min=lo, alpha_max=hi
    )
    for spec in stream:
        controller.request(spec)
        assert lo <= controller.alpha <= hi


@settings(max_examples=60, deadline=None)
@given(streams, st.integers(1, 10))
def test_served_images_always_satisfy_requests(stream, interval):
    cache = LandlordCache(500, 0.7, SIZE.__getitem__)
    controller = AlphaController(cache, interval=interval)
    for spec in stream:
        decision = controller.request(spec)
        assert spec <= decision.image.packages


@settings(max_examples=60, deadline=None)
@given(streams, st.integers(1, 10))
def test_adaptation_count_matches_schedule(stream, interval):
    cache = LandlordCache(500, 0.7, SIZE.__getitem__)
    controller = AlphaController(cache, interval=interval)
    for spec in stream:
        controller.request(spec)
    assert len(controller.events) == len(stream) // interval


@settings(max_examples=60, deadline=None)
@given(streams)
def test_alpha_moves_by_at_most_step_per_decision(stream):
    cache = LandlordCache(500, 0.7, SIZE.__getitem__)
    controller = AlphaController(cache, interval=3, step=0.05)
    for spec in stream:
        controller.request(spec)
    for event in controller.events:
        assert abs(event.new_alpha - event.old_alpha) <= 0.05 + 1e-12
