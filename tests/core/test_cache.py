"""Tests for repro.core.cache.LandlordCache — Algorithm 1 behaviours."""

import pytest

from repro.core.cache import LandlordCache
from repro.core.events import EventKind
from repro.core.spec import ImageSpec
from repro.packages.conflicts import SlotConflicts

SIZES = {f"p{i}": 10 for i in range(100)}
SIZES.update({f"q{i}": 10 for i in range(100)})
SIZES.update({"big": 1000, "small": 1})


def size_of(pid: str) -> int:
    return SIZES[pid]


def cache(capacity=10_000, alpha=0.75, **kw) -> LandlordCache:
    return LandlordCache(capacity, alpha, size_of, **kw)


def spec(*ids):
    return frozenset(ids)


class TestValidation:
    def test_alpha_out_of_range(self):
        with pytest.raises(ValueError):
            cache(alpha=1.5)
        with pytest.raises(ValueError):
            cache(alpha=-0.1)

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            cache(capacity=-1)

    @pytest.mark.parametrize("field,value", [
        ("hit_selection", "best"),
        ("candidate_order", "clever"),
        ("eviction", "arc"),
    ])
    def test_unknown_policies_rejected(self, field, value):
        with pytest.raises(ValueError):
            cache(**{field: value})


class TestInsert:
    def test_first_request_inserts(self):
        c = cache()
        decision = c.request(spec("p0", "p1"))
        assert decision.action is EventKind.INSERT
        assert decision.requested_bytes == 20
        assert decision.image.size == 20
        assert len(c) == 1

    def test_insert_counts_bytes_written(self):
        c = cache()
        c.request(spec("p0", "p1"))
        assert c.stats.bytes_written == 20
        assert c.stats.requested_bytes == 20

    def test_distant_specs_insert_separately(self):
        c = cache(alpha=0.3)
        c.request(spec("p0", "p1"))
        decision = c.request(spec("q0", "q1"))
        assert decision.action is EventKind.INSERT
        assert len(c) == 2

    def test_empty_spec_on_empty_cache(self):
        c = cache()
        decision = c.request(spec())
        assert decision.action is EventKind.INSERT
        assert decision.image.size == 0


class TestHit:
    def test_exact_repeat_hits(self):
        c = cache()
        first = c.request(spec("p0", "p1")).image
        decision = c.request(spec("p0", "p1"))
        assert decision.action is EventKind.HIT
        assert decision.image is first

    def test_subset_request_hits(self):
        c = cache()
        c.request(spec("p0", "p1", "p2"))
        assert c.request(spec("p1")).action is EventKind.HIT

    def test_hit_writes_nothing(self):
        c = cache()
        c.request(spec("p0"))
        before = c.stats.bytes_written
        c.request(spec("p0"))
        assert c.stats.bytes_written == before

    def test_smallest_superset_preferred(self):
        c = cache(alpha=0.0, hit_selection="smallest")
        c.request(spec("p0", "p1"))                  # small image
        c.request(spec("p0", "p1", "p2", "p3"))      # bigger superset image
        decision = c.request(spec("p0"))
        assert decision.action is EventKind.HIT
        assert decision.image.size == 20

    def test_mru_superset_preferred(self):
        c = cache(alpha=0.0, hit_selection="mru")
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p1", "p2", "p3"))      # most recently used
        decision = c.request(spec("p0"))
        assert decision.action is EventKind.HIT
        assert decision.image.size == 40

    def test_empty_spec_hits_any_image(self):
        c = cache()
        c.request(spec("p0"))
        assert c.request(spec()).action is EventKind.HIT


class TestMerge:
    def test_close_specs_merge(self):
        c = cache(alpha=0.75)
        c.request(spec("p0", "p1", "p2"))
        decision = c.request(spec("p0", "p1", "p3"))
        assert decision.action is EventKind.MERGE
        assert decision.image.packages == {"p0", "p1", "p2", "p3"}
        assert len(c) == 1

    def test_merge_distance_reported(self):
        c = cache(alpha=0.75)
        c.request(spec("p0", "p1", "p2"))
        decision = c.request(spec("p0", "p1", "p3"))
        assert decision.distance == pytest.approx(0.5)  # 1 - 2/4

    def test_merge_rewrites_whole_image(self):
        c = cache(alpha=0.75)
        c.request(spec("p0", "p1", "p2"))  # 30 written
        c.request(spec("p0", "p1", "p3"))  # merge: 40-byte image rewritten
        assert c.stats.bytes_written == 30 + 40

    def test_merge_bytes_added_is_only_new_content(self):
        c = cache(alpha=0.75)
        c.request(spec("p0", "p1", "p2"))
        decision = c.request(spec("p0", "p1", "p3"))
        assert decision.bytes_added == 10

    def test_alpha_zero_never_merges(self):
        c = cache(alpha=0.0)
        c.request(spec("p0", "p1"))
        decision = c.request(spec("p0", "p2"))
        assert decision.action is EventKind.INSERT

    def test_threshold_is_strict(self):
        # d({p0},{p1}) = 1.0; with alpha=1.0 the pair is NOT a candidate.
        c = cache(alpha=1.0)
        c.request(spec("p0"))
        assert c.request(spec("p1")).action is EventKind.INSERT
        # ...but any shared element brings d below 1.0 and merges.
        assert c.request(spec("p0", "q0")).action is EventKind.MERGE

    def test_closest_candidate_chosen(self):
        # near and far share a 5-package core but differ otherwise:
        # d(near, far) = 2/3 > alpha, so both stay cached.  The request is
        # within alpha of both (d = 1/3 and 6/13) and must merge into the
        # closer one (near).
        core = [f"p{i}" for i in range(5)]
        near = spec(*core, "p10", "p11", "p12", "p13", "p14")
        far = spec(*core, "p20", "p21", "p22", "p23", "p24")
        req = spec(*core, "p10", "p11", "p12", "p20", "p21")
        c = cache(alpha=0.5, candidate_order="distance")
        c.request(near)
        c.request(far)
        assert len(c) == 2
        decision = c.request(req)
        assert decision.action is EventKind.MERGE
        assert decision.distance == pytest.approx(1 - 8 / 12)
        # merged into near: far's unshared tail is absent
        assert "p24" not in decision.image.packages
        assert "p14" in decision.image.packages

    def test_merge_count_tracked_on_image(self):
        c = cache(alpha=0.9)
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p2"))
        c.request(spec("p0", "p3"))
        assert c.images[0].merge_count == 2

    def test_repeated_merges_accumulate_monotonically(self):
        c = cache(alpha=0.95)
        members = ["p0"]
        c.request(spec(*members))
        for i in range(1, 10):
            members.append(f"p{i}")
            c.request(spec("p0", f"p{i}"))
        assert c.images[0].packages == set(members)


class TestConflicts:
    def test_conflicting_merge_skipped(self):
        c = LandlordCache(
            10_000, 0.9,
            package_size=lambda p: 10,
            conflict_policy=SlotConflicts(),
        )
        c.request(spec("root/6.20", "gcc/8.0"))
        decision = c.request(spec("root/6.18", "gcc/8.0"))
        assert decision.action is EventKind.INSERT
        assert c.stats.conflicts_skipped >= 1
        assert len(c) == 2

    def test_non_conflicting_still_merges_under_policy(self):
        c = LandlordCache(
            10_000, 0.9,
            package_size=lambda p: 10,
            conflict_policy=SlotConflicts(),
        )
        c.request(spec("root/6.20", "gcc/8.0"))
        decision = c.request(spec("root/6.20", "geant/10.0"))
        assert decision.action is EventKind.MERGE


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        c = cache(capacity=50, alpha=0.0)
        c.request(spec("p0", "p1"))          # 20
        c.request(spec("p2", "p3"))          # 40
        c.request(spec("p4", "p5"))          # 60 -> evict LRU (p0,p1)
        assert len(c) == 2
        assert c.stats.deletes == 1
        assert c.request(spec("p0", "p1")).action is EventKind.INSERT

    def test_touching_updates_lru_order(self):
        c = cache(capacity=50, alpha=0.0)
        c.request(spec("p0", "p1"))
        c.request(spec("p2", "p3"))
        c.request(spec("p0", "p1"))          # touch first image
        c.request(spec("p4", "p5"))          # evicts (p2,p3), not (p0,p1)
        assert c.request(spec("p0", "p1")).action is EventKind.HIT

    def test_pinned_image_never_evicted_even_if_oversized(self):
        c = cache(capacity=5, alpha=0.0)
        decision = c.request(spec("p0", "p1"))  # 20 > capacity
        assert decision.action is EventKind.INSERT
        assert len(c) == 1  # transient overflow allowed
        # The next request displaces it.
        c.request(spec("p2"))
        assert all(img.packages != {"p0", "p1"} for img in c.images)

    def test_fifo_eviction(self):
        c = cache(capacity=50, alpha=0.0, eviction="fifo")
        c.request(spec("p0", "p1"))
        c.request(spec("p2", "p3"))
        c.request(spec("p0", "p1"))          # touch; FIFO ignores it
        c.request(spec("p4", "p5"))
        assert c.request(spec("p0", "p1")).action is EventKind.INSERT

    def test_size_eviction_drops_largest(self):
        c = cache(capacity=60, alpha=0.0, eviction="size")
        c.request(spec("p0", "p1", "p2"))    # 30
        c.request(spec("p3", "p4"))          # 20
        c.request(spec("p5", "p6"))          # 20 -> evict the 30-byte image
        assert c.request(spec("p3", "p4")).action is EventKind.HIT

    def test_zero_capacity_cache_works(self):
        c = cache(capacity=0, alpha=0.0)
        assert c.request(spec("p0")).action is EventKind.INSERT
        assert c.request(spec("p1")).action is EventKind.INSERT
        assert c.stats.deletes == 1


class TestAccounting:
    def test_cached_bytes_is_sum_of_images(self):
        c = cache(alpha=0.0)
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p2"))
        assert c.cached_bytes == sum(img.size for img in c.images) == 40

    def test_unique_bytes_deduplicates_packages(self):
        c = cache(alpha=0.0)
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p2"))
        assert c.unique_bytes == 30  # p0 counted once

    def test_cache_efficiency(self):
        c = cache(alpha=0.0)
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p2"))
        assert c.cache_efficiency == pytest.approx(30 / 40)

    def test_empty_cache_efficiency_is_one(self):
        assert cache().cache_efficiency == 1.0

    def test_container_efficiency_degrades_with_merging(self):
        c = cache(alpha=0.95)
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p2"))  # runs in a 30-byte image, asked for 20
        assert c.stats.container_efficiency == pytest.approx(40 / 50)

    def test_used_bytes_tracks_hit_image_size(self):
        c = cache(alpha=0.95)
        c.request(spec("p0", "p1", "p2"))
        c.request(spec("p0"))  # hit in a 30-byte image for a 10-byte ask
        assert c.stats.used_bytes == 60
        assert c.stats.container_efficiency == pytest.approx(40 / 60)

    def test_eviction_updates_unique_and_cached(self):
        c = cache(capacity=40, alpha=0.0)
        c.request(spec("p0", "p1"))
        c.request(spec("p0", "p2"))
        c.request(spec("p3", "p4"))  # evicts until <= 40
        assert c.cached_bytes <= 40
        assert c.unique_bytes == sum(
            10 for _ in set().union(*[i.packages for i in c.images])
        )


class TestEventsAndClear:
    def test_event_log_records_all_ops(self):
        c = cache(alpha=0.75, record_events=True, capacity=70)
        c.request(spec("p0", "p1", "p2"))
        c.request(spec("p0", "p1", "p3"))
        c.request(spec("p0", "p1", "p3"))
        kinds = [e.kind for e in c.events]
        assert kinds == [EventKind.INSERT, EventKind.MERGE, EventKind.HIT]

    def test_events_not_recorded_by_default(self):
        c = cache()
        c.request(spec("p0"))
        assert c.events == []

    def test_clear_drops_images_keeps_stats(self):
        c = cache()
        c.request(spec("p0"))
        c.clear()
        assert len(c) == 0
        assert c.cached_bytes == 0
        assert c.unique_bytes == 0
        assert c.stats.inserts == 1


class TestMinHashMode:
    def test_minhash_prefilter_still_merges_close_specs(self):
        c = cache(alpha=0.9, use_minhash=True)
        base = spec(*[f"p{i}" for i in range(40)])
        near = spec(*([f"p{i}" for i in range(40)] + ["q0"]))
        c.request(base)
        assert c.request(near).action is EventKind.MERGE

    def test_minhash_examines_fewer_candidates(self):
        exact = cache(alpha=0.75)
        approx = cache(alpha=0.75, use_minhash=True)
        streams = [
            spec(*[f"p{j}" for j in range(i, i + 10)]) for i in range(0, 80, 4)
        ]
        for s in streams:
            exact.request(s)
            approx.request(s)
        assert approx.stats.candidates_examined < exact.stats.candidates_examined


class TestSpecMemoBound:
    def test_partial_eviction_keeps_recent_specs(self, monkeypatch):
        # regression: hitting the memo bound used to clear() the whole
        # memo, discarding hot keys; now only the oldest half is dropped.
        monkeypatch.setattr(LandlordCache, "_SPEC_MEMO_LIMIT", 8)
        c = cache()
        specs = [spec(f"p{i}") for i in range(8)]
        for s in specs:
            c._intern(s)
        assert len(c._spec_memo) == 8
        c._intern(spec("q0"))  # crosses the bound
        assert len(c._spec_memo) == 5  # 8 - 4 dropped + 1 new
        # the oldest half is gone, the newest half (and the trigger) stay
        assert all(specs[i] not in c._spec_memo for i in range(4))
        assert all(specs[i] in c._spec_memo for i in range(4, 8))
        assert spec("q0") in c._spec_memo

    def test_bound_is_an_upper_limit(self, monkeypatch):
        monkeypatch.setattr(LandlordCache, "_SPEC_MEMO_LIMIT", 16)
        c = cache()
        for i in range(100):
            c._intern(spec(f"p{i % 50}", f"q{i % 40}"))
        assert len(c._spec_memo) <= 16

    def test_interning_still_correct_across_the_bound(self, monkeypatch):
        monkeypatch.setattr(LandlordCache, "_SPEC_MEMO_LIMIT", 4)
        c = cache()
        for i in range(12):
            mask, indices, size = c._intern(spec(f"p{i}"))
            assert size == 10
        again_mask, _, again_size = c._intern(spec("p0"))
        assert again_size == 10
        assert again_mask == c._universe.mask_of(spec("p0"))[0]


class TestSharedLock:
    """enable_lock: mutators serialise under an attached lock, and the
    disabled path (no lock) stays a bare ``is None`` check."""

    class _CountingLock:
        """An RLock that counts acquisitions (context-manager protocol)."""

        def __init__(self):
            import threading

            self._lock = threading.RLock()
            self.acquisitions = 0

        def __enter__(self):
            self._lock.acquire()
            self.acquisitions += 1
            return self

        def __exit__(self, *exc):
            self._lock.release()

        def acquire(self, *a, **kw):
            self.acquisitions += 1
            return self._lock.acquire(*a, **kw)

        def release(self):
            self._lock.release()

    def test_lock_is_off_by_default(self):
        c = cache()
        assert c.lock is None
        c.request(spec("p0"))  # no lock involved

    def test_mutators_acquire_the_lock(self):
        c = cache()
        lock = self._CountingLock()
        c.enable_lock(lock)
        assert c.lock is lock
        c.request(spec("p0", "p1"))
        assert lock.acquisitions == 1
        # submit_batch holds the lock for the window and re-enters it
        # for each inner request (hence an RLock is required)
        c.submit_batch([spec("p0"), spec("p2")])
        assert lock.acquisitions == 4
        c.evict_idle(1)
        assert lock.acquisitions == 5
        c.clear()
        assert lock.acquisitions == 6

    def test_locked_and_unlocked_decisions_identical(self):
        import threading

        plain = cache()
        locked = cache()
        locked.enable_lock(threading.RLock())
        for i in range(12):
            s = spec(f"p{i % 5}", f"p{(i * 3) % 5}")
            a = plain.request(s)
            b = locked.request(s)
            assert a.action == b.action
            assert a.image.id == b.image.id
        assert plain.snapshot() == locked.snapshot()

    def test_validation_errors_do_not_need_the_lock(self):
        c = cache()
        lock = self._CountingLock()
        c.enable_lock(lock)
        with pytest.raises(ValueError):
            c.evict_idle(-1)
        with pytest.raises(ValueError):
            c.submit_batch([], batch_size=0)
        assert lock.acquisitions == 0
