"""Tests for the adaptive-α controller and the AIMD window governor."""

import pytest

from repro.core.adaptive import (
    AimdController,
    AlphaController,
    batch_governor,
    service_governor,
)
from repro.core.cache import LandlordCache
from repro.htc.workload import DependencyWorkload
from repro.util.rng import spawn
from repro.util.units import GB


def make_cache(alpha=0.8, capacity=30 * GB, repo=None):
    return LandlordCache(capacity, alpha, repo.size_of)


class TestValidation:
    def test_parameters(self, small_sft):
        cache = make_cache(repo=small_sft)
        with pytest.raises(ValueError):
            AlphaController(cache, interval=0)
        with pytest.raises(ValueError):
            AlphaController(cache, step=0)
        with pytest.raises(ValueError):
            AlphaController(cache, alpha_min=0.9, alpha_max=0.5)

    def test_initial_alpha_clamped(self, small_sft):
        cache = make_cache(alpha=1.0, repo=small_sft)
        controller = AlphaController(cache, alpha_max=0.9)
        assert controller.alpha == 0.9


class TestAdaptation:
    def _drive(self, controller, repo, n, seed=0):
        workload = DependencyWorkload(repo, max_selection=8)
        rng = spawn(seed, "adaptive")
        for _ in range(n):
            controller.request(workload.sample(rng))

    def test_raises_alpha_when_cache_thrashes(self, small_sft):
        # Start at the LRU corner: duplication keeps cache efficiency low,
        # so the controller should walk alpha upward.
        cache = make_cache(alpha=0.4, repo=small_sft)
        controller = AlphaController(cache, interval=20, alpha_min=0.4)
        self._drive(controller, small_sft, 200)
        assert controller.alpha > 0.4
        assert any(
            "cache efficiency under floor" in e.reason
            for e in controller.events
        )

    def test_lowers_alpha_when_merging_explodes(self, small_sft):
        # A huge cache at lax alpha merges constantly; windowed write
        # amplification climbs over the ceiling and alpha must retreat.
        cache = LandlordCache(10**15, 0.95, small_sft.size_of)
        controller = AlphaController(
            cache, interval=20, write_amplification_ceiling=1.2,
            cache_efficiency_floor=0.0,  # disable the raise direction
        )
        self._drive(controller, small_sft, 200)
        assert controller.alpha < 0.95

    def test_holds_within_zone(self, small_sft):
        cache = make_cache(alpha=0.8, repo=small_sft)
        controller = AlphaController(
            cache, interval=20,
            cache_efficiency_floor=0.0,
            write_amplification_ceiling=100.0,
        )
        self._drive(controller, small_sft, 100)
        assert controller.alpha == 0.8
        assert all(e.reason == "within operational zone"
                   for e in controller.events)

    def test_alpha_stays_clamped(self, small_sft):
        cache = make_cache(alpha=0.9, repo=small_sft)
        controller = AlphaController(
            cache, interval=10, alpha_max=0.92, step=0.1,
            cache_efficiency_floor=1.0,  # always demands raising
            write_amplification_ceiling=100.0,
            container_efficiency_floor=0.0,
        )
        self._drive(controller, small_sft, 100)
        assert controller.alpha == 0.92

    def test_decisions_scheduled_by_interval(self, small_sft):
        cache = make_cache(repo=small_sft)
        controller = AlphaController(cache, interval=25)
        self._drive(controller, small_sft, 100)
        assert len(controller.events) == 4

    def test_trace_matches_events(self, small_sft):
        cache = make_cache(repo=small_sft)
        controller = AlphaController(cache, interval=25)
        self._drive(controller, small_sft, 75)
        trace = controller.alpha_trace()
        assert len(trace) == 3
        assert trace[-1][1] == controller.alpha

    def test_requests_still_served_correctly(self, small_sft):
        cache = make_cache(repo=small_sft)
        controller = AlphaController(cache, interval=5)
        workload = DependencyWorkload(small_sft, max_selection=6)
        rng = spawn(1, "serve")
        for _ in range(30):
            spec = workload.sample(rng)
            decision = controller.request(spec)
            assert spec <= decision.image.packages


class TestAimdValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            AimdController(min_size=0)
        with pytest.raises(ValueError):
            AimdController(min_size=100, max_size=50)
        with pytest.raises(ValueError):
            AimdController(increase=0)
        with pytest.raises(ValueError):
            AimdController(decrease=1.0)
        with pytest.raises(ValueError):
            AimdController(decrease=0.0)
        with pytest.raises(ValueError):
            AimdController(low_watermark=0.5, high_watermark=0.5)
        with pytest.raises(ValueError):
            AimdController(low_watermark=-0.1)
        with pytest.raises(ValueError):
            AimdController(high_watermark=1.5)

    def test_initial_clamped_into_bounds(self):
        assert AimdController(initial=1, min_size=32).size == 32
        assert AimdController(initial=10**6, max_size=4096).size == 4096


class TestAimdStepFunction:
    def test_additive_increase(self):
        gov = AimdController(initial=256, increase=64, max_size=4096)
        assert gov.observe(0.0) == 320
        assert gov.observe(0.05) == 384  # low watermark itself grows
        assert gov.increases == 2

    def test_increase_caps_at_max(self):
        gov = AimdController(initial=4090, increase=64, max_size=4096)
        assert gov.observe(0.0) == 4096
        assert gov.observe(0.0) == 4096

    def test_multiplicative_decrease(self):
        gov = AimdController(initial=256, decrease=0.5, min_size=32)
        assert gov.observe(1.0) == 128
        assert gov.observe(0.25) == 64  # high watermark itself shrinks
        assert gov.decreases == 2

    def test_decrease_floors_at_min(self):
        gov = AimdController(initial=40, decrease=0.5, min_size=32)
        assert gov.observe(1.0) == 32
        assert gov.observe(1.0) == 32

    def test_hold_inside_band(self):
        gov = AimdController(initial=256)
        assert gov.observe(gov.hold_signal) == 256
        assert gov.holds == 1
        assert gov.low_watermark < gov.hold_signal < gov.high_watermark

    def test_nan_and_out_of_range_signals_are_tamed(self):
        gov = AimdController(initial=256, increase=64)
        assert gov.observe(float("nan")) == 320   # NaN reads as 0 -> grow
        assert gov.observe(-5.0) == 384           # clamped to 0 -> grow
        assert gov.observe(7.0) == 192            # clamped to 1 -> shrink
        assert gov.last_signal == 1.0

    def test_deterministic_replay(self):
        signals = [0.0, 0.0, 0.9, 0.1, 0.0, 1.0, 0.5, 0.0]
        runs = []
        for _ in range(2):
            gov = AimdController()
            runs.append([gov.observe(s) for s in signals])
        assert runs[0] == runs[1]

    def test_events_and_status(self):
        gov = AimdController(initial=256)
        gov.observe(0.0)
        gov.observe(1.0)
        gov.observe(gov.hold_signal)
        assert [e.action for e in gov.events] == [
            "increase", "decrease", "hold"
        ]
        assert gov.events[1].old_size == 320
        assert gov.events[1].new_size == 160
        status = gov.status()
        assert status["steps"] == 3
        assert status["increases"] == status["decreases"] == status["holds"] == 1
        assert status["size"] == gov.size

    def test_events_optional(self):
        gov = AimdController(record_events=False)
        gov.observe(0.0)
        assert gov.events is None
        assert gov.steps == 1


class TestGovernorFactories:
    def test_batch_governor_shape(self):
        gov = batch_governor()
        assert (gov.size, gov.min_size, gov.max_size) == (256, 32, 4096)
        assert gov.high_watermark == 0.25

    def test_service_governor_shape(self):
        gov = service_governor(initial=64)
        assert (gov.size, gov.min_size, gov.max_size) == (64, 16, 8192)
        assert gov.high_watermark == 0.95
