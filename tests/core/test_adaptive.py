"""Tests for the adaptive-α controller."""

import pytest

from repro.core.adaptive import AlphaController
from repro.core.cache import LandlordCache
from repro.htc.workload import DependencyWorkload
from repro.util.rng import spawn
from repro.util.units import GB


def make_cache(alpha=0.8, capacity=30 * GB, repo=None):
    return LandlordCache(capacity, alpha, repo.size_of)


class TestValidation:
    def test_parameters(self, small_sft):
        cache = make_cache(repo=small_sft)
        with pytest.raises(ValueError):
            AlphaController(cache, interval=0)
        with pytest.raises(ValueError):
            AlphaController(cache, step=0)
        with pytest.raises(ValueError):
            AlphaController(cache, alpha_min=0.9, alpha_max=0.5)

    def test_initial_alpha_clamped(self, small_sft):
        cache = make_cache(alpha=1.0, repo=small_sft)
        controller = AlphaController(cache, alpha_max=0.9)
        assert controller.alpha == 0.9


class TestAdaptation:
    def _drive(self, controller, repo, n, seed=0):
        workload = DependencyWorkload(repo, max_selection=8)
        rng = spawn(seed, "adaptive")
        for _ in range(n):
            controller.request(workload.sample(rng))

    def test_raises_alpha_when_cache_thrashes(self, small_sft):
        # Start at the LRU corner: duplication keeps cache efficiency low,
        # so the controller should walk alpha upward.
        cache = make_cache(alpha=0.4, repo=small_sft)
        controller = AlphaController(cache, interval=20, alpha_min=0.4)
        self._drive(controller, small_sft, 200)
        assert controller.alpha > 0.4
        assert any(
            "cache efficiency under floor" in e.reason
            for e in controller.events
        )

    def test_lowers_alpha_when_merging_explodes(self, small_sft):
        # A huge cache at lax alpha merges constantly; windowed write
        # amplification climbs over the ceiling and alpha must retreat.
        cache = LandlordCache(10**15, 0.95, small_sft.size_of)
        controller = AlphaController(
            cache, interval=20, write_amplification_ceiling=1.2,
            cache_efficiency_floor=0.0,  # disable the raise direction
        )
        self._drive(controller, small_sft, 200)
        assert controller.alpha < 0.95

    def test_holds_within_zone(self, small_sft):
        cache = make_cache(alpha=0.8, repo=small_sft)
        controller = AlphaController(
            cache, interval=20,
            cache_efficiency_floor=0.0,
            write_amplification_ceiling=100.0,
        )
        self._drive(controller, small_sft, 100)
        assert controller.alpha == 0.8
        assert all(e.reason == "within operational zone"
                   for e in controller.events)

    def test_alpha_stays_clamped(self, small_sft):
        cache = make_cache(alpha=0.9, repo=small_sft)
        controller = AlphaController(
            cache, interval=10, alpha_max=0.92, step=0.1,
            cache_efficiency_floor=1.0,  # always demands raising
            write_amplification_ceiling=100.0,
            container_efficiency_floor=0.0,
        )
        self._drive(controller, small_sft, 100)
        assert controller.alpha == 0.92

    def test_decisions_scheduled_by_interval(self, small_sft):
        cache = make_cache(repo=small_sft)
        controller = AlphaController(cache, interval=25)
        self._drive(controller, small_sft, 100)
        assert len(controller.events) == 4

    def test_trace_matches_events(self, small_sft):
        cache = make_cache(repo=small_sft)
        controller = AlphaController(cache, interval=25)
        self._drive(controller, small_sft, 75)
        trace = controller.alpha_trace()
        assert len(trace) == 3
        assert trace[-1][1] == controller.alpha

    def test_requests_still_served_correctly(self, small_sft):
        cache = make_cache(repo=small_sft)
        controller = AlphaController(cache, interval=5)
        workload = DependencyWorkload(small_sft, max_selection=6)
        rng = spawn(1, "serve")
        for _ in range(30):
            spec = workload.sample(rng)
            decision = controller.request(spec)
            assert spec <= decision.image.packages
