"""Property-based tests: merge is a bounded semilattice operation.

Merge (union of requirements) must be commutative, associative and
idempotent, and a merged spec must satisfy every constituent — the
algebraic facts Algorithm 1 silently relies on when it replaces an image
with ``merge(s, j)`` and keeps serving both request families from it.
"""

from hypothesis import given, settings, strategies as st

from repro.core.spec import ImageSpec

package_ids = st.text(
    alphabet="abcdefgh", min_size=1, max_size=4
).map(lambda s: f"{s}/1.0")

specs = st.frozensets(package_ids, max_size=12).map(ImageSpec)


@settings(max_examples=100)
@given(specs, specs)
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@settings(max_examples=100)
@given(specs, specs, specs)
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@settings(max_examples=100)
@given(specs)
def test_merge_idempotent(a):
    assert a.merge(a) == a


@settings(max_examples=100)
@given(specs, specs)
def test_merged_spec_satisfies_both_constituents(a, b):
    merged = a.merge(b)
    assert merged.satisfies(a)
    assert merged.satisfies(b)


@settings(max_examples=100)
@given(specs, specs)
def test_satisfaction_is_subset_order(a, b):
    assert a.satisfies(b) == (b.packages <= a.packages)


@settings(max_examples=100)
@given(specs, specs)
def test_difference_then_merge_restores(a, b):
    """(a - b) merged with (a & b) rebuilds a — split is lossless."""
    assert (a - b).merge(a & b) == a


@settings(max_examples=100)
@given(specs, specs)
def test_merge_size_bounds(a, b):
    merged = a.merge(b)
    assert max(len(a), len(b)) <= len(merged) <= len(a) + len(b)
