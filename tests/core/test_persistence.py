"""Tests for cache snapshot/restore and the on-disk state layer."""

import json

import pytest

from repro.core.cache import LandlordCache
from repro.core.events import EventKind
from repro.core.persistence import (
    StateError,
    StateNotFound,
    body_checksum,
    load_bundle,
    load_state,
    save_state,
)

SIZE = {f"p{i}": 10 for i in range(30)}


def make_cache(**kw):
    return LandlordCache(500, 0.8, SIZE.__getitem__, **kw)


def warm_cache():
    cache = make_cache()
    cache.request(frozenset({"p0", "p1", "p2"}))
    cache.request(frozenset({"p0", "p1", "p3"}))  # merge
    cache.request(frozenset({"p9", "p10"}))
    cache.request(frozenset({"p9", "p10"}))       # hit
    return cache


class TestSnapshotRestore:
    def test_roundtrip_preserves_everything(self):
        original = warm_cache()
        snapshot = original.snapshot()
        restored = make_cache()
        restored.restore(snapshot)
        assert len(restored) == len(original)
        assert restored.cached_bytes == original.cached_bytes
        assert restored.unique_bytes == original.unique_bytes
        assert restored.stats == original.stats
        assert {i.id for i in restored.images} == {
            i.id for i in original.images
        }

    def test_restored_cache_behaves_identically(self):
        original = warm_cache()
        restored = make_cache()
        restored.restore(original.snapshot())
        probe = frozenset({"p0", "p1"})
        a = original.request(probe)
        b = restored.request(probe)
        assert a.action == b.action == EventKind.HIT
        assert a.image.id == b.image.id

    def test_lru_order_survives(self):
        cache = LandlordCache(60, 0.0, SIZE.__getitem__)
        cache.request(frozenset({"p0", "p1"}))
        cache.request(frozenset({"p2", "p3"}))
        cache.request(frozenset({"p0", "p1"}))  # touch first
        restored = LandlordCache(60, 0.0, SIZE.__getitem__)
        restored.restore(cache.snapshot())
        restored.request(frozenset({"p4", "p5"}))  # evicts true LRU
        assert restored.request(frozenset({"p0", "p1"})).action is EventKind.HIT

    def test_image_id_sequence_continues(self):
        original = warm_cache()
        restored = make_cache()
        restored.restore(original.snapshot())
        decision = restored.request(frozenset({"p20"}))
        existing = {i.id for i in original.images}
        assert decision.image.id not in existing

    def test_restore_requires_fresh_cache(self):
        cache = warm_cache()
        with pytest.raises(ValueError, match="fresh"):
            cache.restore(cache.snapshot())

    def test_restore_rejects_config_mismatch(self):
        snapshot = warm_cache().snapshot()
        other = LandlordCache(999, 0.8, SIZE.__getitem__)
        with pytest.raises(ValueError, match="capacity"):
            other.restore(snapshot)

    def test_restore_rejects_policy_mismatch(self):
        snapshot = warm_cache().snapshot()
        other = make_cache(eviction="fifo", hit_selection="mru")
        with pytest.raises(ValueError, match="policy mismatch") as exc:
            other.restore(snapshot)
        assert "eviction" in str(exc.value)
        assert "hit_selection" in str(exc.value)

    def test_restore_rejects_conflict_policy_mismatch(self):
        from repro.packages.conflicts import SlotConflicts

        snapshot = warm_cache().snapshot()
        other = make_cache(conflict_policy=SlotConflicts())
        with pytest.raises(ValueError, match="conflict_policy"):
            other.restore(snapshot)

    def test_restore_rejects_policyless_snapshot(self):
        snapshot = warm_cache().snapshot()
        del snapshot["policy"]
        with pytest.raises(ValueError, match="pre-v2"):
            make_cache().restore(snapshot)

    def test_snapshot_records_all_policy_knobs(self):
        policy = warm_cache().snapshot()["policy"]
        assert policy == {
            "eviction": "lru",
            "hit_selection": "smallest",
            "candidate_order": "distance",
            "merge_write_mode": "full",
            "use_minhash": False,
            "minhash_perm": 128,
            "minhash_bands": 32,
            "minhash_seed": 1,
            "conflict_policy": "NoConflicts",
        }

    def test_random_candidate_order_rng_state_survives(self):
        import numpy as np

        a = LandlordCache(10**9, 1.0, SIZE.__getitem__,
                          candidate_order="random",
                          rng=np.random.default_rng(5))
        b = LandlordCache(10**9, 1.0, SIZE.__getitem__,
                          candidate_order="random",
                          rng=np.random.default_rng(5))
        stream = [frozenset({f"p{i}", f"p{i + 1}"}) for i in range(10)]
        for spec in stream:
            a.request(spec)
            b.request(spec)
        restored = LandlordCache(10**9, 1.0, SIZE.__getitem__,
                                 candidate_order="random",
                                 rng=np.random.default_rng(999))
        restored.restore(a.snapshot())
        probe = [frozenset({f"p{i}", f"p{i + 5}"}) for i in range(8)]
        for spec in probe:
            da = b.request(spec)
            dr = restored.request(spec)
            assert (da.action, da.image.id) == (dr.action, dr.image.id)

    def test_restore_with_minhash_rebuilds_index(self):
        cache = make_cache(use_minhash=True)
        base = frozenset({f"p{i}" for i in range(10)})
        cache.request(base)
        restored = make_cache(use_minhash=True)
        restored.restore(cache.snapshot())
        near = frozenset(list(base) + ["p20"])
        assert restored.request(near).action is EventKind.MERGE


class TestStateFiles:
    def test_save_load_roundtrip(self, tmp_path):
        cache = warm_cache()
        path = save_state(tmp_path / "state.json", cache,
                          metadata={"site": "s0"})
        loaded, metadata = load_state(path, SIZE.__getitem__)
        assert metadata == {"site": "s0"}
        assert loaded.stats == cache.stats

    def test_missing_file(self, tmp_path):
        with pytest.raises(StateError, match="no state file"):
            load_state(tmp_path / "ghost.json", SIZE.__getitem__)

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(StateError, match="corrupt"):
            load_state(path, SIZE.__getitem__)

    def test_wrong_version(self, tmp_path):
        cache = warm_cache()
        path = save_state(tmp_path / "s.json", cache)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(StateError, match="version"):
            load_state(path, SIZE.__getitem__)

    def test_v1_file_fails_descriptively(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(
            {"version": 1, "cache": warm_cache().snapshot()}
        ))
        with pytest.raises(StateError, match="v1 format"):
            load_state(path, SIZE.__getitem__)

    def test_v1_file_migrates_on_request(self, tmp_path):
        cache = warm_cache()
        snapshot = cache.snapshot()
        del snapshot["policy"]  # v1 snapshots predate the policy block
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(
            {"version": 1, "metadata": {"site": "s0"}, "cache": snapshot}
        ))
        loaded, metadata = load_state(
            path, SIZE.__getitem__, migrate_v1=True
        )
        assert metadata == {"site": "s0"}
        assert loaded.stats == cache.stats

    def test_malformed_cache_section(self, tmp_path):
        body = {"metadata": {}, "journal_seq": 0, "cache": {}}
        payload = {"version": 2, "checksum": body_checksum(body), **body}
        path = tmp_path / "s.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(StateError, match="malformed"):
            load_state(path, SIZE.__getitem__)

    def test_checksum_mismatch_detected(self, tmp_path):
        path = save_state(tmp_path / "s.json", warm_cache())
        payload = json.loads(path.read_text())
        payload["journal_seq"] = 42  # tamper after checksumming
        path.write_text(json.dumps(payload))
        with pytest.raises(StateError, match="checksum"):
            load_state(path, SIZE.__getitem__)

    def test_missing_checksum_detected(self, tmp_path):
        path = save_state(tmp_path / "s.json", warm_cache())
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        with pytest.raises(StateError, match="checksum"):
            load_state(path, SIZE.__getitem__)

    def test_policy_mismatch_on_load(self, tmp_path):
        path = save_state(tmp_path / "s.json", warm_cache())
        with pytest.raises(StateError, match="policy mismatch"):
            load_state(path, SIZE.__getitem__, eviction="fifo")

    def test_missing_file_is_statenotfound(self, tmp_path):
        with pytest.raises(StateNotFound):
            load_state(tmp_path / "ghost.json", SIZE.__getitem__)

    def test_load_bundle_reports_journal_seq(self, tmp_path):
        path = save_state(
            tmp_path / "s.json", warm_cache(), journal_seq=17
        )
        bundle = load_bundle(path, SIZE.__getitem__)
        assert bundle.journal_seq == 17

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        save_state(tmp_path / "s.json", warm_cache())
        assert list(tmp_path.iterdir()) == [tmp_path / "s.json"]

    def test_stale_tmp_removed_on_load(self, tmp_path):
        path = save_state(tmp_path / "s.json", warm_cache())
        stale = tmp_path / "s.json.tmp"
        stale.write_text("{half-written")
        loaded, _ = load_state(path, SIZE.__getitem__)
        assert loaded.stats.requests == 4
        assert not stale.exists()

    def test_stale_tmp_without_state_reports_crash(self, tmp_path):
        stale = tmp_path / "s.json.tmp"
        stale.write_text("{half-written")
        with pytest.raises(StateNotFound, match="tmp"):
            load_state(tmp_path / "s.json", SIZE.__getitem__)
        assert not stale.exists()


class TestSubmitCli:
    def test_submit_flow(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.experiments.common import get_scale
        from repro.packages.sft import build_experiment_repository

        scale = get_scale("tiny")
        repo = build_experiment_repository(
            "sft", seed=2020, n_packages=scale.n_packages,
            target_total_size=scale.repo_total_size,
        )
        apps = [i for i in repo.ids if i.startswith("app-")]
        spec = tmp_path / "job.txt"
        spec.write_text("\n".join(apps[:3]))
        state = tmp_path / "state.json"

        assert main(["submit", str(spec), "--state", str(state),
                     "--scale", "tiny"]) == 0
        first = capsys.readouterr().out
        assert "insert" in first

        assert main(["submit", str(spec), "--state", str(state),
                     "--scale", "tiny"]) == 0
        second = capsys.readouterr().out
        assert "hit" in second

        assert main(["cache-status", "--state", str(state),
                     "--scale", "tiny"]) == 0
        status = capsys.readouterr().out
        assert "2 requests" in status

    def test_submit_rejects_repo_mismatch(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments.common import get_scale
        from repro.packages.sft import build_experiment_repository

        scale = get_scale("tiny")
        repo = build_experiment_repository(
            "sft", seed=2020, n_packages=scale.n_packages,
            target_total_size=scale.repo_total_size,
        )
        spec = tmp_path / "job.txt"
        spec.write_text(repo.ids[0])
        state = tmp_path / "state.json"
        main(["submit", str(spec), "--state", str(state), "--scale", "tiny"])
        capsys.readouterr()
        # different seed => different site repository => refuse
        code = main(["submit", str(spec), "--state", str(state),
                     "--scale", "tiny", "--seed", "7"])
        assert code == 2

    def test_submit_unresolvable_spec_aborts(self, tmp_path):
        from repro.cli import main

        spec = tmp_path / "job.txt"
        spec.write_text("definitely-not-a-package\n")
        with pytest.raises(SystemExit, match="unresolvable"):
            main(["submit", str(spec), "--state",
                  str(tmp_path / "s.json"), "--scale", "tiny"])

    def test_submit_json_specfile(self, tmp_path, capsys):
        from repro.cli import main
        from repro.experiments.common import get_scale
        from repro.packages.sft import build_experiment_repository
        import json

        scale = get_scale("tiny")
        repo = build_experiment_repository(
            "sft", seed=2020, n_packages=scale.n_packages,
            target_total_size=scale.repo_total_size,
        )
        spec = tmp_path / "job.json"
        spec.write_text(json.dumps({"packages": repo.ids[:3]}))
        code = main(["submit", str(spec), "--state",
                     str(tmp_path / "s.json"), "--scale", "tiny"])
        assert code == 0
        assert "insert" in capsys.readouterr().out

    def test_submit_with_user_repository_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.packages import Package, Repository, save_repository

        repo = Repository([
            Package("base/1.0", 100),
            Package("tool/2.0", 200, deps=("base/1.0",)),
        ])
        repo_file = tmp_path / "repo.jsonl"
        save_repository(repo_file, repo)
        spec = tmp_path / "job.txt"
        spec.write_text("tool/2.0\n")
        code = main(["submit", str(spec), "--state",
                     str(tmp_path / "s.json"), "--repo", str(repo_file),
                     "--capacity", "10KB"])
        assert code == 0
        out = capsys.readouterr().out
        assert "insert" in out and "2 pkgs" in out
