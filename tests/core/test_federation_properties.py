"""Property-based guarantees for federated sites.

Whatever the interleaving of requests across sites, federation must stay
*transparent*: every job still receives a satisfying image, and the
registry only ever serves images that genuinely satisfy what was asked.
"""

from hypothesis import given, settings, strategies as st

from repro.containers.registry import ImageRegistry
from repro.core.federation import FederatedLandlord
from repro.packages.package import Package
from repro.packages.repository import Repository

CORE = [f"core-{i}/1.0" for i in range(3)]
APPS = [f"app-{i}/1.0" for i in range(8)]


def build_repo() -> Repository:
    packages = [Package(pid, 10) for pid in CORE]
    for i, pid in enumerate(APPS):
        packages.append(Package(pid, 20, deps=(CORE[i % len(CORE)],)))
    return Repository(packages)


REPO = build_repo()

requests = st.lists(
    st.tuples(
        st.integers(0, 2),  # site index
        st.frozensets(st.sampled_from(APPS + CORE), min_size=1, max_size=3),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(requests)
def test_federated_requests_always_satisfied(stream):
    registry = ImageRegistry()
    sites = [
        FederatedLandlord(REPO, capacity=10_000, registry=registry)
        for _ in range(3)
    ]
    for site_index, spec in stream:
        prepared = sites[site_index].prepare(spec)
        assert REPO.closure(spec) <= prepared.image.packages


@settings(max_examples=60, deadline=None)
@given(requests)
def test_registry_contents_are_well_formed(stream):
    registry = ImageRegistry()
    sites = [
        FederatedLandlord(REPO, capacity=10_000, registry=registry)
        for _ in range(3)
    ]
    for site_index, spec in stream:
        sites[site_index].prepare(spec)
    seen_contents = set()
    for image in registry.images():
        # contents-indexed: no two registry images share a package set
        assert image.spec.packages not in seen_contents
        seen_contents.add(image.spec.packages)
        # every stored image is dependency-closed (built from closures)
        assert REPO.closure(image.spec.packages) == image.spec.packages


# Note: federation does NOT dominate isolation on arbitrary streams — an
# adopted (larger) image can become the target of a later merge, making
# that merge's full rewrite bigger than the isolated site's would have
# been; and the oversize-decline guard can force a follower back to local
# building.  The clean guarantee holds when pulls are never declined: with
# identical cross-site workloads, only the first site ever builds — every
# follower miss is served by pull + adopt + hit, writing nothing.
@settings(max_examples=40, deadline=None)
@given(st.lists(st.frozensets(st.sampled_from(APPS + CORE), min_size=1,
                              max_size=3), min_size=1, max_size=8))
def test_identical_workloads_build_once_across_sites(specs):
    registry = ImageRegistry()
    sites = [
        FederatedLandlord(REPO, capacity=10_000, registry=registry,
                          max_pull_overhead=10**9)
        for _ in range(3)
    ]
    for spec in specs:
        for site in sites:
            site.prepare(spec)
    for follower in sites[1:]:
        assert follower.cache.stats.inserts == 0
        assert follower.cache.stats.merges == 0
        assert follower.cache.stats.bytes_written == 0
        assert (
            follower.cache.stats.hits
            == follower.cache.stats.requests
        )
