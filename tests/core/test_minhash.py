"""Tests for repro.core.minhash."""

import numpy as np
import pytest

from repro.core.minhash import MinHashLSH, MinHashSignature, element_hash
from repro.core.similarity import jaccard_similarity


class TestElementHash:
    def test_deterministic(self):
        assert element_hash("ROOT/6.20.04") == element_hash("ROOT/6.20.04")

    def test_distinct_inputs_distinct_hashes(self):
        assert element_hash("a") != element_hash("b")

    def test_64_bit_range(self):
        h = element_hash("anything")
        assert 0 <= h < 2**64


class TestSignature:
    def test_identical_sets_estimate_one(self):
        items = {f"p{i}" for i in range(50)}
        a = MinHashSignature.of(items)
        b = MinHashSignature.of(set(items))
        assert a.estimate_jaccard(b) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        a = MinHashSignature.of({f"a{i}" for i in range(100)}, num_perm=256)
        b = MinHashSignature.of({f"b{i}" for i in range(100)}, num_perm=256)
        assert a.estimate_jaccard(b) < 0.05

    def test_estimate_close_to_exact(self):
        x = {f"p{i}" for i in range(200)}
        y = {f"p{i}" for i in range(100, 300)}
        exact = jaccard_similarity(x, y)
        est = MinHashSignature.of(x, num_perm=512).estimate_jaccard(
            MinHashSignature.of(y, num_perm=512)
        )
        assert abs(est - exact) < 0.08

    def test_distance_complement(self):
        a = MinHashSignature.of({"x"})
        b = MinHashSignature.of({"x", "y"})
        assert a.estimate_distance(b) == pytest.approx(
            1 - a.estimate_jaccard(b)
        )

    def test_merge_equals_signature_of_union(self):
        x = {f"p{i}" for i in range(40)}
        y = {f"q{i}" for i in range(40)}
        merged = MinHashSignature.of(x).merge(MinHashSignature.of(y))
        direct = MinHashSignature.of(x | y)
        assert merged == direct

    def test_empty_set_signature(self):
        empty = MinHashSignature.of(set())
        assert empty.estimate_jaccard(MinHashSignature.of(set())) == 1.0
        assert empty.estimate_jaccard(MinHashSignature.of({"a"})) < 0.05

    def test_incompatible_widths_rejected(self):
        a = MinHashSignature.of({"x"}, num_perm=64)
        b = MinHashSignature.of({"x"}, num_perm=128)
        with pytest.raises(ValueError):
            a.estimate_jaccard(b)

    def test_incompatible_seeds_rejected(self):
        a = MinHashSignature.of({"x"}, seed=1)
        b = MinHashSignature.of({"x"}, seed=2)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_zero_perm_rejected(self):
        with pytest.raises(ValueError):
            MinHashSignature.of({"x"}, num_perm=0)

    def test_copy_is_independent(self):
        a = MinHashSignature.of({"x"})
        b = a.copy()
        b.values[0] = 0
        assert a.values[0] != 0 or a.values[0] == b.values[0] == 0


class TestLSH:
    def test_band_shape_must_divide(self):
        with pytest.raises(ValueError):
            MinHashLSH(num_perm=128, bands=33)

    def test_insert_query_similar(self):
        lsh = MinHashLSH(num_perm=128, bands=32)
        base = {f"p{i}" for i in range(100)}
        lsh.insert("img", MinHashSignature.of(base))
        near = MinHashSignature.of(base | {"extra"})
        assert "img" in lsh.query(near)

    def test_query_misses_dissimilar(self):
        lsh = MinHashLSH(num_perm=128, bands=4)  # high threshold
        lsh.insert("img", MinHashSignature.of({f"a{i}" for i in range(100)}))
        far = MinHashSignature.of({f"b{i}" for i in range(100)})
        assert "img" not in lsh.query(far)

    def test_remove(self):
        lsh = MinHashLSH()
        sig = MinHashSignature.of({"x"})
        lsh.insert("k", sig)
        lsh.remove("k")
        assert "k" not in lsh
        assert lsh.query(sig) == set()

    def test_remove_absent_is_noop(self):
        MinHashLSH().remove("ghost")

    def test_reinsert_replaces(self):
        lsh = MinHashLSH()
        lsh.insert("k", MinHashSignature.of({"x"}))
        lsh.insert("k", MinHashSignature.of({"y"}))
        assert len(lsh) == 1
        assert "k" in lsh.query(MinHashSignature.of({"y"}))

    def test_threshold_reflects_banding(self):
        sharp = MinHashLSH(num_perm=128, bands=4)   # r=32: high threshold
        loose = MinHashLSH(num_perm=128, bands=64)  # r=2: low threshold
        assert sharp.threshold > loose.threshold

    def test_width_mismatch_rejected(self):
        lsh = MinHashLSH(num_perm=128)
        with pytest.raises(ValueError):
            lsh.insert("k", MinHashSignature.of({"x"}, num_perm=64))


class TestUpdate:
    def test_update_equals_remove_plus_insert(self):
        lsh = MinHashLSH()
        old = MinHashSignature.of({f"a{i}" for i in range(30)})
        new = MinHashSignature.of({f"a{i}" for i in range(25)} | {"z1", "z2"})
        lsh.insert("k", old)
        lsh.update("k", new)
        twin = MinHashLSH()
        twin.insert("k", new)
        assert lsh.query(new) == twin.query(new)
        assert lsh.total_entries() == twin.total_entries()

    def test_update_unknown_key_inserts(self):
        lsh = MinHashLSH()
        sig = MinHashSignature.of({"x"})
        lsh.update("k", sig)
        assert "k" in lsh
        assert "k" in lsh.query(sig)

    def test_band_membership_stays_bounded_over_merge_chains(self):
        # every key must occupy exactly one bucket per band no matter how
        # often merges rewrite its signature through update()
        from repro.core.cache import LandlordCache

        sizes = {f"p{i}": 10 for i in range(40)}
        c = LandlordCache(10**9, 1.0, sizes.__getitem__, use_minhash=True)
        base = {f"p{i}" for i in range(10)}
        c.request(frozenset(base))
        for i in range(10, 30):
            base.add(f"p{i}")
            c.request(frozenset(base))  # long merge chain into one image
        lsh = c._lsh
        assert lsh.total_entries() == lsh.bands * len(lsh)

    def test_total_entries_counts_buckets(self):
        lsh = MinHashLSH()
        lsh.insert("a", MinHashSignature.of({"x"}))
        lsh.insert("b", MinHashSignature.of({"y", "z"}))
        assert lsh.total_entries() == 2 * lsh.bands


class TestChurnInvariants:
    """The index must never leak bucket entries or empty buckets under
    arbitrary insert/update/remove churn — the regime the vectorized
    engine's signature index lives in, where every cache insert, merge,
    and eviction rewrites membership."""

    def test_total_entries_invariant_under_churn(self):
        from random import Random

        rng = Random("lsh-churn")
        lsh = MinHashLSH(num_perm=32, bands=8)
        live = {}
        for step in range(2000):
            key = f"k{rng.randint(0, 80)}"
            op = rng.random()
            if op < 0.75:
                sig = MinHashSignature.of(
                    {f"e{rng.randint(0, 200)}"
                     for _ in range(rng.randint(1, 20))},
                    num_perm=32,
                )
                if op < 0.45:
                    lsh.insert(key, sig)
                else:
                    lsh.update(key, sig)
                live[key] = sig
            else:
                lsh.remove(key)
                live.pop(key, None)
            assert len(lsh) == len(live)
            assert lsh.total_entries() == lsh.bands * len(live)
        # Bucket cleanup: churn must not leave empty buckets behind.
        for table in lsh._tables:
            assert all(table.values())
        # Every surviving key is still findable under its signature.
        for key, sig in live.items():
            assert key in lsh.query(sig)

    def test_engine_signature_index_tracks_live_images(self):
        # The vectorized engine's internal prefilter index must stay
        # exactly one entry per band per *live* image across insert,
        # merge, and idle-eviction churn.
        from random import Random

        from repro.core.cache import LandlordCache

        sizes = {f"p{i}": 10 + i % 7 for i in range(48)}
        c = LandlordCache(600, 0.6, sizes.__getitem__, engine="vectorized")
        c._engine.lsh_min_live = 1
        rng = Random("engine-churn")
        packages = sorted(sizes)
        for step in range(1, 401):
            c.request(frozenset(rng.sample(packages, rng.randint(1, 6))))
            if step % 50 == 0:
                c.evict_idle(rng.randint(0, 20))
            lsh = c._engine._sig_lsh
            if lsh is not None:
                assert len(lsh) == len(c._images)
                assert lsh.total_entries() == lsh.bands * len(c._images)
        assert c._engine._sig_lsh is not None  # the index actually engaged
