"""Property-based tests for MinHash: estimator sanity and merge algebra."""

from hypothesis import given, settings, strategies as st

from repro.core.minhash import MinHashSignature
from repro.core.similarity import jaccard_similarity

elements = st.integers(0, 50).map(lambda i: f"pkg{i}")
sets = st.frozensets(elements, max_size=25)


def sig(items, num_perm=128):
    return MinHashSignature.of(items, num_perm=num_perm)


@settings(max_examples=60, deadline=None)
@given(sets)
def test_self_similarity_is_one(a):
    assert sig(a).estimate_jaccard(sig(a)) == 1.0


@settings(max_examples=60, deadline=None)
@given(sets, sets)
def test_estimate_symmetric(a, b):
    sa, sb = sig(a), sig(b)
    assert sa.estimate_jaccard(sb) == sb.estimate_jaccard(sa)


@settings(max_examples=60, deadline=None)
@given(sets, sets)
def test_estimate_in_unit_interval(a, b):
    assert 0.0 <= sig(a).estimate_jaccard(sig(b)) <= 1.0


@settings(max_examples=60, deadline=None)
@given(sets, sets)
def test_merge_commutes_with_union(a, b):
    assert sig(a).merge(sig(b)) == sig(a | b)


@settings(max_examples=40, deadline=None)
@given(sets, sets, sets)
def test_merge_associative(a, b, c):
    left = sig(a).merge(sig(b)).merge(sig(c))
    right = sig(a).merge(sig(b).merge(sig(c)))
    assert left == right


@settings(max_examples=40, deadline=None)
@given(sets, sets)
def test_estimator_concentration(a, b):
    """With 512 permutations the estimate lands within 0.2 of exact —
    a deliberately loose bound that still catches systematic bias."""
    exact = jaccard_similarity(a, b)
    est = sig(a, 512).estimate_jaccard(sig(b, 512))
    assert abs(est - exact) <= 0.2
