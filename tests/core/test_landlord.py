"""Tests for repro.core.landlord (the job-wrapper facade)."""

import pytest

from repro.core.events import EventKind
from repro.core.landlord import Landlord
from repro.core.spec import ImageSpec
from repro.cvmfs.shrinkwrap import Shrinkwrap
from repro.packages.conflicts import SlotConflicts


class TestPrepare:
    def test_closure_expansion_by_default(self, tiny_repo):
        landlord = Landlord(tiny_repo, capacity=10_000, alpha=0.8)
        prepared = landlord.prepare(["appX/1.0"])
        assert prepared.image.packages == {
            "appX/1.0", "libA/1.0", "libB/1.0", "base/1.0",
        }

    def test_closure_expansion_disabled(self, tiny_repo):
        landlord = Landlord(
            tiny_repo, capacity=10_000, alpha=0.8, expand_closure=False
        )
        prepared = landlord.prepare(["appX/1.0"])
        assert prepared.image.packages == {"appX/1.0"}

    def test_accepts_image_spec(self, tiny_repo):
        landlord = Landlord(tiny_repo, capacity=10_000)
        prepared = landlord.prepare(ImageSpec(["appY/1.0"]))
        assert "libA/1.0" in prepared.image.packages

    def test_dependency_sharing_produces_merge(self, tiny_repo):
        landlord = Landlord(tiny_repo, capacity=10_000, alpha=0.8)
        landlord.prepare(["appY/1.0"])  # {appY, libA, base}
        prepared = landlord.prepare(["appX/1.0"])  # shares libA+base
        assert prepared.action is EventKind.MERGE

    def test_repeat_submission_hits(self, tiny_repo):
        landlord = Landlord(tiny_repo, capacity=10_000)
        landlord.prepare(["appZ/1.0"])
        again = landlord.prepare(["appZ/1.0"])
        assert again.action is EventKind.HIT
        assert again.bytes_written == 0
        assert again.prep_seconds == 0.0

    def test_unknown_package_raises(self, tiny_repo):
        landlord = Landlord(tiny_repo, capacity=10_000)
        with pytest.raises(KeyError):
            landlord.prepare(["ghost/1.0"])

    def test_container_efficiency_property(self, tiny_repo):
        landlord = Landlord(tiny_repo, capacity=10_000, alpha=0.9)
        landlord.prepare(["appY/1.0"])
        prepared = landlord.prepare(["appZ/1.0"])
        assert 0.0 < prepared.container_efficiency <= 1.0


class TestCostModel:
    def test_prep_seconds_zero_without_shrinkwrap(self, tiny_repo):
        landlord = Landlord(tiny_repo, capacity=10_000)
        assert landlord.prepare(["appX/1.0"]).prep_seconds == 0.0

    def test_prep_seconds_with_shrinkwrap(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo, download_bw=10.0, write_bw=10.0,
                        setup_seconds=2.0)
        landlord = Landlord(tiny_repo, capacity=10_000, shrinkwrap=sw)
        prepared = landlord.prepare(["appX/1.0"])  # 100 bytes
        assert prepared.prep_seconds == pytest.approx(2.0 + 10.0 + 10.0)

    def test_merge_only_downloads_added_content(self, tiny_repo):
        sw = Shrinkwrap(tiny_repo, download_bw=1.0, write_bw=1e12,
                        setup_seconds=0.0)
        landlord = Landlord(tiny_repo, capacity=10_000, alpha=0.9,
                            shrinkwrap=sw)
        landlord.prepare(["appY/1.0"])               # appY+libA+base = 80
        prepared = landlord.prepare(["appX/1.0"])    # adds appX+libB = 70
        assert prepared.action is EventKind.MERGE
        assert prepared.prep_seconds == pytest.approx(70.0)


class TestConfiguration:
    def test_alpha_exposed(self, tiny_repo):
        assert Landlord(tiny_repo, 1000, alpha=0.65).alpha == 0.65

    def test_cache_kwargs_forwarded(self, tiny_repo):
        landlord = Landlord(tiny_repo, 1000, record_events=True)
        landlord.prepare(["base/1.0"])
        assert len(landlord.cache.events) == 1

    def test_conflict_policy_forwarded(self):
        from repro.packages.package import Package
        from repro.packages.repository import Repository

        repo = Repository(
            [Package("root/6.20", 10), Package("root/6.18", 10)]
        )
        landlord = Landlord(
            repo, 1000, alpha=0.99, conflict_policy=SlotConflicts()
        )
        landlord.prepare(["root/6.20"])
        prepared = landlord.prepare(["root/6.18"])
        assert prepared.action is EventKind.INSERT  # conflict blocked merge

    def test_stats_property_is_cache_stats(self, tiny_repo):
        landlord = Landlord(tiny_repo, 1000)
        landlord.prepare(["base/1.0"])
        assert landlord.stats.requests == 1
