"""Property-based tests: Jaccard distance is a metric on finite sets.

The paper picks d_j because it is "very well used and studied"; these
properties (identity of indiscernibles, symmetry, triangle inequality,
boundedness) are what make the α threshold a coherent notion of closeness.
"""

from hypothesis import given, settings, strategies as st

from repro.core.similarity import (
    containment,
    jaccard_distance,
    jaccard_similarity,
)

elements = st.integers(0, 30).map(str)
sets = st.frozensets(elements, max_size=15)

EPS = 1e-12


@settings(max_examples=150)
@given(sets, sets)
def test_bounded_in_unit_interval(a, b):
    d = jaccard_distance(a, b)
    assert -EPS <= d <= 1 + EPS


@settings(max_examples=150)
@given(sets)
def test_identity(a):
    assert jaccard_distance(a, a) == 0.0


@settings(max_examples=150)
@given(sets, sets)
def test_identity_of_indiscernibles(a, b):
    if jaccard_distance(a, b) == 0.0:
        assert a == b


@settings(max_examples=150)
@given(sets, sets)
def test_symmetry(a, b):
    assert jaccard_distance(a, b) == jaccard_distance(b, a)


@settings(max_examples=200)
@given(sets, sets, sets)
def test_triangle_inequality(a, b, c):
    assert jaccard_distance(a, c) <= (
        jaccard_distance(a, b) + jaccard_distance(b, c) + EPS
    )


@settings(max_examples=150)
@given(sets, sets)
def test_similarity_distance_complement(a, b):
    assert abs(jaccard_similarity(a, b) + jaccard_distance(a, b) - 1.0) < EPS


@settings(max_examples=150)
@given(sets, sets)
def test_subset_requests_have_high_containment(a, b):
    if a <= b:
        assert containment(a, b) == 1.0


@settings(max_examples=150)
@given(sets, sets)
def test_merging_never_increases_distance_to_constituent(a, b):
    """d(a, a ∪ b) <= d(a, b): a merged image is at least as close to each
    constituent as the constituents were to each other."""
    union = a | b
    assert jaccard_distance(a, union) <= jaccard_distance(a, b) + EPS
