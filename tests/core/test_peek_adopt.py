"""Tests for the federation primitives LandlordCache.peek / adopt."""

import pytest

from repro.core.cache import LandlordCache
from repro.core.events import EventKind

SIZE = {f"p{i}": 10 for i in range(30)}


def cache(capacity=1000, alpha=0.8, **kw):
    return LandlordCache(capacity, alpha, SIZE.__getitem__, **kw)


class TestPeek:
    def test_peek_reports_would_be_hit(self):
        c = cache()
        c.request(frozenset({"p0", "p1"}))
        assert c.peek(frozenset({"p0"})) is not None
        assert c.peek(frozenset({"p5"})) is None

    def test_peek_mutates_nothing(self):
        c = cache()
        c.request(frozenset({"p0", "p1"}))
        stats_before = c.stats.copy()
        lru_before = c.images[0].last_used
        c.peek(frozenset({"p0"}))
        assert c.stats == stats_before
        assert c.images[0].last_used == lru_before

    def test_peek_empty_cache(self):
        assert cache().peek(frozenset({"p0"})) is None


class TestAdopt:
    def test_adopt_adds_image_without_build_writes(self):
        c = cache()
        image = c.adopt(frozenset({"p0", "p1"}))
        assert image.size == 20
        assert c.stats.bytes_written == 0
        assert c.stats.adoptions == 1
        assert c.cached_bytes == 20

    def test_adopted_image_serves_hits(self):
        c = cache()
        c.adopt(frozenset({"p0", "p1", "p2"}))
        decision = c.request(frozenset({"p1"}))
        assert decision.action is EventKind.HIT

    def test_adopted_image_can_be_merged_into(self):
        c = cache(alpha=0.9)
        c.adopt(frozenset({"p0", "p1"}))
        decision = c.request(frozenset({"p0", "p2"}))
        assert decision.action is EventKind.MERGE

    def test_adopt_respects_capacity(self):
        c = cache(capacity=30, alpha=0.0)
        c.request(frozenset({"p0", "p1"}))
        c.adopt(frozenset({"p2", "p3"}))  # 40 > 30: evicts the LRU image
        assert c.cached_bytes <= 30
        assert c.stats.deletes == 1

    def test_adopt_empty_rejected(self):
        with pytest.raises(ValueError):
            cache().adopt(frozenset())

    def test_adopt_participates_in_lru(self):
        c = cache(capacity=40, alpha=0.0)
        adopted = c.adopt(frozenset({"p0", "p1"}))
        c.request(frozenset({"p2", "p3"}))
        c.request(frozenset({"p4", "p5"}))  # evicts the adopted image (LRU)
        assert all(img.id != adopted.id for img in c.images)

    def test_snapshot_roundtrip_keeps_adoptions_counter(self):
        c = cache()
        c.adopt(frozenset({"p0"}))
        restored = cache()
        restored.restore(c.snapshot())
        assert restored.stats.adoptions == 1


class TestAdoptTracerEvictions:
    def test_adoption_evictions_reach_the_tracer(self):
        # regression: adopt() used to clear _pending_evictions without
        # handing them to an attached tracer, so capacity evictions an
        # adoption forced were silently untraceable.
        from repro.obs.trace import DecisionTracer

        tracer = DecisionTracer()
        c = cache(capacity=30, alpha=0.0, tracer=tracer)
        c.request(frozenset({"p0", "p1"}))
        c.adopt(frozenset({"p2", "p3"}))  # 40 > 30: evicts the LRU image
        assert c.stats.deletes == 1
        trace = tracer.trace(0)  # the last completed request
        assert trace is not None
        assert [ev.reason for ev in trace.evictions] == ["capacity"]
        assert trace.evictions[0].size == 20

    def test_pending_queue_left_empty_either_way(self):
        from repro.obs.trace import DecisionTracer

        for tracer in (None, DecisionTracer()):
            c = cache(capacity=30, alpha=0.0, tracer=tracer)
            c.request(frozenset({"p0", "p1"}))
            c.adopt(frozenset({"p2", "p3"}))
            assert c._pending_evictions == []

    def test_tracer_never_perturbs_adoption(self):
        from repro.obs.trace import DecisionTracer

        plain = cache(capacity=30, alpha=0.0)
        traced = cache(capacity=30, alpha=0.0, tracer=DecisionTracer())
        for c in (plain, traced):
            c.request(frozenset({"p0", "p1"}))
            c.adopt(frozenset({"p2", "p3"}))
        assert plain.snapshot() == traced.snapshot()
