"""Tests for repro.core.spec.ImageSpec."""

import pytest

from repro.core.spec import ImageSpec


class TestConstruction:
    def test_from_iterable_dedupes(self):
        spec = ImageSpec(["a/1", "b/1", "a/1"])
        assert len(spec) == 2

    def test_from_other_spec(self):
        a = ImageSpec(["x/1"])
        assert ImageSpec(a).packages == a.packages

    def test_empty(self):
        spec = ImageSpec()
        assert not spec and len(spec) == 0

    def test_rejects_non_string_ids(self):
        with pytest.raises(TypeError):
            ImageSpec([1, 2])

    def test_rejects_empty_string(self):
        with pytest.raises(TypeError):
            ImageSpec([""])

    def test_label_carried(self):
        assert ImageSpec(["a/1"], label="job-7").label == "job-7"


class TestSetBehaviour:
    def test_contains_and_iter(self):
        spec = ImageSpec(["a/1", "b/1"])
        assert "a/1" in spec
        assert sorted(spec) == ["a/1", "b/1"]

    def test_equality_with_spec_and_frozenset(self):
        assert ImageSpec(["a/1"]) == ImageSpec(["a/1"])
        assert ImageSpec(["a/1"]) == frozenset(["a/1"])
        assert ImageSpec(["a/1"]) != ImageSpec(["b/1"])

    def test_hashable_and_usable_as_key(self):
        d = {ImageSpec(["a/1"]): 1}
        assert d[ImageSpec(["a/1"])] == 1

    def test_label_does_not_affect_equality_or_hash(self):
        assert ImageSpec(["a/1"], label="x") == ImageSpec(["a/1"], label="y")
        assert hash(ImageSpec(["a/1"], label="x")) == hash(ImageSpec(["a/1"]))


class TestSatisfaction:
    def test_superset_satisfies(self):
        image = ImageSpec(["a/1", "b/1", "c/1"])
        assert image.satisfies(ImageSpec(["a/1", "c/1"]))

    def test_exact_match_satisfies(self):
        spec = ImageSpec(["a/1"])
        assert spec.satisfies(spec)

    def test_missing_package_fails(self):
        assert not ImageSpec(["a/1"]).satisfies(ImageSpec(["a/1", "b/1"]))

    def test_anything_satisfies_empty_request(self):
        assert ImageSpec(["a/1"]).satisfies(ImageSpec())
        assert ImageSpec().satisfies(ImageSpec())

    def test_ordering_operators(self):
        small, big = ImageSpec(["a/1"]), ImageSpec(["a/1", "b/1"])
        assert small <= big and big >= small
        assert not big <= small


class TestMergeAndSplit:
    def test_merge_is_union(self):
        merged = ImageSpec(["a/1"]).merge(ImageSpec(["b/1"]))
        assert merged == ImageSpec(["a/1", "b/1"])

    def test_merge_with_subset_returns_self_object(self):
        big = ImageSpec(["a/1", "b/1"])
        assert big.merge(ImageSpec(["a/1"])) is big

    def test_merge_labels_joined(self):
        merged = ImageSpec(["a/1"], label="x").merge(ImageSpec(["b/1"], label="y"))
        assert merged.label == "x+y"

    def test_or_operator(self):
        assert (ImageSpec(["a/1"]) | ImageSpec(["b/1"])) == ImageSpec(
            ["a/1", "b/1"]
        )

    def test_intersection_and_difference(self):
        a = ImageSpec(["x/1", "y/1"])
        b = ImageSpec(["y/1", "z/1"])
        assert (a & b) == ImageSpec(["y/1"])
        assert (a - b) == ImageSpec(["x/1"])

    def test_union_all(self):
        specs = [ImageSpec(["a/1"]), ImageSpec(["b/1"]), ImageSpec(["a/1", "c/1"])]
        assert ImageSpec.union_all(specs) == ImageSpec(["a/1", "b/1", "c/1"])

    def test_union_all_empty(self):
        assert ImageSpec.union_all([]) == ImageSpec()

    def test_repr_mentions_count_and_label(self):
        assert "2 pkgs" in repr(ImageSpec(["a/1", "b/1"], label="j"))
