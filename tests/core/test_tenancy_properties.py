"""Property-based isolation guarantees for MultiTenantLandlord.

The security property the paper's future work asks for, stated as an
invariant: under ``isolated`` custody, a tenant's cache never contains a
package that tenant did not (transitively) request; under ``public-core``,
the same holds for the private caches, and the shared cache only ever
holds public packages.
"""

from hypothesis import given, settings, strategies as st

from repro.core.tenancy import MultiTenantLandlord
from repro.packages.package import Package
from repro.packages.repository import Repository

# A small universe with explicit public core and private leaves.
PUBLIC = [f"core-{i}/1.0" for i in range(4)]
PRIVATE = [f"app-{i}/1.0" for i in range(10)]


def build_repo() -> Repository:
    packages = [Package(pid, 10) for pid in PUBLIC]
    for i, pid in enumerate(PRIVATE):
        deps = (PUBLIC[i % len(PUBLIC)],)
        packages.append(Package(pid, 10, deps=deps))
    return Repository(packages)


REPO = build_repo()

requests = st.lists(
    st.tuples(
        st.sampled_from(["alice", "bob", "carol"]),
        st.frozensets(st.sampled_from(PRIVATE + PUBLIC), min_size=1,
                      max_size=4),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(requests)
def test_isolated_caches_hold_only_own_requests(stream):
    landlord = MultiTenantLandlord(
        REPO, capacity=10_000, isolation="isolated",
        tenants=["alice", "bob", "carol"],
    )
    requested_by = {"alice": set(), "bob": set(), "carol": set()}
    for tenant, spec in stream:
        landlord.prepare(tenant, spec)
        requested_by[tenant] |= set(REPO.closure(spec))
    for tenant, allowed in requested_by.items():
        for image in landlord.cache_for(tenant).images:
            assert image.packages <= allowed, tenant


@settings(max_examples=60, deadline=None)
@given(requests)
def test_public_core_shared_cache_holds_only_public(stream):
    landlord = MultiTenantLandlord(
        REPO, capacity=10_000, isolation="public-core",
        tenants=["alice", "bob", "carol"],
        is_public=lambda pid: pid.startswith("core-"),
    )
    for tenant, spec in stream:
        landlord.prepare(tenant, spec)
    assert landlord.public_cache is not None
    for image in landlord.public_cache.images:
        assert all(pid.startswith("core-") for pid in image.packages)
    for tenant in ("alice", "bob", "carol"):
        for image in landlord.cache_for(tenant).images:
            assert not any(pid.startswith("core-") for pid in image.packages)


@settings(max_examples=60, deadline=None)
@given(requests)
def test_every_request_fully_served(stream):
    """Across all modes, the union of returned images covers the closure."""
    for isolation in ("shared", "isolated", "public-core"):
        landlord = MultiTenantLandlord(
            REPO, capacity=10_000, isolation=isolation,
            tenants=["alice", "bob", "carol"],
            is_public=lambda pid: pid.startswith("core-"),
        )
        for tenant, spec in stream:
            decision = landlord.prepare(tenant, spec)
            served = set()
            if decision.private is not None:
                served |= decision.private.image.packages
            if decision.public is not None:
                served |= decision.public.image.packages
            assert REPO.closure(spec) <= served
