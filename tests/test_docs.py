"""Documentation honesty checks.

The tutorial's code blocks must at least parse, README's CLI commands must
exist, and the experiment index in DESIGN.md must reference real bench
files — cheap guards against docs drifting from the code.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestTutorial:
    def test_python_blocks_parse(self):
        blocks = re.findall(r"```python\n(.*?)```", read("docs/TUTORIAL.md"),
                            re.S)
        assert len(blocks) >= 4
        for i, block in enumerate(blocks):
            compile(block, f"<tutorial-{i}>", "exec")

    def test_mentioned_modules_exist(self):
        import importlib

        text = read("docs/TUTORIAL.md")
        for module in re.findall(r"`(repro(?:\.\w+)+)`", text):
            name = module
            # strip trailing attribute if it's Class-like (capitalised)
            parts = name.split(".")
            while parts and parts[-1][:1].isupper():
                parts.pop()
            importlib.import_module(".".join(parts))


class TestReadme:
    def test_cli_commands_exist(self):
        import repro.cli as cli

        text = read("README.md")
        table_commands = re.findall(
            r"^\| `(fig\d|ablations|baselines|tenancy|federation|adaptive)` \|",
            text, re.M,
        )
        assert len(table_commands) >= 12
        for command in table_commands:
            assert command in cli._FIGURES, command

    def test_documented_examples_exist(self):
        text = read("README.md")
        for script in re.findall(r"`(\w+\.py)` \|", text):
            assert (ROOT / "examples" / script).exists(), script


class TestDesign:
    def test_bench_targets_exist(self):
        text = read("DESIGN.md")
        for bench in set(re.findall(r"`(benchmarks/\w+\.py)`", text)):
            assert (ROOT / bench).exists(), bench

    def test_mismatch_notice_absent(self):
        # DESIGN.md §0 requires flagging a paper-text mismatch; we verified
        # the text matches, so no mismatch notice should exist.
        assert "mismatch" not in read("DESIGN.md").split("\n\n")[0].lower()


class TestExperimentsDoc:
    def test_every_figure_section_present(self):
        text = read("EXPERIMENTS.md")
        for figure in range(1, 9):
            assert f"## Figure {figure}" in text

    def test_extension_sections_present(self):
        text = read("EXPERIMENTS.md")
        for section in ("Baselines", "Tenancy", "Federation", "Adaptive",
                        "Ablations"):
            assert section in text
