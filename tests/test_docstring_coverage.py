"""Quality gate: every public item in the library carries a docstring.

Deliverable (e) of the reproduction requires doc comments on every public
item; this test makes that a property of the codebase instead of a
point-in-time fact.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in vars(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        # only items defined in this package (not re-exported stdlib/numpy)
        defined_in = getattr(obj, "__module__", "") or ""
        if not defined_in.startswith("repro"):
            continue
        yield name, obj


def _all_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _all_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in _public_members(module):
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )
