"""Tests for repro.htc.trace."""

import json

import pytest

from repro.core.spec import ImageSpec
from repro.htc.job import Job
from repro.htc.trace import iter_trace, load_trace, save_trace


def jobs():
    return [
        Job("j0", ImageSpec(["a/1", "b/1"]), runtime_seconds=10.0, user="u0"),
        Job("j1", ImageSpec(["c/1"]), runtime_seconds=0.0, user=""),
    ]


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = save_trace(path, jobs())
        assert count == 2
        loaded = load_trace(path)
        assert [j.job_id for j in loaded] == ["j0", "j1"]
        assert loaded[0].packages == {"a/1", "b/1"}
        assert loaded[0].runtime_seconds == 10.0
        assert loaded[0].user == "u0"

    def test_packages_serialised_sorted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, jobs())
        record = json.loads(path.read_text().splitlines()[0])
        assert record["packages"] == sorted(record["packages"])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, jobs())
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 2


class TestValidation:
    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"job": "j0", "packages": ["a/1"]}\n{broken\n')
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"job": "j0"}\n')
        with pytest.raises(ValueError, match="missing required field"):
            load_trace(path)

    def test_packages_must_be_list(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"job": "j0", "packages": "a/1"}\n')
        with pytest.raises(ValueError, match="must be a list"):
            load_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_trace(tmp_path / "ghost.jsonl")


class TestReplaySemantics:
    def test_replay_preserves_cache_behaviour(self, tmp_path, small_sft):
        """A saved stream replayed through an identical cache produces
        identical statistics — the point of trace-driven simulation."""
        from repro.core.cache import LandlordCache
        from repro.htc.workload import DependencyWorkload, jobs_from_specs
        from repro.util.rng import spawn

        workload = DependencyWorkload(small_sft, 6)
        specs = workload.sample_specs(spawn(1, "t"), 10) * 2
        path = tmp_path / "t.jsonl"
        save_trace(path, jobs_from_specs(specs))

        def run(stream):
            cache = LandlordCache(10**12, 0.8, small_sft.size_of)
            for s in stream:
                cache.request(s)
            return cache.stats

        direct = run(specs)
        replayed = run([j.packages for j in iter_trace(path)])
        assert direct == replayed
