"""Statistical sanity checks on workload generation.

These lock in the distributions the paper's procedure implies: uniform
initial selections up to the maximum, closure-valid specs, and the random
scheme's count-matching construction.
"""

import numpy as np

from repro.htc.workload import DependencyWorkload, RandomWorkload
from repro.util.rng import spawn


class TestSelectionDistribution:
    def test_selection_sizes_span_full_range(self, small_sft):
        """Initial selection is 'up to 100 packages' uniformly: across many
        samples both very small and near-max selections must appear."""
        workload = DependencyWorkload(small_sft, max_selection=20)
        rng = spawn(0, "stat")
        # Infer selection-size behaviour through closure sizes: record the
        # minimum and maximum over many draws.
        sizes = [len(workload.sample(rng)) for _ in range(150)]
        assert min(sizes) < np.percentile(sizes, 20)
        assert max(sizes) > np.percentile(sizes, 80)

    def test_closure_sizes_grow_with_max_selection(self, small_sft):
        rng_small = spawn(1, "stat-a")
        rng_big = spawn(1, "stat-a")
        small = DependencyWorkload(small_sft, max_selection=5)
        big = DependencyWorkload(small_sft, max_selection=50)
        mean_small = np.mean([len(small.sample(rng_small)) for _ in range(40)])
        mean_big = np.mean([len(big.sample(rng_big)) for _ in range(40)])
        assert mean_big > 2 * mean_small


class TestRandomSchemeConstruction:
    def test_count_distribution_matches_dependency_scheme(self, small_sft):
        """The paper constructs random images with the *package count* of a
        dependency image; count distributions must therefore overlap."""
        dep = DependencyWorkload(small_sft, max_selection=15)
        rnd = RandomWorkload(small_sft, max_selection=15)
        dep_sizes = sorted(
            len(dep.sample(spawn(2, "d", i))) for i in range(60)
        )
        rnd_sizes = sorted(
            len(rnd.sample(spawn(2, "r", i))) for i in range(60)
        )
        # Same order of magnitude and overlapping ranges.
        assert rnd_sizes[0] <= dep_sizes[-1]
        assert dep_sizes[0] <= rnd_sizes[-1]
        assert 0.5 < np.median(rnd_sizes) / np.median(dep_sizes) < 2.0

    def test_random_specs_spread_over_whole_repository(self, small_sft):
        """Uniform choice must touch far more distinct packages than the
        dependency scheme, which concentrates on the shared core."""
        dep = DependencyWorkload(small_sft, max_selection=10)
        rnd = RandomWorkload(small_sft, max_selection=10)
        dep_union = set()
        rnd_union = set()
        for i in range(30):
            dep_union |= dep.sample(spawn(3, "d", i))
            rnd_union |= rnd.sample(spawn(3, "r", i))
        # dependency closures concentrate on core+frameworks; uniform
        # random draws cover strictly more of the long tail per spec byte.
        core_hits_dep = sum(1 for p in dep_union if p.startswith("core-"))
        core_hits_rnd = sum(1 for p in rnd_union if p.startswith("core-"))
        assert core_hits_dep >= core_hits_rnd
