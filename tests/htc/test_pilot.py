"""Tests for repro.htc.pilot."""

import pytest

from repro.htc.cluster import Site
from repro.htc.pilot import JobQueue, Pilot, PilotFactory
from repro.htc.workload import DependencyWorkload, jobs_from_specs
from repro.util.rng import spawn
from repro.util.units import GB


@pytest.fixture()
def site(small_sft):
    return Site("s0", small_sft, cache_bytes=40 * GB, n_workers=2,
                worker_scratch_bytes=30 * GB)


def make_jobs(repo, n=10):
    workload = DependencyWorkload(repo, max_selection=5)
    rng = spawn(8, "pilot-test")
    return jobs_from_specs(workload.sample_specs(rng, n), rng,
                           mean_runtime=30.0)


class TestJobQueue:
    def test_fifo_order(self, small_sft):
        jobs = make_jobs(small_sft, 3)
        queue = JobQueue(jobs)
        assert queue.pull() is jobs[0]
        assert queue.pull() is jobs[1]
        assert len(queue) == 1

    def test_pull_empty_returns_none(self):
        assert JobQueue().pull() is None

    def test_submit_appends(self, small_sft):
        queue = JobQueue()
        job = make_jobs(small_sft, 1)[0]
        queue.submit(job)
        assert queue.pull() is job


class TestPilot:
    def test_runs_until_queue_drains(self, site, small_sft):
        queue = JobQueue(make_jobs(small_sft, 5))
        pilot = Pilot("p0", site, site.workers[0])
        results = pilot.run(queue)
        assert len(results) == 5
        assert not queue
        assert pilot.retired

    def test_max_jobs_retires_pilot(self, site, small_sft):
        queue = JobQueue(make_jobs(small_sft, 5))
        pilot = Pilot("p0", site, site.workers[0], max_jobs=2)
        results = pilot.run(queue)
        assert len(results) == 2
        assert len(queue) == 3

    def test_walltime_retires_pilot(self, site, small_sft):
        queue = JobQueue(make_jobs(small_sft, 50))
        pilot = Pilot("p0", site, site.workers[0], walltime=60.0)
        results = pilot.run(queue)
        assert 0 < len(results) < 50

    def test_retired_pilot_cannot_rerun(self, site, small_sft):
        queue = JobQueue(make_jobs(small_sft, 1))
        pilot = Pilot("p0", site, site.workers[0])
        pilot.run(queue)
        with pytest.raises(RuntimeError):
            pilot.run(queue)

    def test_jobs_advance_worker_clock(self, site, small_sft):
        queue = JobQueue(make_jobs(small_sft, 3))
        worker = site.workers[0]
        Pilot("p0", site, worker).run(queue)
        assert worker.busy_until > 0
        assert worker.jobs_run == 3

    def test_landlord_reuse_across_pulled_jobs(self, site, small_sft):
        # the same spec queued twice: second pull is a hit at the site cache
        job = make_jobs(small_sft, 1)[0]
        queue = JobQueue([job, job])
        results = Pilot("p0", site, site.workers[0]).run(queue)
        assert results[0].action.value in ("insert", "merge")
        assert results[1].action.value == "hit"


class TestPilotFactory:
    def test_drains_queue_across_generations(self, site, small_sft):
        queue = JobQueue(make_jobs(small_sft, 12))
        factory = PilotFactory(site, max_jobs_per_pilot=2)
        summary = factory.drain(queue)
        assert summary.jobs == 12
        assert summary.jobs_left == 0
        # 12 jobs / 2 per pilot => at least 6 pilots
        assert summary.pilots_used >= 6

    def test_generation_cap_stops_runaway(self, site, small_sft):
        queue = JobQueue(make_jobs(small_sft, 10))
        factory = PilotFactory(site, max_jobs_per_pilot=0,
                               max_generations=3)
        summary = factory.drain(queue)
        assert summary.jobs == 0
        assert summary.jobs_left == 10

    def test_invalid_generations(self, site):
        with pytest.raises(ValueError):
            PilotFactory(site, max_generations=0)

    def test_results_site_and_worker_tagged(self, site, small_sft):
        summary = PilotFactory(site).drain(JobQueue(make_jobs(small_sft, 4)))
        assert all(r.site == "s0" for r in summary.results)
        assert all(r.worker.startswith("s0/w") for r in summary.results)
