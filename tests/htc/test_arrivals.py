"""Tests for repro.htc.arrivals."""

import numpy as np
import pytest

from repro.core.spec import ImageSpec
from repro.htc.arrivals import (
    assign_arrival_times,
    campaign_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
)
from repro.htc.job import Job


class TestPoisson:
    def test_count_and_monotone(self, rng):
        times = poisson_arrivals(rng, 500, rate_per_hour=60.0)
        assert times.shape == (500,)
        assert np.all(np.diff(times) >= 0)

    def test_rate_calibrated(self, rng):
        times = poisson_arrivals(rng, 20_000, rate_per_hour=120.0)
        realised = 20_000 / (times[-1] / 3600.0)
        assert 110 < realised < 130

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(rng, -1, 10)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 10, 0)

    def test_zero_jobs(self, rng):
        assert poisson_arrivals(rng, 0, 10).size == 0


class TestDiurnal:
    def test_sorted_and_sized(self, rng):
        times = diurnal_arrivals(rng, 1000, mean_rate_per_hour=50.0)
        assert times.shape == (1000,)
        assert np.all(np.diff(times) >= 0)

    def test_peak_hours_busier_than_trough(self, rng):
        times = diurnal_arrivals(
            rng, 50_000, mean_rate_per_hour=100.0,
            peak_to_trough=6.0, peak_hour=15.0,
        )
        hours = (times / 3600.0) % 24
        peak_count = np.sum((hours > 13) & (hours < 17))
        trough_count = np.sum((hours > 1) & (hours < 5))
        assert peak_count > 2 * trough_count

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            diurnal_arrivals(rng, 10, 10.0, peak_to_trough=0.5)


class TestCampaigns:
    def test_burstiness(self, rng):
        times = campaign_arrivals(rng, 2000, campaigns_per_day=4,
                                  jobs_per_campaign=100)
        gaps = np.diff(times)
        # bursty: many tiny gaps, a few huge ones
        assert np.median(gaps) < 60
        assert gaps.max() > 3600

    def test_sorted(self, rng):
        times = campaign_arrivals(rng, 500)
        assert np.all(np.diff(times) >= 0)


class TestAssign:
    def test_pairs_sorted_by_time(self):
        jobs = [Job(f"j{i}", ImageSpec([f"p{i}/1"])) for i in range(3)]
        paired = assign_arrival_times(jobs, [30.0, 10.0, 20.0])
        assert [t for t, _ in paired] == [10.0, 20.0, 30.0]
        assert paired[0][1].job_id == "j1"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            assign_arrival_times([], [1.0])
