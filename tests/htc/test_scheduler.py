"""Tests for repro.htc.scheduler."""

import pytest

from repro.htc.cluster import Cluster, Site
from repro.htc.scheduler import Scheduler
from repro.htc.workload import DependencyWorkload, jobs_from_specs
from repro.util.rng import spawn
from repro.util.units import GB


@pytest.fixture()
def cluster(small_sft):
    return Cluster(
        [
            Site(f"s{i}", small_sft, cache_bytes=30 * GB, n_workers=2,
                 worker_scratch_bytes=20 * GB)
            for i in range(2)
        ]
    )


def make_jobs(repo, n=12, user="u"):
    workload = DependencyWorkload(repo, max_selection=5)
    rng = spawn(3, "sched-test", user)
    specs = workload.sample_specs(rng, n)
    return jobs_from_specs(specs, rng, mean_runtime=60.0, user=user)


class TestScheduler:
    def test_all_jobs_complete(self, cluster, small_sft):
        jobs = make_jobs(small_sft)
        summary = Scheduler(cluster).run(jobs)
        assert summary.jobs == len(jobs)
        assert summary.makespan > 0
        assert summary.throughput_jobs_per_hour > 0

    def test_round_robin_spreads_sites(self, cluster, small_sft):
        jobs = make_jobs(small_sft)
        summary = Scheduler(cluster, "round_robin").run(jobs)
        sites = {r.site for r in summary.results}
        assert sites == {"s0", "s1"}

    def test_sticky_user_pins_to_one_site(self, cluster, small_sft):
        jobs = make_jobs(small_sft, user="alice")
        summary = Scheduler(cluster, "sticky_user").run(jobs)
        assert len({r.site for r in summary.results}) == 1

    def test_least_loaded_balances(self, cluster, small_sft):
        jobs = make_jobs(small_sft, n=16)
        summary = Scheduler(cluster, "least_loaded").run(jobs)
        per_site = {}
        for r in summary.results:
            per_site[r.site] = per_site.get(r.site, 0) + 1
        assert min(per_site.values()) > 0

    def test_unknown_policy_rejected(self, cluster):
        with pytest.raises(ValueError):
            Scheduler(cluster, "chaos")

    def test_by_action_counts_total(self, cluster, small_sft):
        jobs = make_jobs(small_sft)
        summary = Scheduler(cluster).run(jobs)
        assert sum(summary.by_action().values()) == len(jobs)

    def test_overhead_fraction_bounded(self, cluster, small_sft):
        summary = Scheduler(cluster).run(make_jobs(small_sft))
        assert 0.0 <= summary.overhead_fraction <= 1.0

    def test_repeated_submissions_become_cheap(self, cluster, small_sft):
        jobs = make_jobs(small_sft, n=4)
        scheduler = Scheduler(cluster, "sticky_user")
        scheduler.run(jobs)
        second = scheduler.run(jobs)  # same specs again
        assert all(r.action.value == "hit" for r in second.results)
        assert all(r.prep_seconds == 0 for r in second.results)

    def test_empty_job_list(self, cluster):
        summary = Scheduler(cluster).run([])
        assert summary.jobs == 0
        assert summary.throughput_jobs_per_hour == 0.0
