"""Tests for repro.htc.workload — the paper's two request schemes."""

import numpy as np
import pytest

from repro.htc.workload import (
    DependencyWorkload,
    RandomWorkload,
    build_stream,
    jobs_from_specs,
)
from repro.packages.repository import Repository
from repro.packages.package import Package


class TestDependencyWorkload:
    def test_samples_are_dependency_closed(self, small_sft, rng):
        workload = DependencyWorkload(small_sft, max_selection=10)
        for _ in range(10):
            spec = workload.sample(rng)
            for pid in spec:
                for dep in small_sft[pid].deps:
                    assert dep in spec

    def test_selection_bounded(self, small_sft, rng):
        workload = DependencyWorkload(small_sft, max_selection=5)
        # selections up to 5 packages expand by closure, so specs are small
        # but at least 1 package.
        for _ in range(10):
            assert 1 <= len(workload.sample(rng))

    def test_max_selection_clamped_to_repo(self, tiny_repo, rng):
        workload = DependencyWorkload(tiny_repo, max_selection=10**6)
        assert workload.max_selection == len(tiny_repo)

    def test_invalid_max_selection(self, tiny_repo):
        with pytest.raises(ValueError):
            DependencyWorkload(tiny_repo, max_selection=0)

    def test_empty_repo_rejected(self):
        with pytest.raises(ValueError):
            DependencyWorkload(Repository([]))

    def test_deterministic_given_rng(self, small_sft):
        a = DependencyWorkload(small_sft).sample(np.random.default_rng(3))
        b = DependencyWorkload(small_sft).sample(np.random.default_rng(3))
        assert a == b


class TestRandomWorkload:
    def test_sizes_match_dependency_scheme_distribution(self, small_sft):
        # The paper: random images take their *count* from a dep-scheme
        # image; sizes should therefore be in the same range.
        dep_sizes = [
            len(DependencyWorkload(small_sft, 10).sample(np.random.default_rng(i)))
            for i in range(20)
        ]
        rnd_sizes = [
            len(RandomWorkload(small_sft, 10).sample(np.random.default_rng(i)))
            for i in range(20)
        ]
        assert min(dep_sizes) <= np.median(rnd_sizes) <= max(dep_sizes)

    def test_random_contents_not_closed(self, small_sft, rng):
        # With overwhelming probability a uniform-random spec violates
        # dependency closure somewhere across 10 draws.
        workload = RandomWorkload(small_sft, max_selection=20)
        violations = 0
        for _ in range(10):
            spec = workload.sample(rng)
            for pid in spec:
                if any(dep not in spec for dep in small_sft[pid].deps):
                    violations += 1
                    break
        assert violations > 0


class TestBuildStream:
    def test_length_and_repetition(self, small_sft, rng):
        workload = DependencyWorkload(small_sft, 5)
        stream = build_stream(workload, rng, n_unique=10, repeats=3)
        assert len(stream) == 30
        # every unique spec appears exactly `repeats` times
        from collections import Counter

        counts = Counter(stream)
        assert all(c == 3 for c in counts.values())

    def test_repeats_share_object_identity(self, small_sft, rng):
        stream = build_stream(
            DependencyWorkload(small_sft, 5), rng, n_unique=3, repeats=2,
            shuffle=False,
        )
        assert stream[0] is stream[1]

    def test_shuffle_changes_order(self, small_sft):
        workload = DependencyWorkload(small_sft, 5)
        plain = build_stream(workload, np.random.default_rng(1), 20, 3,
                             shuffle=False)
        mixed = build_stream(workload, np.random.default_rng(1), 20, 3,
                             shuffle=True)
        assert sorted(map(sorted, plain)) == sorted(map(sorted, mixed))
        assert plain != mixed

    def test_invalid_parameters(self, small_sft, rng):
        workload = DependencyWorkload(small_sft, 5)
        with pytest.raises(ValueError):
            build_stream(workload, rng, n_unique=0)
        with pytest.raises(ValueError):
            build_stream(workload, rng, repeats=0)


class TestJobsFromSpecs:
    def test_wraps_with_ids_and_runtimes(self, rng):
        jobs = jobs_from_specs([frozenset({"a/1"}), frozenset({"b/1"})],
                               rng, mean_runtime=10.0, user="u1")
        assert [j.job_id for j in jobs] == ["job-000000", "job-000001"]
        assert all(j.runtime_seconds >= 0 for j in jobs)
        assert all(j.user == "u1" for j in jobs)

    def test_no_rng_zero_runtime(self):
        jobs = jobs_from_specs([frozenset({"a/1"})])
        assert jobs[0].runtime_seconds == 0.0
