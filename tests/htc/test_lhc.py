"""Tests for repro.htc.lhc — the Figure 2 benchmark suite."""

import pytest

from repro.htc.lhc import (
    EXPERIMENT_REPO_BYTES,
    PAPER_BENCHMARKS,
    build_experiment_repository,
    build_lhc_suite,
    select_spec_for_size,
)
from repro.util.units import GB


class TestPaperConstants:
    def test_seven_benchmarks(self):
        assert len(PAPER_BENCHMARKS) == 7

    def test_experiments_covered(self):
        assert {b.experiment for b in PAPER_BENCHMARKS} == set(
            EXPERIMENT_REPO_BYTES
        )

    def test_figure2_values_spotcheck(self):
        atlas_sim = next(b for b in PAPER_BENCHMARKS if b.name == "atlas-sim")
        assert atlas_sim.running_seconds == 5340
        assert atlas_sim.prep_seconds == 115
        assert atlas_sim.minimal_image_bytes == int(7.6 * GB)


class TestExperimentRepository:
    def test_total_size_near_paper(self):
        repo = build_experiment_repository("alice", seed=1, n_packages=800)
        target = EXPERIMENT_REPO_BYTES["alice"]
        assert abs(repo.total_size - target) / target < 0.25

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            build_experiment_repository("babar")

    def test_too_few_packages_rejected(self):
        with pytest.raises(ValueError):
            build_experiment_repository("alice", n_packages=100)


class TestSelectSpecForSize:
    def test_hits_target_within_tolerance(self):
        repo = build_experiment_repository("lhcb", seed=2, n_packages=800)
        target = 4 * GB
        selection, closure = select_spec_for_size(repo, target, seed=3)
        size = repo.bytes_of(closure)
        assert 0.5 * target <= size <= 1.3 * target
        assert selection <= closure

    def test_closure_is_closed(self):
        repo = build_experiment_repository("lhcb", seed=2, n_packages=800)
        _, closure = select_spec_for_size(repo, 4 * GB, seed=3)
        assert repo.closure(closure) == closure

    def test_bad_prefix_rejected(self, tiny_repo):
        with pytest.raises(ValueError):
            select_spec_for_size(tiny_repo, 100, candidate_prefix="nope-")


class TestSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        return build_lhc_suite(seed=1, n_packages=800)

    def test_all_apps_modelled(self, suite):
        assert [a.name for a in suite.apps] == [
            b.name for b in PAPER_BENCHMARKS
        ]

    def test_image_sizes_near_paper(self, suite):
        for app in suite.apps:
            paper = app.paper.minimal_image_bytes
            assert abs(app.image_bytes - paper) / paper < 0.5, app.name

    def test_prep_times_same_order_of_magnitude(self, suite):
        for app in suite.apps:
            assert app.measured_prep_seconds < 10 * app.paper.prep_seconds
            assert app.measured_prep_seconds > app.paper.prep_seconds / 10

    def test_app_lookup(self, suite):
        assert suite.app("cms-reco").experiment == "cms"
        with pytest.raises(KeyError):
            suite.app("ghost-app")

    def test_repository_for(self, suite):
        app = suite.app("alice-gen-sim")
        assert suite.repository_for(app) is suite.repositories["alice"]

    def test_runtime_passthrough(self, suite):
        assert suite.app("atlas-gen").runtime_seconds == 600
