"""Tests for repro.htc.cluster."""

import pytest

from repro.htc.cluster import Cluster, Site, WorkerNode
from repro.util.units import GB


@pytest.fixture()
def site(small_sft):
    return Site(
        name="s0",
        repository=small_sft,
        cache_bytes=20 * GB,
        alpha=0.8,
        n_workers=2,
        worker_scratch_bytes=10 * GB,
        transfer_bw=1 * GB,
    )


class TestSite:
    def test_workers_created(self, site):
        assert len(site.workers) == 2
        assert site.workers[0].name == "s0/w0"

    def test_needs_workers(self, small_sft):
        with pytest.raises(ValueError):
            Site("s", small_sft, 1 * GB, n_workers=0)

    def test_positive_transfer_bw(self, small_sft):
        with pytest.raises(ValueError):
            Site("s", small_sft, 1 * GB, transfer_bw=0)

    def test_place_transfers_then_caches(self, site, small_sft):
        prepared = site.landlord.prepare([small_sft.ids[0]])
        worker, t1 = site.place(prepared, site.workers[0])
        assert t1 > 0
        _, t2 = site.place(prepared, site.workers[0])
        assert t2 == 0.0  # already on the worker

    def test_merged_image_is_new_artifact_version(self, site, small_sft):
        apps = [i for i in small_sft.ids if i.startswith("app-")]
        first = site.landlord.prepare([apps[0]])
        site.place(first, site.workers[0])
        second = site.landlord.prepare([apps[1]])
        if second.action.value == "merge":
            # the rewritten image must be re-transferred
            _, t = site.place(second, site.workers[0])
            assert t > 0

    def test_oversized_image_streams_without_caching(self, small_sft):
        site = Site("s", small_sft, cache_bytes=50 * GB, n_workers=1,
                    worker_scratch_bytes=1, transfer_bw=1 * GB)
        prepared = site.landlord.prepare([small_sft.ids[0]])
        worker, t = site.place(prepared)
        assert t > 0
        assert len(worker.scratch) == 0
        # streamed again next time, same cost
        _, t2 = site.place(prepared, worker)
        assert t2 == pytest.approx(t)

    def test_least_busy_worker(self, site):
        site.workers[0].busy_until = 100.0
        assert site.least_busy_worker() is site.workers[1]


class TestCluster:
    def test_unique_site_names_required(self, small_sft):
        sites = [Site("x", small_sft, GB), Site("x", small_sft, GB)]
        with pytest.raises(ValueError):
            Cluster(sites)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_site_lookup(self, small_sft):
        cluster = Cluster([Site("a", small_sft, GB), Site("b", small_sft, GB)])
        assert cluster.site("b").name == "b"
        with pytest.raises(KeyError):
            cluster.site("c")

    def test_total_cached_bytes(self, small_sft):
        cluster = Cluster([Site("a", small_sft, 20 * GB)])
        cluster.site("a").landlord.prepare([small_sft.ids[0]])
        assert cluster.total_cached_bytes > 0


class TestWorkerNode:
    def test_create_factory(self):
        worker = WorkerNode.create("w", scratch_bytes=5)
        assert worker.scratch.capacity == 5
        assert worker.busy_until == 0.0
