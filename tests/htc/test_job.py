"""Tests for repro.htc.job."""

import pytest

from repro.core.events import EventKind
from repro.core.spec import ImageSpec
from repro.htc.job import Job, JobResult


def job(runtime=100.0):
    return Job("j1", ImageSpec(["a/1"]), runtime_seconds=runtime, user="u")


class TestJob:
    def test_packages_view(self):
        assert job().packages == {"a/1"}

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            job(runtime=-1)

    def test_frozen(self):
        j = job()
        with pytest.raises(Exception):
            j.user = "other"


class TestJobResult:
    def result(self, prep=20.0, transfer=5.0, runtime=100.0):
        return JobResult(
            job=job(runtime),
            action=EventKind.INSERT,
            image_id="img-0",
            image_bytes=1000,
            requested_bytes=800,
            prep_seconds=prep,
            transfer_seconds=transfer,
        )

    def test_total_seconds(self):
        assert self.result().total_seconds == 125.0

    def test_overhead_fraction(self):
        assert self.result().overhead_fraction == pytest.approx(25 / 125)

    def test_zero_everything(self):
        r = JobResult(
            job=job(runtime=0.0), action=EventKind.HIT, image_id="i",
            image_bytes=0, requested_bytes=0, prep_seconds=0.0,
        )
        assert r.total_seconds == 0.0
        assert r.overhead_fraction == 0.0
