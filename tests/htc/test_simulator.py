"""Tests for repro.htc.simulator."""

import numpy as np
import pytest

from repro.core.cache import LandlordCache
from repro.htc.simulator import (
    SimulationConfig,
    make_workload,
    simulate,
    simulate_stream,
)
from repro.util.units import GB


def tiny_config(**kw):
    base = dict(
        alpha=0.75,
        capacity=20 * GB,
        n_unique=25,
        repeats=3,
        max_selection=8,
        n_packages=300,
        repo_total_size=10 * GB,
        seed=5,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestSimulate:
    def test_request_count(self):
        result = simulate(tiny_config())
        assert result.requests == 75

    def test_deterministic(self):
        a = simulate(tiny_config()).summary()
        b = simulate(tiny_config()).summary()
        assert a == b

    def test_seed_changes_results(self):
        a = simulate(tiny_config()).summary()
        b = simulate(tiny_config(seed=6)).summary()
        assert a != b

    def test_timeline_lengths(self):
        result = simulate(tiny_config())
        for series in result.timeline.values():
            assert len(series) == 75

    def test_timeline_monotone_cumulative_counters(self):
        result = simulate(tiny_config())
        for name in ("hits", "inserts", "merges", "deletes",
                     "bytes_written", "requested_bytes"):
            series = result.timeline[name]
            assert np.all(np.diff(series) >= 0), name

    def test_no_timeline_when_disabled(self):
        result = simulate(tiny_config(record_timeline=False))
        assert result.timeline == {}

    def test_summary_keys_stable(self):
        summary = simulate(tiny_config()).summary()
        assert {"hits", "merges", "inserts", "deletes", "cache_efficiency",
                "container_efficiency", "bytes_written",
                "write_amplification"} <= set(summary)

    def test_efficiencies_in_range(self):
        result = simulate(tiny_config())
        assert 0 <= result.cache_efficiency <= 1
        assert 0 <= result.container_efficiency <= 1

    def test_random_scheme(self):
        result = simulate(tiny_config(scheme="random"))
        assert result.requests == 75

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            simulate(tiny_config(scheme="astrology"))

    def test_config_with_(self):
        cfg = tiny_config()
        assert cfg.with_(alpha=0.5).alpha == 0.5
        assert cfg.alpha == 0.75  # original untouched

    def test_prebuilt_repository_reused(self, small_sft):
        cfg = tiny_config(n_packages=len(small_sft))
        result = simulate(cfg, repository=small_sft)
        assert result.requests == 75


class TestSimulateStream:
    def test_drives_existing_cache(self, tiny_repo):
        cache = LandlordCache(1000, 0.8, tiny_repo.size_of)
        stream = [frozenset({"base/1.0"}), frozenset({"libA/1.0", "base/1.0"})]
        result = simulate_stream(cache, stream)
        assert result.stats.requests == 2
        assert len(result.timeline["hits"]) == 2

    def test_cache_state_visible_after(self, tiny_repo):
        cache = LandlordCache(1000, 0.8, tiny_repo.size_of)
        simulate_stream(cache, [frozenset({"base/1.0"})])
        assert len(cache) == 1

    def test_batched_dispatch_matches_sequential(self, tiny_repo):
        stream = [
            frozenset({"base/1.0"}),
            frozenset({"libA/1.0", "base/1.0"}),
            frozenset({"libB/1.0"}),
            frozenset({"base/1.0"}),
        ] * 4
        caches = {
            mode: LandlordCache(1000, 0.8, tiny_repo.size_of)
            for mode in (0, 2, "auto")
        }
        summaries = {}
        for mode, cache in caches.items():
            result = simulate_stream(
                cache, stream, record_timeline=False, batch_size=mode
            )
            summaries[mode] = result.summary()
        assert summaries[0] == summaries[2] == summaries["auto"]
        assert caches[0].snapshot() == caches["auto"].snapshot()
        assert caches["auto"].last_batch_governor is not None

    def test_bad_batch_size_rejected(self, tiny_repo):
        cache = LandlordCache(1000, 0.8, tiny_repo.size_of)
        with pytest.raises(ValueError):
            simulate_stream(cache, [frozenset({"base/1.0"})],
                            batch_size="turbo")

    def test_config_batch_size_auto(self):
        result = simulate(tiny_config(batch_size="auto",
                                      record_timeline=False))
        sequential = simulate(tiny_config(record_timeline=False))
        assert result.summary() == sequential.summary()


class TestMakeWorkload:
    def test_scheme_dispatch(self, small_sft):
        from repro.htc.workload import DependencyWorkload, RandomWorkload

        assert isinstance(
            make_workload(tiny_config(scheme="deps"), small_sft),
            DependencyWorkload,
        )
        assert isinstance(
            make_workload(tiny_config(scheme="random"), small_sft),
            RandomWorkload,
        )
