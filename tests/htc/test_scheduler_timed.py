"""Tests for time-aware scheduling (arrivals + run_timed)."""

import pytest

from repro.htc.arrivals import assign_arrival_times, poisson_arrivals
from repro.htc.cluster import Cluster, Site
from repro.htc.scheduler import Scheduler
from repro.htc.workload import DependencyWorkload, jobs_from_specs
from repro.util.rng import spawn
from repro.util.units import GB


@pytest.fixture()
def cluster(small_sft):
    return Cluster(
        [Site("s0", small_sft, cache_bytes=30 * GB, n_workers=2,
              worker_scratch_bytes=20 * GB)]
    )


def make_jobs(repo, n=6):
    workload = DependencyWorkload(repo, max_selection=4)
    rng = spawn(2, "timed")
    return jobs_from_specs(workload.sample_specs(rng, n), rng,
                           mean_runtime=10.0)


class TestRunTimed:
    def test_jobs_wait_for_submit_time(self, cluster, small_sft):
        jobs = make_jobs(small_sft, 2)
        late = 10_000.0
        summary = Scheduler(cluster).run_timed(
            [(0.0, jobs[0]), (late, jobs[1])]
        )
        assert summary.makespan >= late

    def test_untimed_run_equals_zero_submit_times(self, cluster, small_sft):
        jobs = make_jobs(small_sft, 4)
        a = Scheduler(Cluster([Site("x", small_sft, 30 * GB)])).run(jobs)
        b = Scheduler(Cluster([Site("x", small_sft, 30 * GB)])).run_timed(
            [(0.0, j) for j in jobs]
        )
        assert a.makespan == b.makespan
        assert a.by_action() == b.by_action()

    def test_sparse_arrivals_lower_throughput(self, cluster, small_sft):
        jobs = make_jobs(small_sft, 6)
        rng = spawn(3, "sparse")
        times = poisson_arrivals(rng, len(jobs), rate_per_hour=2.0)
        timed = assign_arrival_times(jobs, times)
        sparse = Scheduler(cluster).run_timed(timed)
        dense_cluster = Cluster(
            [Site("s0", small_sft, cache_bytes=30 * GB, n_workers=2,
                  worker_scratch_bytes=20 * GB)]
        )
        dense = Scheduler(dense_cluster).run(jobs)
        assert sparse.makespan > dense.makespan
        assert (
            sparse.throughput_jobs_per_hour < dense.throughput_jobs_per_hour
        )
