"""simulate_stream is duck-typed: any ImageProvider can be simulated."""

import pytest

from repro.core.policies import (
    ExactLRUPolicy,
    FullRepoPolicy,
    NoCachePolicy,
    SingleImagePolicy,
)
from repro.htc.simulator import simulate_stream
from repro.htc.workload import DependencyWorkload, build_stream
from repro.util.rng import spawn
from repro.util.units import GB


@pytest.fixture(scope="module")
def stream(small_sft):
    workload = DependencyWorkload(small_sft, max_selection=6)
    return build_stream(workload, spawn(4, "pol-sim"), n_unique=15,
                        repeats=2)


class TestSimulatePolicies:
    def test_exact_lru(self, small_sft, stream):
        result = simulate_stream(
            ExactLRUPolicy(50 * GB, small_sft.size_of), stream
        )
        assert result.stats.requests == len(stream)
        assert result.stats.merges == 0

    def test_single_image(self, small_sft, stream):
        result = simulate_stream(SingleImagePolicy(small_sft.size_of), stream)
        assert result.n_images == 1
        assert result.cache_efficiency == 1.0

    def test_full_repo(self, small_sft, stream):
        result = simulate_stream(
            FullRepoPolicy(small_sft.ids, small_sft.size_of), stream
        )
        assert result.stats.hit_rate == 1.0
        assert result.n_images == 1

    def test_no_cache(self, small_sft, stream):
        result = simulate_stream(NoCachePolicy(small_sft.size_of), stream)
        assert result.stats.bytes_written == result.stats.requested_bytes
        assert result.n_images == 0

    def test_timelines_recorded_for_all(self, small_sft, stream):
        for provider in (
            ExactLRUPolicy(50 * GB, small_sft.size_of),
            SingleImagePolicy(small_sft.size_of),
            NoCachePolicy(small_sft.size_of),
        ):
            result = simulate_stream(provider, stream)
            assert len(result.timeline["hits"]) == len(stream)
