"""Tests for UserDriftWorkload (temporally correlated specs)."""

import numpy as np
import pytest

from repro.core.similarity import jaccard_distance
from repro.htc.workload import DependencyWorkload, UserDriftWorkload


class TestUserDriftWorkload:
    def test_successive_samples_are_close(self, small_sft, rng):
        workload = UserDriftWorkload(small_sft, max_selection=10, drift=0.2)
        previous = workload.sample(rng)
        distances = []
        for _ in range(8):
            current = workload.sample(rng)
            distances.append(jaccard_distance(previous, current))
            previous = current
        assert np.median(distances) < 0.6

    def test_closer_than_independent_draws(self, small_sft):
        drift = UserDriftWorkload(small_sft, max_selection=10, drift=0.2)
        indep = DependencyWorkload(small_sft, max_selection=10)
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
        drift_specs = [drift.sample(rng_a) for _ in range(10)]
        indep_specs = [indep.sample(rng_b) for _ in range(10)]

        def consecutive(specs):
            return np.median(
                [jaccard_distance(a, b) for a, b in zip(specs, specs[1:])]
            )

        assert consecutive(drift_specs) < consecutive(indep_specs)

    def test_session_restart_breaks_correlation(self, small_sft, rng):
        workload = UserDriftWorkload(
            small_sft, max_selection=10, drift=0.1, session_length=3
        )
        specs = [workload.sample(rng) for _ in range(6)]
        within = jaccard_distance(specs[1], specs[2])
        across = jaccard_distance(specs[2], specs[3])  # session boundary
        # statistically the boundary jump dominates; allow rare ties
        assert across >= within or across > 0.5

    def test_samples_are_closed(self, small_sft, rng):
        workload = UserDriftWorkload(small_sft, max_selection=8)
        for _ in range(5):
            spec = workload.sample(rng)
            assert small_sft.closure(spec) == spec

    def test_parameter_validation(self, small_sft):
        with pytest.raises(ValueError):
            UserDriftWorkload(small_sft, drift=1.5)
        with pytest.raises(ValueError):
            UserDriftWorkload(small_sft, session_length=0)

    def test_drift_workload_merges_more_than_independent(self, small_sft):
        from repro.core.cache import LandlordCache
        from repro.util.units import GB

        def run(scheme_cls):
            workload = scheme_cls(small_sft, max_selection=8)
            rng = np.random.default_rng(5)
            cache = LandlordCache(30 * GB, 0.6, small_sft.size_of)
            for _ in range(60):
                cache.request(workload.sample(rng))
            return cache.stats.hits + cache.stats.merges

        assert run(UserDriftWorkload) > run(DependencyWorkload)
