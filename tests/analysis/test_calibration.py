"""Tests for repro.analysis.calibration — the substitution's guard rails."""

import pytest

from repro.analysis.calibration import (
    CalibrationReport,
    calibration_report,
    closure_amplification,
    core_concentration,
    spec_distance_profile,
)
from repro.packages.sft import build_experiment_repository
from repro.util.units import GB


class TestClosureAmplification:
    def test_sft_amplifies_small_selections(self, small_sft):
        amp = closure_amplification(small_sft, selection_size=6, trials=15)
        assert amp > 2.0

    def test_amplification_fades_with_size(self, small_sft):
        small = closure_amplification(small_sft, 6, trials=15)
        large = closure_amplification(small_sft, 60, trials=15)
        assert large < small

    def test_flat_repo_has_no_amplification(self):
        flat = build_experiment_repository(
            "flat", seed=1, n_packages=200, target_total_size=GB
        )
        assert closure_amplification(flat, 10, trials=10) == 1.0

    def test_invalid_selection_size(self, small_sft):
        with pytest.raises(ValueError):
            closure_amplification(small_sft, 0)
        with pytest.raises(ValueError):
            closure_amplification(small_sft, len(small_sft) + 1)


class TestCoreConcentration:
    def test_sft_concentrated(self, small_sft):
        assert core_concentration(small_sft) > 0.15

    def test_sft_more_concentrated_than_random(self, small_sft,
                                                small_random_repo):
        assert core_concentration(small_sft) > core_concentration(
            small_random_repo
        )

    def test_flat_repo_scores_zero(self):
        flat = build_experiment_repository(
            "flat", seed=1, n_packages=100, target_total_size=GB
        )
        assert core_concentration(flat) == 0.0

    def test_top_fraction_validation(self, small_sft):
        with pytest.raises(ValueError):
            core_concentration(small_sft, top_fraction=0.0)


class TestDistanceProfile:
    def test_percentiles_ordered(self, small_sft):
        profile = spec_distance_profile(small_sft, max_selection=8,
                                        n_specs=15)
        assert (
            profile["p05"] <= profile["p25"] <= profile["p50"]
            <= profile["p75"] <= profile["p95"]
        )

    def test_distances_in_unit_interval(self, small_sft):
        profile = spec_distance_profile(small_sft, max_selection=8,
                                        n_specs=15)
        assert 0.0 <= profile["p05"] and profile["p95"] <= 1.0

    def test_profile_explains_merge_onset(self, small_sft):
        """Merging turns on in the α sweeps roughly where the distance
        profile's lower percentiles sit — the calibration story."""
        profile = spec_distance_profile(small_sft, max_selection=8,
                                        n_specs=20)
        assert 0.4 < profile["p05"] < 1.0


class TestReport:
    def test_bundles_everything(self, small_sft):
        report = calibration_report(small_sft)
        assert isinstance(report, CalibrationReport)
        assert report.packages == len(small_sft)
        assert report.amplification_small > report.amplification_large
        assert len(report.lines()) == 5

    def test_deterministic(self, small_sft):
        assert calibration_report(small_sft) == calibration_report(small_sft)
