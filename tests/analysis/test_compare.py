"""Tests for repro.analysis.compare."""

import numpy as np
import pytest

from repro.analysis.compare import compare_sweeps
from repro.analysis.sweep import SweepResult


def sweep(alphas, **series):
    return SweepResult(
        alphas=np.asarray(alphas, dtype=float),
        series={k: np.asarray(v, dtype=float) for k, v in series.items()},
    )


class TestCompareSweeps:
    def test_identical_sweeps_zero_delta(self):
        a = sweep([0.4, 0.8], hits=[10, 20], merges=[0, 5])
        comparison = compare_sweeps(a, a)
        assert comparison.within(0.0)
        assert np.all(comparison.delta("hits").absolute == 0)

    def test_deltas_signed_b_minus_a(self):
        a = sweep([0.4, 0.8], hits=[10, 20])
        b = sweep([0.4, 0.8], hits=[15, 10])
        d = compare_sweeps(a, b).delta("hits")
        assert list(d.absolute) == [5, -10]
        assert d.relative[0] == pytest.approx(0.5)
        assert d.max_relative == pytest.approx(0.5)

    def test_grid_alignment_uses_intersection(self):
        a = sweep([0.4, 0.6, 0.8], hits=[1, 2, 3])
        b = sweep([0.6, 0.8, 1.0], hits=[2, 4, 9])
        comparison = compare_sweeps(a, b)
        d = comparison.delta("hits")
        assert list(d.alphas) == [0.6, 0.8]
        assert list(d.absolute) == [0, 1]

    def test_disjoint_grids_rejected(self):
        a = sweep([0.4], hits=[1])
        b = sweep([0.9], hits=[1])
        with pytest.raises(ValueError, match="no alpha grid"):
            compare_sweeps(a, b)

    def test_only_shared_metrics_compared(self):
        a = sweep([0.5], hits=[1], merges=[2])
        b = sweep([0.5], hits=[1], deletes=[3])
        comparison = compare_sweeps(a, b)
        assert sorted(comparison.deltas) == ["hits"]
        with pytest.raises(KeyError):
            comparison.delta("merges")

    def test_zero_vs_zero_relative_is_zero(self):
        a = sweep([0.5], merges=[0])
        b = sweep([0.5], merges=[0])
        assert compare_sweeps(a, b).delta("merges").max_relative == 0.0

    def test_within_tolerance_gate(self):
        a = sweep([0.5], hits=[100])
        b = sweep([0.5], hits=[104])
        comparison = compare_sweeps(a, b)
        assert comparison.within(0.05)
        assert not comparison.within(0.03)

    def test_table_renders(self):
        a = sweep([0.4, 0.8], hits=[10, 20])
        b = sweep([0.4, 0.8], hits=[12, 18])
        out = compare_sweeps(a, b, "lru", "tuned").table(["hits"])
        assert "lru" in out and "tuned" in out
        assert "+20.0%" in out and "-10.0%" in out

    def test_as_regression_gate_on_real_sweeps(self, small_sft):
        """Two identical configurations must compare within zero tolerance."""
        from repro.analysis.sweep import alpha_sweep
        from repro.htc.simulator import SimulationConfig
        from repro.util.units import GB

        config = SimulationConfig(
            capacity=90 * GB, n_unique=20, repeats=3, max_selection=6,
            n_packages=600, repo_total_size=45 * GB, seed=9,
        )
        a = alpha_sweep(config, alphas=[0.5, 0.8], repetitions=2,
                        repository=small_sft)
        b = alpha_sweep(config, alphas=[0.5, 0.8], repetitions=2,
                        repository=small_sft)
        assert compare_sweeps(a, b).within(0.0)
