"""Tests for SweepResult percentile/IQR dispersion reporting."""

import numpy as np
import pytest

from repro.analysis.sweep import SweepResult


@pytest.fixture()
def sweep():
    raw = {"hits": np.array([[1.0, 2.0, 3.0, 4.0], [10.0, 20.0, 30.0, 40.0]])}
    return SweepResult(
        alphas=np.array([0.4, 0.8]),
        series={"hits": np.median(raw["hits"], axis=1)},
        raw=raw,
    )


class TestPercentile:
    def test_median_matches_series(self, sweep):
        assert np.allclose(sweep.percentile("hits", 50), sweep.metric("hits"))

    def test_extremes(self, sweep):
        assert np.allclose(sweep.percentile("hits", 0), [1.0, 10.0])
        assert np.allclose(sweep.percentile("hits", 100), [4.0, 40.0])

    def test_iqr(self, sweep):
        expected = (
            np.percentile(sweep.raw["hits"], 75, axis=1)
            - np.percentile(sweep.raw["hits"], 25, axis=1)
        )
        assert np.allclose(sweep.iqr("hits"), expected)

    def test_missing_raw_rejected(self, sweep):
        with pytest.raises(KeyError):
            sweep.percentile("merges", 50)

    def test_out_of_range_q_rejected(self, sweep):
        with pytest.raises(ValueError):
            sweep.percentile("hits", 101)
