"""Tests for repro.analysis.sweep."""

import numpy as np
import pytest

from repro.analysis.sweep import (
    SweepResult,
    alpha_sweep,
    default_alphas,
    run_repetitions,
)
from repro.htc.simulator import SimulationConfig
from repro.util.units import GB


def tiny_config(**kw):
    base = dict(
        capacity=20 * GB, n_unique=15, repeats=3, max_selection=6,
        n_packages=300, repo_total_size=10 * GB, seed=4,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestDefaultAlphas:
    def test_paper_grid(self):
        grid = default_alphas()
        assert grid[0] == 0.4 and grid[-1] == 1.0
        assert len(grid) == 13
        assert np.allclose(np.diff(grid), 0.05)

    def test_custom_range(self):
        grid = default_alphas(step=0.1, lo=0.0, hi=0.5)
        assert list(grid) == [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]


class TestRunRepetitions:
    def test_count_and_distinct_seeds(self, small_sft):
        results = run_repetitions(tiny_config(), 3, repository=small_sft)
        assert len(results) == 3
        summaries = [tuple(sorted(r.summary().items())) for r in results]
        assert len(set(summaries)) > 1  # different workload seeds

    def test_timeline_disabled_in_reps(self, small_sft):
        results = run_repetitions(tiny_config(), 2, repository=small_sft)
        assert all(r.timeline == {} for r in results)

    def test_invalid_repetitions(self, small_sft):
        with pytest.raises(ValueError):
            run_repetitions(tiny_config(), 0, repository=small_sft)

    def test_progress_callback(self, small_sft):
        seen = []
        run_repetitions(
            tiny_config(), 2, repository=small_sft,
            progress=lambda i, n: seen.append((i, n)),
        )
        assert seen == [(1, 2), (2, 2)]


class TestAlphaSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return alpha_sweep(
            tiny_config(), alphas=[0.4, 0.75, 1.0], repetitions=3,
            label="test",
        )

    def test_series_aligned_with_grid(self, sweep):
        assert sweep.alphas.tolist() == [0.4, 0.75, 1.0]
        for series in sweep.series.values():
            assert len(series) == 3

    def test_raw_shape(self, sweep):
        assert sweep.raw["hits"].shape == (3, 3)

    def test_median_is_median_of_raw(self, sweep):
        assert np.allclose(
            sweep.series["hits"], np.median(sweep.raw["hits"], axis=1)
        )

    def test_metric_lookup(self, sweep):
        assert sweep.metric("merges") is sweep.series["merges"]
        with pytest.raises(KeyError, match="unknown metric"):
            sweep.metric("vibes")

    def test_at_alpha_nearest(self, sweep):
        point = sweep.at_alpha(0.76)
        assert point["merges"] == float(sweep.metric("merges")[1])

    def test_to_jsonable(self, sweep):
        payload = sweep.to_jsonable()
        assert payload["label"] == "test"
        assert len(payload["alphas"]) == 3

    def test_invalid_grids(self):
        with pytest.raises(ValueError):
            alpha_sweep(tiny_config(), alphas=[], repetitions=1)
        with pytest.raises(ValueError):
            alpha_sweep(tiny_config(), alphas=[1.5], repetitions=1)

    def test_merges_increase_with_alpha(self, sweep):
        merges = sweep.metric("merges")
        assert merges[1] > merges[0]
