"""Tests for the shared-universe sweep machinery (repro.parallel.shm).

The parallel-sweep fix has two halves, exercised here directly:

- fork platforms: the parent builds and fully warms the repository
  (``warm_closures``) *before* the executor forks, so workers inherit
  the closure memo and their initializer is a no-op;
- spawn platforms: the packed closure bit-matrix is published through
  ``multiprocessing.shared_memory`` and workers decode rows on demand
  (``install_packed_closures``) instead of re-walking the DAG.

Either way the simulation results must stay bit-identical to the
serial path — the shared state is a pure warm-up/transport
optimisation, never an input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import alpha_sweep
from repro.htc.simulator import SimulationConfig
from repro.parallel import RepositorySpec, SharedPackedMatrix, SimulationPool
from repro.parallel.simulations import (
    _WORKER_REPOSITORY,
    _init_simulation_worker,
    _source_key,
)
from repro.util.units import GB


def tiny_config(**kw):
    base = dict(
        capacity=20 * GB, n_unique=15, repeats=3, max_selection=6,
        n_packages=300, repo_total_size=10 * GB, seed=4,
    )
    base.update(kw)
    return SimulationConfig(**base)


class TestSharedPackedMatrix:
    def test_round_trip(self):
        array = np.arange(60, dtype=np.uint8).reshape(12, 5)
        shared = SharedPackedMatrix.create(array)
        if shared is None:
            pytest.skip("platform cannot allocate shared memory")
        try:
            attached = SharedPackedMatrix.attach(shared.handle())
            assert attached is not None
            assert attached.shape == array.shape
            assert np.array_equal(attached.array, array)
            attached.close()
        finally:
            shared.close()
            shared.unlink()

    def test_close_is_idempotent(self):
        shared = SharedPackedMatrix.create(np.zeros((2, 2), dtype=np.uint8))
        if shared is None:
            pytest.skip("platform cannot allocate shared memory")
        shared.close()
        shared.close()
        shared.unlink()


class TestPackedClosures:
    def test_matrix_decodes_to_original_closures(self):
        spec = RepositorySpec.from_config(tiny_config())
        source = spec.build()
        packed = source.closure_matrix()
        fresh = spec.build()
        fresh.install_packed_closures(packed)
        for pid in source.ids:
            assert fresh.closure_of(pid) == source.closure_of(pid)

    def test_shape_mismatch_rejected(self):
        repo = RepositorySpec.from_config(tiny_config()).build()
        with pytest.raises(ValueError):
            repo.install_packed_closures(np.zeros((3, 1), dtype=np.uint8))

    def test_warm_closures_memoises_everything(self):
        repo = RepositorySpec.from_config(tiny_config()).build()
        repo.warm_closures()
        assert set(repo._closures) == set(repo.ids)


class TestWorkerInitializer:
    def test_inherited_warm_repository_is_kept(self):
        spec = RepositorySpec.from_config(tiny_config())
        repo = spec.build()
        old = _WORKER_REPOSITORY[:]
        try:
            _WORKER_REPOSITORY[0] = _source_key(spec)
            _WORKER_REPOSITORY[1] = repo
            _init_simulation_worker(spec)
            # same object: the pre-installed repository was not rebuilt
            assert _WORKER_REPOSITORY[1] is repo
        finally:
            _WORKER_REPOSITORY[0] = old[0]
            _WORKER_REPOSITORY[1] = old[1]

    def test_handle_installs_packed_closures(self):
        spec = RepositorySpec.from_config(tiny_config())
        packed = spec.build().closure_matrix()
        shared = SharedPackedMatrix.create(packed)
        if shared is None:
            pytest.skip("platform cannot allocate shared memory")
        old = _WORKER_REPOSITORY[:]
        try:
            _WORKER_REPOSITORY[0] = None
            _WORKER_REPOSITORY[1] = None
            _init_simulation_worker(spec, shared.handle())
            installed = _WORKER_REPOSITORY[1]
            assert installed is not None
            assert installed._packed_closures is not None
            reference = spec.build()
            for pid in reference.ids:
                assert installed.closure_of(pid) == reference.closure_of(pid)
        finally:
            _WORKER_REPOSITORY[0] = old[0]
            _WORKER_REPOSITORY[1] = old[1]


class TestPoolSharedUniverse:
    def test_parallel_pool_reports_shared_universe(self):
        config = tiny_config()
        with SimulationPool(RepositorySpec.from_config(config), 2) as pool:
            if not pool.parallel:
                pytest.skip("platform cannot start worker processes")
            assert pool.shared_universe

    def test_serial_pool_has_no_shared_universe(self):
        with SimulationPool(RepositorySpec.from_config(tiny_config()), 1) as pool:
            assert not pool.shared_universe

    def test_shared_universe_sweep_bit_identical_to_serial(self):
        config = tiny_config()
        spec = RepositorySpec.from_config(config)
        with SimulationPool(spec, workers=2) as pool:
            parallel = alpha_sweep(
                config, alphas=[0.5, 0.8], repetitions=2, pool=pool
            )
        serial = alpha_sweep(
            config, alphas=[0.5, 0.8], repetitions=2, workers=1
        )
        for name in serial.raw:
            assert np.array_equal(serial.raw[name], parallel.raw[name])
