"""Tests for repro.parallel and the parallel paths of repro.analysis.sweep.

The load-bearing property is *bit-identical determinism*: a sweep fanned
out over any number of worker processes must equal the serial sweep
exactly — same seeds, same cell order, same arrays.  The failure paths
matter almost as much: a crash in a worker must name the failing
``(alpha, repetition)`` cell, and bad worker counts must be rejected
rather than silently clamped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import alpha_sweep, run_repetitions
from repro.htc.simulator import SimulationConfig
from repro.parallel import (
    ParallelExecutionError,
    RepositorySpec,
    SimulationPool,
    parallel_map,
    repetition_seeds,
    resolve_workers,
)
from repro.util.units import GB


def tiny_config(**kw):
    base = dict(
        capacity=20 * GB, n_unique=15, repeats=3, max_selection=6,
        n_packages=300, repo_total_size=10 * GB, seed=4,
    )
    base.update(kw)
    return SimulationConfig(**base)


def _square(x):
    """Module-level so it pickles by reference into workers."""
    return x * x


def _boom(x):
    """Module-level failing task for worker-exception tests."""
    if x == 3:
        raise RuntimeError("kaboom on three")
    return x


class TestRepetitionSeeds:
    def test_distinct_and_deterministic(self):
        seeds = repetition_seeds(2020, 20)
        assert len(seeds) == 20
        assert len(set(seeds)) == 20
        assert seeds == repetition_seeds(2020, 20)

    def test_none_differs_from_zero(self):
        # seed=None must not alias seed=0 (the old scheme's collision).
        assert repetition_seeds(None, 10) != repetition_seeds(0, 10)

    def test_disjoint_across_bases(self):
        # Nearby base seeds must not share repetition seeds (the old
        # ``base * 10_000 + rep`` scheme collided across bases).
        a = set(repetition_seeds(1, 50))
        b = set(repetition_seeds(2, 50))
        assert not a & b

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            repetition_seeds(1, 0)


class TestResolveWorkers:
    def test_library_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None, default=1) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None, default=1) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError, match="positive"):
            resolve_workers(bad)

    def test_default_none_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None, default=None) >= 1


class TestParallelMap:
    def test_order_preserved(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=4) == [
            x * x for x in items
        ]

    def test_serial_matches_parallel(self):
        items = list(range(10))
        assert parallel_map(_square, items, workers=1) == parallel_map(
            _square, items, workers=3
        )

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_worker_exception_names_task(self):
        labels = [f"item-{i}" for i in range(6)]
        with pytest.raises(ParallelExecutionError) as err:
            parallel_map(_boom, list(range(6)), workers=2, labels=labels,
                         chunk_size=1)
        assert err.value.label == "item-3"
        assert err.value.index == 3
        assert "kaboom on three" in str(err.value)

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            parallel_map(_square, [1, 2], workers=1, labels=["only-one"])

    def test_progress_fires_per_task(self):
        seen = []
        parallel_map(
            _square, [1, 2, 3], workers=1,
            progress=lambda done, total, label: seen.append((done, total)),
        )
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestDeterminism:
    """Parallel execution must be bit-identical to serial, per the paper's
    fixed-seed protocol (§VI: 20 repetitions per point, medians)."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        kwargs = dict(alphas=[0.4, 0.75, 1.0], repetitions=3, label="det")
        serial = alpha_sweep(tiny_config(), workers=1, **kwargs)
        parallel = alpha_sweep(tiny_config(), workers=4, **kwargs)
        return serial, parallel

    def test_alphas_and_metrics_match(self, sweeps):
        serial, parallel = sweeps
        assert np.array_equal(serial.alphas, parallel.alphas)
        assert serial.series.keys() == parallel.series.keys()

    def test_series_bit_identical(self, sweeps):
        serial, parallel = sweeps
        for name in serial.series:
            assert np.array_equal(serial.series[name],
                                  parallel.series[name]), name

    def test_raw_bit_identical(self, sweeps):
        serial, parallel = sweeps
        for name in serial.raw:
            assert np.array_equal(serial.raw[name],
                                  parallel.raw[name]), name

    def test_run_repetitions_matches(self, small_sft):
        config = tiny_config()
        serial = run_repetitions(config, 4, repository=small_sft, workers=1)
        parallel = run_repetitions(config, 4, repository=small_sft,
                                   workers=2)
        assert [r.summary() for r in serial] == [
            r.summary() for r in parallel
        ]

    def test_env_var_path_matches(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        via_env = alpha_sweep(tiny_config(), alphas=[0.5, 0.9],
                              repetitions=2)
        monkeypatch.delenv("REPRO_WORKERS")
        serial = alpha_sweep(tiny_config(), alphas=[0.5, 0.9],
                             repetitions=2, workers=1)
        for name in serial.raw:
            assert np.array_equal(serial.raw[name], via_env.raw[name])


class TestFailurePaths:
    def test_workers_zero_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            alpha_sweep(tiny_config(), alphas=[0.5], repetitions=1,
                        workers=0)

    def test_worker_crash_names_cell(self):
        # scheme is only validated when the workload is built inside the
        # simulation, so a bogus scheme detonates in the worker.
        with pytest.raises(ParallelExecutionError, match="alpha=0.40"):
            alpha_sweep(
                tiny_config(scheme="bogus"), alphas=[0.4, 0.6],
                repetitions=2, workers=2,
            )

    def test_crash_report_includes_rep(self):
        with pytest.raises(ParallelExecutionError, match="rep="):
            run_repetitions(tiny_config(scheme="bogus"), 2, workers=2)

    def test_unseeded_spec_rejected(self):
        spec = RepositorySpec("sft", None, 300, 10 * GB)
        with pytest.raises(ValueError, match="seed=None"):
            SimulationPool(spec, workers=2)

    def test_unseeded_sweep_still_works(self):
        # seed=None ships the built repository instead of a spec; the two
        # runs share nothing, so only shapes are comparable.
        sweep = alpha_sweep(tiny_config(seed=None), alphas=[0.5],
                            repetitions=2, workers=2)
        assert sweep.raw["hits"].shape == (1, 2)


class TestSimulationPool:
    def test_reuse_across_batches(self):
        config = tiny_config()
        spec = RepositorySpec.from_config(config)
        batch_a = [config.with_(alpha=0.5, seed=s)
                   for s in repetition_seeds(config.seed, 2)]
        batch_b = [config.with_(alpha=0.9, seed=s)
                   for s in repetition_seeds(config.seed, 2)]
        with SimulationPool(spec, workers=2) as pool:
            got_a = pool.run(batch_a)
            got_b = pool.run(batch_b)
        repo = spec.build()
        want_a = [r.summary() for r in run_repetitions(
            config.with_(alpha=0.5), 2, repository=repo)]
        want_b = [r.summary() for r in run_repetitions(
            config.with_(alpha=0.9), 2, repository=repo)]
        assert [r.summary() for r in got_a] == want_a
        assert [r.summary() for r in got_b] == want_b

    def test_serial_pool_fallback(self):
        config = tiny_config()
        with SimulationPool(RepositorySpec.from_config(config), 1) as pool:
            assert not pool.parallel
            results = pool.run([config])
        assert len(results) == 1

    def test_close_idempotent(self):
        pool = SimulationPool(
            RepositorySpec.from_config(tiny_config()), workers=2
        )
        pool.close()
        pool.close()

    def test_serial_run_records_sweep_cell_spans(self):
        config = tiny_config()
        with SimulationPool(RepositorySpec.from_config(config), 1) as pool:
            before = len(pool.spans)
            results = pool.run([config, config.with_(alpha=0.9)])
        assert len(results) == 2
        fresh = pool.spans.spans()[before:]
        cells = [s for s in fresh if s.name == "sweep_cell"]
        assert len(cells) == 2
        # one trace per cell, alpha attached for slow-cell triage
        assert len({s.trace_id for s in cells}) == 2
        assert [dict(s.attrs)["alpha"] for s in cells] == ["0.75", "0.9"]
        assert all(s.duration >= 0.0 for s in cells)

    def test_tracing_leaves_results_bit_identical(self):
        # The span wrapper must not perturb the simulation itself.
        config = tiny_config()
        repo = RepositorySpec.from_config(config).build()
        from repro.htc.simulator import simulate

        bare = simulate(config, repository=repo)
        with SimulationPool(RepositorySpec.from_config(config), 1) as pool:
            (traced,) = pool.run([config])
        assert traced.summary() == bare.summary()

    def test_shared_pool_matches_own_pool(self):
        config = tiny_config()
        spec = RepositorySpec.from_config(config)
        with SimulationPool(spec, workers=2) as pool:
            shared = alpha_sweep(config, alphas=[0.5, 0.8], repetitions=2,
                                 pool=pool)
        own = alpha_sweep(config, alphas=[0.5, 0.8], repetitions=2,
                          workers=2)
        for name in own.raw:
            assert np.array_equal(own.raw[name], shared.raw[name])
