"""Tests for repro.analysis.efficiency."""

import numpy as np
import pytest

from repro.analysis.efficiency import (
    OperationalZone,
    cache_efficiency,
    container_efficiency,
    find_operational_zone,
)
from repro.analysis.sweep import SweepResult


class TestScalarMetrics:
    def test_cache_efficiency(self):
        assert cache_efficiency(30, 120) == 0.25
        assert cache_efficiency(0, 0) == 1.0

    def test_cache_efficiency_validation(self):
        with pytest.raises(ValueError):
            cache_efficiency(10, 5)
        with pytest.raises(ValueError):
            cache_efficiency(-1, 5)

    def test_container_efficiency(self):
        assert container_efficiency(80, 100) == 0.8
        assert container_efficiency(0, 0) == 1.0

    def test_container_efficiency_validation(self):
        with pytest.raises(ValueError):
            container_efficiency(200, 100)


def sweep_from(alphas, cache_eff, wamp, cont_eff=None):
    if cont_eff is None:
        cont_eff = [1.0] * len(alphas)
    return SweepResult(
        alphas=np.asarray(alphas, dtype=float),
        series={
            "cache_efficiency": np.asarray(cache_eff, dtype=float),
            "write_amplification": np.asarray(wamp, dtype=float),
            "container_efficiency": np.asarray(cont_eff, dtype=float),
        },
    )


class TestOperationalZone:
    def test_zone_found_between_limits(self):
        sweep = sweep_from(
            [0.4, 0.6, 0.8, 0.9, 1.0],
            [0.1, 0.35, 0.5, 0.6, 1.0],
            [1.0, 1.1, 1.5, 1.9, 2.5],
        )
        zone = find_operational_zone(sweep)
        assert zone.valid
        assert zone.lower == 0.6 and zone.upper == 0.9
        assert zone.width == pytest.approx(0.3)
        assert zone.contains(0.8)
        assert not zone.contains(0.4)

    def test_container_floor_trims_right_edge(self):
        sweep = sweep_from(
            [0.8, 0.9, 1.0],
            [0.5, 0.6, 1.0],
            [1.5, 1.8, 1.0],
            cont_eff=[0.8, 0.5, 0.1],  # α=1 is "excessive image size"
        )
        zone = find_operational_zone(sweep, container_efficiency_floor=0.2)
        assert zone.upper == 0.9

    def test_no_zone(self):
        sweep = sweep_from([0.4, 0.6], [0.1, 0.2], [3.0, 3.0])
        zone = find_operational_zone(sweep)
        assert not zone.valid
        assert zone.width == 0.0
        assert not zone.contains(0.5)

    def test_longest_contiguous_run_wins(self):
        sweep = sweep_from(
            [0.4, 0.5, 0.6, 0.7, 0.8],
            [0.5, 0.1, 0.5, 0.5, 0.5],  # dip at 0.5 splits runs
            [1.0, 1.0, 1.0, 1.0, 1.0],
        )
        zone = find_operational_zone(sweep)
        assert (zone.lower, zone.upper) == (0.6, 0.8)

    def test_single_point_zone(self):
        sweep = sweep_from([0.4, 0.6], [0.1, 0.5], [1.0, 1.0])
        zone = find_operational_zone(sweep)
        assert zone.lower == zone.upper == 0.6
        assert zone.valid

    def test_custom_limits(self):
        sweep = sweep_from([0.4, 0.6], [0.25, 0.25], [1.0, 1.0])
        assert not find_operational_zone(sweep).valid
        assert find_operational_zone(
            sweep, cache_efficiency_floor=0.2
        ).valid
