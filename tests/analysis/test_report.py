"""Tests for repro.analysis.report."""

import json

import numpy as np
import pytest

from repro.analysis.report import (
    percent,
    save_results_json,
    sweep_plot,
    sweep_table,
    timeline_plot,
)
from repro.analysis.sweep import SweepResult


@pytest.fixture()
def sweep():
    return SweepResult(
        alphas=np.array([0.4, 0.8]),
        series={
            "hits": np.array([10.0, 20.0]),
            "cache_efficiency": np.array([0.25, 0.5]),
            "cached_bytes": np.array([2e9, 1e9]),
        },
        label="demo",
    )


class TestSweepTable:
    def test_formats_metric_types(self, sweep):
        out = sweep_table(sweep, ["hits", "cache_efficiency", "cached_bytes"])
        assert "0.40" in out
        assert "25.0%" in out       # percent metric
        assert "2.0GB" in out       # byte metric
        assert "10" in out          # count metric

    def test_row_per_alpha(self, sweep):
        out = sweep_table(sweep, ["hits"])
        assert len(out.splitlines()) == 2 + 2  # header, rule, 2 rows


class TestPlots:
    def test_sweep_plot_single(self, sweep):
        out = sweep_plot(sweep, "hits")
        assert "demo" in out and "alpha" in out

    def test_sweep_plot_multiple_with_scale(self, sweep):
        out = sweep_plot([sweep, sweep], "cache_efficiency", scale=100)
        assert "50" in out

    def test_timeline_plot(self):
        timeline = {"hits": np.arange(10), "merges": np.arange(10) * 2}
        out = timeline_plot(timeline, ["hits", "merges"], title="ops")
        assert "ops" in out and "requests" in out

    def test_timeline_plot_skips_missing_fields(self):
        out = timeline_plot({"hits": np.arange(5)}, ["hits", "ghost"], "t")
        assert "hits" in out


class TestSaveJson:
    def test_numpy_and_sweep_serialised(self, sweep, tmp_path):
        path = save_results_json(
            tmp_path / "out" / "results.json",
            {"sweep": sweep, "array": np.array([1, 2]),
             "scalar": np.float64(0.5), "set": frozenset({"b", "a"})},
        )
        payload = json.loads(path.read_text())
        assert payload["sweep"]["label"] == "demo"
        assert payload["array"] == [1, 2]
        assert payload["scalar"] == 0.5
        assert payload["set"] == ["a", "b"]

    def test_unserialisable_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_results_json(tmp_path / "x.json", {"bad": object()})

    def test_percent_helper(self):
        assert percent(0.256) == "25.6%"
