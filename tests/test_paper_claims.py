"""The claims ledger: EXPERIMENTS.md's statements, executed at quick scale.

Tiny-scale shape assertions live next to each experiment; this module
re-verifies the central quantitative claims at the default (quick) scale so
a calibration regression that only manifests beyond tiny cannot slip
through.  Marked slow; deselect with ``-m 'not slow'``.
"""

import numpy as np
import pytest

from repro.analysis.efficiency import find_operational_zone
from repro.analysis.sweep import alpha_sweep
from repro.experiments.common import QUICK, base_config
from repro.packages.sft import build_experiment_repository

pytestmark = pytest.mark.slow

SEED = 2020


@pytest.fixture(scope="module")
def quick_repo():
    return build_experiment_repository(
        "sft", seed=SEED, n_packages=QUICK.n_packages,
        target_total_size=QUICK.repo_total_size,
    )


@pytest.fixture(scope="module")
def quick_sweep(quick_repo):
    return alpha_sweep(
        base_config(QUICK, seed=SEED),
        alphas=QUICK.alphas(),
        repetitions=QUICK.repetitions,
        repository=quick_repo,
    )


class TestFig4Claims:
    def test_lru_regime_has_no_merges(self, quick_sweep):
        assert quick_sweep.metric("merges")[0] == 0

    def test_inserts_and_deletes_in_lockstep_at_low_alpha(self, quick_sweep):
        inserts = quick_sweep.metric("inserts")[0]
        deletes = quick_sweep.metric("deletes")[0]
        assert 0 < deletes <= inserts <= deletes * 1.2

    def test_merge_collapse_at_alpha_one(self, quick_sweep):
        merges = quick_sweep.metric("merges")
        assert merges[-1] < 0.5 * merges.max()

    def test_unique_meets_total_at_alpha_one(self, quick_sweep):
        unique = quick_sweep.metric("unique_bytes")[-1]
        total = quick_sweep.metric("cached_bytes")[-1]
        assert unique == pytest.approx(total, rel=0.01)

    def test_write_amplification_exceeds_one_at_high_alpha(self, quick_sweep):
        wamp = quick_sweep.metric("write_amplification")
        assert wamp[:3].max() < 1.0  # hits keep low-alpha below requested
        assert wamp.max() > 1.3


class TestFig8Claims:
    def test_operational_zone_contains_recommended_alpha(self, quick_sweep):
        zone = find_operational_zone(quick_sweep)
        assert zone.valid
        assert zone.contains(0.8) or abs(zone.lower - 0.8) <= 0.05

    def test_extremes_excluded(self, quick_sweep):
        zone = find_operational_zone(quick_sweep)
        assert zone.lower > 0.4
        # α=1 violates the container-efficiency floor
        assert quick_sweep.metric("container_efficiency")[-1] < 0.2


class TestFig3Claims:
    def test_five_x_amplification_for_small_selections(self, quick_repo):
        from repro.analysis.calibration import closure_amplification

        # ~1% of the repository, the paper's "less than 100 packages" regime
        amp = closure_amplification(
            quick_repo, selection_size=QUICK.n_packages // 100, trials=25,
            seed=SEED,
        )
        assert 3.0 < amp < 9.0

    def test_amplification_monotone_decay(self, quick_repo):
        from repro.analysis.calibration import closure_amplification

        sizes = [20, 80, 320]
        amps = [
            closure_amplification(quick_repo, s, trials=15, seed=SEED)
            for s in sizes
        ]
        assert amps[0] > amps[1] > amps[2]
