"""Integration tests: Algorithm 1's extremes reduce to analytic baselines.

The paper: at α = 0 the cache is a plain LRU that never merges ("a larger
number of independent images"); at α = 1 every request merges if possible,
accumulating toward one all-purpose image.  These tests cross-check
LandlordCache at the extremes against the independent policy
implementations and against analytical facts.
"""

import numpy as np
import pytest

from repro.core.cache import LandlordCache
from repro.core.events import EventKind
from repro.core.policies import NoCachePolicy, SingleImagePolicy
from repro.htc.workload import DependencyWorkload, build_stream
from repro.util.rng import spawn
from repro.util.units import GB


@pytest.fixture(scope="module")
def stream(small_sft):
    workload = DependencyWorkload(small_sft, max_selection=8)
    return build_stream(workload, spawn(9, "integration"),
                        n_unique=40, repeats=3)


class TestAlphaZeroIsLRU:
    def test_no_merges_ever(self, small_sft, stream):
        cache = LandlordCache(40 * GB, 0.0, small_sft.size_of)
        for spec in stream:
            cache.request(spec)
        assert cache.stats.merges == 0

    def test_container_efficiency_is_perfect_modulo_subsets(
        self, small_sft, stream
    ):
        cache = LandlordCache(40 * GB, 0.0, small_sft.size_of,
                              hit_selection="smallest")
        for spec in stream:
            cache.request(spec)
        # Only subset hits introduce any requested<used gap; it stays high.
        assert cache.stats.container_efficiency > 0.9

    def test_repeatedly_requested_specs_hit_when_cache_is_large(
        self, small_sft, stream
    ):
        cache = LandlordCache(10**15, 0.0, small_sft.size_of)
        for spec in stream:
            cache.request(spec)
        # 40 unique x 3 repeats: at least 2/3 of requests are repeats.
        assert cache.stats.hits >= 2 * 40
        assert cache.stats.inserts <= 40


class TestAlphaOneIsSingleImage:
    def test_converges_to_one_image(self, small_sft, stream):
        cache = LandlordCache(10**15, 1.0, small_sft.size_of)
        for spec in stream:
            cache.request(spec)
        # Dependency-scheme specs share core packages, so d < 1 holds and
        # everything merges into a single resident image.
        assert len(cache) == 1

    def test_matches_single_image_policy_gauges(self, small_sft, stream):
        cache = LandlordCache(10**15, 1.0, small_sft.size_of)
        policy = SingleImagePolicy(small_sft.size_of)
        for spec in stream:
            cache.request(spec)
            policy.request(spec)
        assert cache.cached_bytes == policy.cached_bytes
        assert cache.unique_bytes == policy.unique_bytes
        assert cache.cache_efficiency == 1.0

    def test_final_image_is_union_of_all_requests(self, small_sft, stream):
        cache = LandlordCache(10**15, 1.0, small_sft.size_of)
        for spec in stream:
            cache.request(spec)
        union = frozenset().union(*stream)
        assert cache.images[0].packages == union


class TestWriteAccountingAgainstNoCache:
    def test_caching_never_writes_more_than_rebuilding_at_alpha_zero(
        self, small_sft, stream
    ):
        cache = LandlordCache(40 * GB, 0.0, small_sft.size_of)
        baseline = NoCachePolicy(small_sft.size_of)
        for spec in stream:
            cache.request(spec)
            baseline.request(spec)
        assert cache.stats.bytes_written <= baseline.stats.bytes_written
        assert baseline.stats.bytes_written == baseline.stats.requested_bytes


class TestDeterministicEndToEnd:
    def test_full_simulation_reproducible(self):
        from repro.htc.simulator import SimulationConfig, simulate

        config = SimulationConfig(
            n_packages=400, repo_total_size=20 * GB, capacity=40 * GB,
            n_unique=30, repeats=3, max_selection=8, seed=77,
        )
        a = simulate(config)
        b = simulate(config)
        assert a.summary() == b.summary()
        for key in a.timeline:
            assert np.array_equal(a.timeline[key], b.timeline[key])
