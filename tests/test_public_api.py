"""The public API surface: everything README documents must import."""

import importlib

import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_readme_quickstart_symbols(self):
        from repro import (
            ImageSpec,
            Landlord,
            LandlordCache,
            MinHashSignature,
            PreparedContainer,
            Repository,
            SimulationConfig,
            build_sft_repository,
            jaccard_distance,
            jaccard_similarity,
            simulate,
        )

        assert callable(simulate)
        assert callable(build_sft_repository)

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.packages",
            "repro.cvmfs",
            "repro.containers",
            "repro.htc",
            "repro.specs",
            "repro.analysis",
            "repro.experiments",
            "repro.util",
            "repro.cli",
        ],
    )
    def test_subpackages_import_and_export(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_readme_quickstart_executes(self):
        from repro import Landlord, build_sft_repository
        from repro.util.units import GB

        repo = build_sft_repository(
            seed=42, n_packages=300, target_total_size=20 * GB
        )
        landlord = Landlord(repo, capacity=10 * GB, alpha=0.8)
        prepared = landlord.prepare([repo.ids[0]])
        assert prepared.action.value in ("insert", "merge", "hit")
        assert prepared.image.size >= 0
