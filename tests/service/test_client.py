"""Tests for the thin daemon client: endpoint parsing, error taxonomy,
and the bounded backpressure retry loop."""

import pytest

from repro.service import LandlordClient, ServiceError, SubmitRejected


class TestEndpointParsing:
    def test_tcp_endpoint(self):
        client = LandlordClient("http://127.0.0.1:8080")
        assert client._host == "127.0.0.1"
        assert client._port == 8080
        assert client._socket_path is None

    def test_unix_endpoint(self):
        client = LandlordClient("unix:/run/landlord.sock")
        assert client._socket_path == "/run/landlord.sock"

    @pytest.mark.parametrize("bad", [
        "127.0.0.1:8080",          # missing scheme
        "https://127.0.0.1:8080",  # unsupported scheme
        "http://127.0.0.1",        # missing port
        "http://:8080",            # missing host
        "http://host:notaport",
    ])
    def test_bad_endpoints_rejected(self, bad):
        with pytest.raises(ValueError):
            LandlordClient(bad)


class TestErrors:
    def test_unreachable_daemon_raises_service_error(self):
        client = LandlordClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceError, match="unreachable"):
            client.submit(["p0"])

    def test_rejection_taxonomy(self):
        full = SubmitRejected(429, {"error": "queue full"})
        assert full.retryable
        assert full.status == 429
        draining = SubmitRejected(503, {"error": "draining"})
        assert not draining.retryable
        assert "draining" in str(draining)

    def test_service_error_carries_status(self):
        error = ServiceError("boom", status=418)
        assert error.status == 418


class TestRetryLoop:
    def _client_with_replies(self, monkeypatch, replies):
        """A client whose wire layer plays back a scripted reply list."""
        client = LandlordClient("http://127.0.0.1:9")
        calls = []

        def scripted(method, path, body=None, headers=None):
            calls.append((method, path, body))
            return replies.pop(0)

        monkeypatch.setattr(client, "_request_json", scripted)
        client._calls = calls
        return client

    def test_retry_absorbs_429_then_succeeds(self, monkeypatch):
        client = self._client_with_replies(monkeypatch, [
            (429, {"error": "queue full"}),
            (429, {"error": "queue full"}),
            (200, {"action": "hit", "request_index": 7}),
        ])
        reply = client.submit(["p0"], retries=2, backoff=0.001)
        assert reply["request_index"] == 7
        assert len(client._calls) == 3

    def test_retries_exhausted_raises(self, monkeypatch):
        client = self._client_with_replies(monkeypatch, [
            (429, {"error": "queue full"}),
            (429, {"error": "queue full"}),
        ])
        with pytest.raises(SubmitRejected) as excinfo:
            client.submit(["p0"], retries=1, backoff=0.001)
        assert excinfo.value.status == 429

    def test_503_never_retried(self, monkeypatch):
        client = self._client_with_replies(monkeypatch, [
            (503, {"error": "draining"}),
        ])
        with pytest.raises(SubmitRejected) as excinfo:
            client.submit(["p0"], retries=5, backoff=0.001)
        assert excinfo.value.status == 503
        assert len(client._calls) == 1

    def test_400_raises_service_error(self, monkeypatch):
        client = self._client_with_replies(monkeypatch, [
            (400, {"error": "unknown packages", "unknown": ["zap"]}),
        ])
        with pytest.raises(ServiceError, match="unknown packages"):
            client.submit(["zap"], retries=5)

    def test_submit_many_preserves_order(self, monkeypatch):
        client = self._client_with_replies(monkeypatch, [
            (200, {"request_index": 0}),
            (200, {"request_index": 1}),
        ])
        replies = client.submit_many([["p0"], ["p1"]])
        assert [r["request_index"] for r in replies] == [0, 1]
        assert [c[2]["packages"] for c in client._calls] == [
            ["p0"], ["p1"],
        ]


class TestContextManager:
    def test_context_manager_closes(self):
        with LandlordClient("http://127.0.0.1:8080") as client:
            assert client._conn is None  # lazy: nothing dialled yet
        assert client._conn is None


class TestTraceContextPropagation:
    def _client_capturing_headers(self, monkeypatch, replies):
        client = LandlordClient("http://127.0.0.1:9")
        sent = []

        def scripted(method, path, body=None, headers=None):
            sent.append(headers or {})
            return replies.pop(0)

        monkeypatch.setattr(client, "_request_json", scripted)
        client._sent = sent
        return client

    def test_submit_sends_valid_traceparent(self, monkeypatch):
        from repro.obs import parse_traceparent

        client = self._client_capturing_headers(monkeypatch, [
            (200, {"request_index": 0, "trace_id": "x"}),
        ])
        client.submit(["p0"])
        header = client._sent[0]["traceparent"]
        assert parse_traceparent(header) is not None

    def test_trace_context_constant_across_retries(self, monkeypatch):
        client = self._client_capturing_headers(monkeypatch, [
            (429, {"error": "queue full"}),
            (200, {"request_index": 0}),
        ])
        client.submit(["p0"], retries=1, backoff=0.001)
        assert client._sent[0]["traceparent"] == client._sent[1]["traceparent"]

    def test_root_span_recorded_under_the_sent_trace(self, monkeypatch):
        from repro.obs import SpanRecorder, parse_traceparent

        spans = SpanRecorder(limit=8)
        client = LandlordClient("http://127.0.0.1:9", spans=spans)
        sent = []

        def scripted(method, path, body=None, headers=None):
            sent.append(headers)
            return 200, {"request_index": 5}

        monkeypatch.setattr(client, "_request_json", scripted)
        client.submit(["p0"])
        (span,) = spans.spans()
        trace_id, span_id = parse_traceparent(sent[0]["traceparent"])
        assert span.name == "client_submit"
        assert span.trace_id == trace_id
        assert span.span_id == span_id
        assert span.request_index == 5

    def test_no_span_recorded_without_recorder(self, monkeypatch):
        client = self._client_capturing_headers(monkeypatch, [
            (200, {"request_index": 0}),
        ])
        client.submit(["p0"])  # just must not blow up
        assert client.spans is None
