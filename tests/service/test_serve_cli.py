"""`repro-landlord serve` end to end: concurrent clients over a real
subprocess daemon, `submit --remote`, SIGTERM drain, SIGKILL recovery."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core.cache import LandlordCache
from repro.core.journal import JournaledState
from repro.obs import validate_prometheus_text
from repro.service import LandlordClient

REPO_ROOT = Path(__file__).resolve().parents[2]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _tiny_repo():
    from repro.experiments.common import get_scale
    from repro.packages.sft import build_experiment_repository

    scale = get_scale("tiny")
    return build_experiment_repository(
        "sft", seed=2020, n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )


def start_daemon(tmp_path, *extra_args):
    """Launch `serve --scale tiny` and wait for its port file."""
    port_file = tmp_path / "port.txt"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--scale", "tiny",
         "--state", str(tmp_path / "state.json"),
         "--port-file", str(port_file), *extra_args],
        cwd=str(REPO_ROOT),
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return process, int(port_file.read_text().strip())
        if process.poll() is not None:
            pytest.fail(
                f"daemon died during startup: {process.communicate()[1]}"
            )
        time.sleep(0.1)
    process.kill()
    pytest.fail("daemon port file never appeared")


class TestServeDaemonCli:
    def test_concurrent_clients_sigterm_and_recover(self, tmp_path):
        repo = _tiny_repo()
        ids = list(repo.ids)
        process, port = start_daemon(tmp_path, "--trace")
        replies = []
        replies_lock = threading.Lock()

        def run_client(k):
            client = LandlordClient(f"http://127.0.0.1:{port}")
            for i in range(3):
                spec = sorted(
                    repo.closure({ids[(k * 5 + i * 2) % len(ids)]})
                )
                reply = client.submit(spec, retries=3)
                with replies_lock:
                    replies.append((reply["request_index"], spec, reply))
            client.close()

        try:
            threads = [
                threading.Thread(target=run_client, args=(k,))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(r[0] for r in replies) == list(range(12))

            # one more through the submit --remote CLI path
            spec_file = tmp_path / "job.json"
            spec_file.write_text(json.dumps({"packages": [ids[0]]}))
            submit = subprocess.run(
                [sys.executable, "-m", "repro", "submit", str(spec_file),
                 "--scale", "tiny", "--remote",
                 f"http://127.0.0.1:{port}"],
                cwd=str(REPO_ROOT), env=_env(),
                capture_output=True, text=True, timeout=60,
            )
            assert submit.returncode == 0, submit.stderr
            assert "request #12" in submit.stdout
            assert "trace " in submit.stdout  # waterfall pointer line

            # resolve the printed trace id to a per-stage waterfall
            # through the trace CLI's daemon mode
            trace_id = submit.stdout.split("trace ")[1].split(" ")[0]
            waterfall = subprocess.run(
                [sys.executable, "-m", "repro", "trace", trace_id,
                 "--url", f"http://127.0.0.1:{port}", "--last", "20"],
                cwd=str(REPO_ROOT), env=_env(),
                capture_output=True, text=True, timeout=60,
            )
            assert waterfall.returncode == 0, waterfall.stderr
            assert f"trace {trace_id}" in waterfall.stdout
            assert "request #12" in waterfall.stdout
            for stage in ("admission", "queue", "fsync", "apply", "ack"):
                assert stage in waterfall.stdout

            client = LandlordClient(f"http://127.0.0.1:{port}")
            body = client.metrics()
            validate_prometheus_text(body)
            assert "service_submissions_total" in body
            assert client.status()["lifetime"]["requests"] == 13

            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, stderr
            assert "daemon stopped" in stdout
            assert not (tmp_path / "port.txt").exists()
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

        # the graceful shutdown left a covering snapshot: recover is a
        # no-op replay and the state matches a serial re-application
        recover = subprocess.run(
            [sys.executable, "-m", "repro", "recover", "--scale", "tiny",
             "--state", str(tmp_path / "state.json")],
            cwd=str(REPO_ROOT), env=_env(),
            capture_output=True, text=True, timeout=120,
        )
        assert recover.returncode == 0, recover.stderr
        assert "replayed 0 journalled operation(s)" in recover.stdout
        assert "13 requests" in recover.stdout

        recovered, _, _ = JournaledState(tmp_path / "state.json").load(
            repo.size_of
        )
        serial = LandlordCache(
            recovered.capacity, recovered.alpha, repo.size_of
        )
        for _, spec, _ in sorted(replies):
            serial.request(frozenset(spec))
        serial.request(frozenset(repo.closure({ids[0]})))
        assert serial.snapshot() == recovered.snapshot()

        # --trace flowed to the sidecar: explain works for a
        # daemon-processed request
        explain = subprocess.run(
            [sys.executable, "-m", "repro", "explain", "5",
             "--state", str(tmp_path / "state.json")],
            cwd=str(REPO_ROOT), env=_env(),
            capture_output=True, text=True, timeout=60,
        )
        assert explain.returncode == 0, explain.stderr
        assert "request #5" in explain.stdout

    def test_sigkill_mid_stream_recovers_bit_identically(self, tmp_path):
        repo = _tiny_repo()
        ids = list(repo.ids)
        process, port = start_daemon(
            tmp_path, "--snapshot-every", "1000"
        )
        specs = [
            sorted(repo.closure({ids[(3 * i) % len(ids)]}))
            for i in range(5)
        ]
        try:
            client = LandlordClient(f"http://127.0.0.1:{port}")
            for spec in specs:
                client.submit(spec)
        finally:
            process.kill()  # SIGKILL: no drain, no final snapshot
            process.communicate()

        recovered, _, replayed = JournaledState(
            tmp_path / "state.json"
        ).load(repo.size_of)
        assert len(replayed) == 5  # every ack was journalled first
        serial = LandlordCache(
            recovered.capacity, recovered.alpha, repo.size_of
        )
        for spec in specs:
            serial.request(frozenset(spec))
        assert serial.snapshot() == recovered.snapshot()

    def test_remote_against_dead_daemon_fails_cleanly(self, tmp_path):
        spec_file = tmp_path / "job.json"
        spec_file.write_text(
            json.dumps({"packages": ["app-0000/1.0/x86_64-el7"]})
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "submit", str(spec_file),
             "--scale", "tiny", "--remote", "http://127.0.0.1:1"],
            cwd=str(REPO_ROOT), env=_env(),
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert "unreachable" in result.stderr

    def test_remote_conflicts_with_serve(self, tmp_path):
        spec_file = tmp_path / "job.json"
        spec_file.write_text(json.dumps({"packages": []}))
        result = subprocess.run(
            [sys.executable, "-m", "repro", "submit", str(spec_file),
             "--scale", "tiny", "--remote", "http://127.0.0.1:1",
             "--serve", "0"],
            cwd=str(REPO_ROOT), env=_env(),
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert "--remote" in result.stderr


class TestAdaptiveServeCli:
    def _parse_error(self, *argv):
        result = subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            cwd=str(REPO_ROOT), env=_env(),
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2, result.stderr
        return result.stderr

    def test_bad_flags_rejected_at_parse_time(self, tmp_path):
        err = self._parse_error("serve", "--scale", "tiny", "--max-batch",
                                "fast", "--state", str(tmp_path / "s.json"))
        assert "--max-batch" in err
        err = self._parse_error("serve", "--scale", "tiny", "--scratch-mb",
                                "0.5", "--state", str(tmp_path / "s.json"))
        assert "scratch_mb" in err
        err = self._parse_error("serve", "--scale", "tiny", "--ack-budget",
                                "0", "--state", str(tmp_path / "s.json"))
        assert "--ack-budget" in err

    def test_auto_max_batch_daemon_serves_and_reports(self, tmp_path):
        repo = _tiny_repo()
        ids = list(repo.ids)
        process, port = start_daemon(
            tmp_path, "--max-batch", "auto", "--ack-budget", "0.1",
            "--scratch-mb", "8",
        )
        try:
            client = LandlordClient(f"http://127.0.0.1:{port}")
            for i in range(4):
                spec = sorted(repo.closure({ids[i % len(ids)]}))
                reply = client.submit(spec, retries=3)
                assert reply["action"] in {"hit", "merge", "insert"}
            status = client.status()
            client.close()
            service = status["service"]
            governor = service["batch_governor"]
            assert governor["steps"] == service["batches"] >= 1
            assert service["max_batch"] == governor["size"]
            # the engine block carries the compaction/dirty counters
            assert "compaction" in status["engine"]
            assert "batch" in status["engine"]
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=30)
