"""Tests for the LANDLORD daemon: concurrent determinism, durability
(ack-after-journal, crash replay), admission control, and the embedded
observability surface."""

import threading
import time

import pytest

from repro.core.cache import LandlordCache
from repro.core.journal import Journal, JournaledState
from repro.obs import (
    AlertEngine,
    DecisionTracer,
    MetricsRegistry,
    SloTracker,
    read_traces,
    validate_prometheus_text,
)
from repro.service import LandlordClient, LandlordDaemon, SubmitRejected
from repro.service.daemon import _PendingSubmit

SIZE = {f"p{i}": 10 * (i % 5 + 1) for i in range(30)}
KNOWN = frozenset(SIZE)


def make_daemon(tmp_path, *, snapshot_every=10, use_journal=True, **kw):
    """A daemon over a fresh journalled store in ``tmp_path``."""
    store = JournaledState(
        tmp_path / "state.json",
        snapshot_every=snapshot_every,
        use_journal=use_journal,
    )
    cache = LandlordCache(500, 0.8, SIZE.__getitem__)
    store.initialise(cache, {"repository": "test"})
    kw.setdefault("known_package", lambda p: p in KNOWN)
    return LandlordDaemon(store, cache, {"repository": "test"}, **kw)


def client_specs(k, n=8):
    """Client ``k``'s disjoint-ish request stream (deterministic)."""
    return [
        sorted({f"p{(k * 7 + i) % 30}", f"p{(k * 3 + 2 * i) % 30}"})
        for i in range(n)
    ]


class TestConcurrentDeterminism:
    def test_concurrent_clients_match_serial_replay(self, tmp_path):
        daemon = make_daemon(tmp_path, max_batch=4)
        replies = []
        replies_lock = threading.Lock()
        barrier = threading.Barrier(4)

        def run_client(k):
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            barrier.wait()
            for spec in client_specs(k):
                reply = client.submit(spec)
                with replies_lock:
                    replies.append((reply["request_index"], spec, reply))
            client.close()

        with daemon:
            threads = [
                threading.Thread(target=run_client, args=(k,))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            live_snapshot = daemon.cache.snapshot()

        assert len(replies) == 32
        # request indices are the arrival order: dense, unique, 0-based
        indices = sorted(r[0] for r in replies)
        assert indices == list(range(32))

        # replaying the same specs serially in arrival order through a
        # fresh cache reproduces the exact final state and decisions
        serial = LandlordCache(500, 0.8, SIZE.__getitem__)
        for index, spec, reply in sorted(replies):
            decision = serial.request(frozenset(spec))
            assert decision.action.value == reply["action"]
            assert decision.image.id == reply["image"]
            assert sorted(decision.evicted) == sorted(reply["evicted"])
        assert serial.snapshot() == live_snapshot

        # and the durable store converged to the same state
        reloaded, _, _ = JournaledState(tmp_path / "state.json").load(
            SIZE.__getitem__
        )
        assert reloaded.snapshot() == live_snapshot

    def test_batching_happens_under_load(self, tmp_path):
        # Many clients stalled behind a held lock arrive as one window.
        daemon = make_daemon(tmp_path, max_batch=64)
        with daemon:
            with daemon.lock:  # stall the batcher mid-pop
                threads = [
                    threading.Thread(
                        target=daemon.submit, args=([f"p{i}", "p0"],)
                    )
                    for i in range(10)
                ]
                for t in threads:
                    t.start()
                deadline = time.monotonic() + 10
                while daemon.accepted < 10:
                    assert time.monotonic() < deadline, "admission stalled"
                    time.sleep(0.005)
            for t in threads:
                t.join()
            assert daemon.accepted == 10
            # strictly fewer batches than requests proves coalescing
            assert daemon.batches < 10


class TestDurability:
    def test_ack_implies_journalled(self, tmp_path):
        daemon = make_daemon(tmp_path, snapshot_every=10_000)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            for spec in client_specs(0, n=5):
                client.submit(spec)
            # every acknowledged request is already on disk
            journal = Journal(tmp_path / "state.json.journal")
            assert journal.last_seq == 5

    def test_crash_recovers_bit_identically(self, tmp_path):
        daemon = make_daemon(tmp_path, snapshot_every=10_000)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            for spec in client_specs(1, n=6):
                client.submit(spec)
        # context exit = graceful stop; now simulate the crash variant
        daemon2_dir = tmp_path / "crash"
        daemon2_dir.mkdir()
        daemon2 = make_daemon(daemon2_dir, snapshot_every=10_000)
        daemon2.start()
        client = LandlordClient(f"http://127.0.0.1:{daemon2.port}")
        for spec in client_specs(1, n=6):
            client.submit(spec)
        live = daemon2.cache.snapshot()
        daemon2.kill()  # no drain, no final snapshot — a SIGKILL image
        cache, _, replayed = JournaledState(
            daemon2_dir / "state.json"
        ).load(SIZE.__getitem__)
        assert len(replayed) == 6  # nothing was covered by a snapshot
        assert cache.snapshot() == live

    def test_recovery_at_every_journalled_point(self, tmp_path):
        # A crash after any ack must replay to exactly the serial prefix.
        daemon = make_daemon(tmp_path, snapshot_every=10_000)
        specs = client_specs(2, n=8)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            for spec in specs:
                client.submit(spec)
            journal_lines = (
                (tmp_path / "state.json.journal")
                .read_text()
                .splitlines(keepends=True)
            )
            state_bytes = (tmp_path / "state.json").read_bytes()
        assert len(journal_lines) == 8
        for k in range(len(journal_lines) + 1):
            point = tmp_path / f"point{k}"
            point.mkdir()
            (point / "state.json").write_bytes(state_bytes)
            (point / "state.json.journal").write_text(
                "".join(journal_lines[:k])
            )
            recovered, _, replayed = JournaledState(
                point / "state.json"
            ).load(SIZE.__getitem__)
            assert len(replayed) == k
            serial = LandlordCache(500, 0.8, SIZE.__getitem__)
            for spec in specs[:k]:
                serial.request(frozenset(spec))
            assert recovered.snapshot() == serial.snapshot()

    def test_graceful_stop_compacts_journal(self, tmp_path):
        daemon = make_daemon(tmp_path, snapshot_every=10_000)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            client.submit(["p0", "p1"])
        # stop() wrote a covering snapshot and compacted the journal
        assert Journal(tmp_path / "state.json.journal").entries() == []
        cache, _, replayed = JournaledState(tmp_path / "state.json").load(
            SIZE.__getitem__
        )
        assert replayed == []
        assert cache.stats.requests == 1


class TestAdmissionControl:
    def test_queue_full_rejects_429(self, tmp_path):
        daemon = make_daemon(tmp_path, max_queue=2)
        with daemon._cond:  # white-box: pre-fill the admission queue
            daemon._queue.extend(
                _PendingSubmit(("p0",)) for _ in range(2)
            )
        status, payload = daemon.submit(["p0"])
        assert status == 429
        assert payload["retry"] is True
        assert daemon.rejected == 1
        with daemon._cond:
            daemon._queue.clear()

    def test_draining_rejects_503(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with daemon:
            pass  # started, drained, stopped
        status, payload = daemon.submit(["p0"])
        assert status == 503
        assert payload["retry"] is False

    def test_unknown_packages_rejected_before_journalling(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            with pytest.raises(Exception) as excinfo:
                client.submit(["p0", "zork"])
            assert excinfo.value.status == 400
        # the poison spec never reached the journal
        assert Journal(tmp_path / "state.json.journal").last_seq == 0

    def test_empty_spec_rejected(self, tmp_path):
        daemon = make_daemon(tmp_path)
        assert daemon.submit([])[0] == 400

    def test_http_protocol_errors(self, tmp_path):
        import urllib.error
        import urllib.request

        daemon = make_daemon(tmp_path)
        with daemon:
            url = f"http://127.0.0.1:{daemon.port}"

            def post(path, data, headers=None):
                request = urllib.request.Request(
                    url + path, data=data, method="POST",
                    headers=headers or {},
                )
                try:
                    with urllib.request.urlopen(request, timeout=5) as r:
                        return r.status, r.read()
                except urllib.error.HTTPError as error:
                    return error.code, error.read()

            assert post("/nope", b"{}")[0] == 404
            assert post("/submit", b"not json")[0] == 400
            assert post("/submit", b'{"packages": "p0"}')[0] == 400
            assert post("/submit", b'{"packages": [1, 2]}')[0] == 400


class TestObservabilitySurface:
    def test_metrics_statusz_healthz(self, tmp_path):
        registry = MetricsRegistry()
        slo = SloTracker(window=16)
        alerts = AlertEngine(registry=registry)
        daemon = make_daemon(
            tmp_path, registry=registry, slo=slo, alerts=alerts
        )
        daemon.cache.enable_metrics(registry)
        daemon.cache.enable_slo(slo)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            for spec in client_specs(3, n=4):
                client.submit(spec)
            body = client.metrics()
            validate_prometheus_text(body)
            assert (
                'service_submissions_total{outcome="accepted"} 4' in body
            )
            assert "service_batches_total" in body
            assert 'slo_window{series="queue_depth"}' in body
            assert "landlord_requests_total" in body

            status = client.status()
            assert status["service"]["accepted"] == 4
            assert status["service"]["draining"] is False
            assert status["service"]["max_queue"] == 1024
            assert status["lifetime"]["requests"] == 4
            assert "queue_depth" in status["window"]["series"]

            health = client.health()
            assert health["status"] == "ok"

    def test_root_404_lists_submit_endpoint(self, tmp_path):
        import urllib.error
        import urllib.request

        daemon = make_daemon(tmp_path)
        with daemon:
            try:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{daemon.port}/", timeout=5
                )
                pytest.fail("GET / should 404")
            except urllib.error.HTTPError as error:
                assert error.code == 404
                assert b"/submit" in error.read()

    def test_traces_flow_to_sidecar_for_explain(self, tmp_path):
        tracer = DecisionTracer(limit=64)
        trace_path = tmp_path / "trace.jsonl"
        daemon = make_daemon(
            tmp_path, tracer=tracer, trace_path=str(trace_path)
        )
        daemon.cache.enable_tracing(tracer)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            for spec in client_specs(4, n=3):
                client.submit(spec)
        traces = read_traces(trace_path)
        assert sorted(traces) == [0, 1, 2]
        assert "request #0" in traces[0].explain()

    def test_trace_path_required_with_tracer(self, tmp_path):
        with pytest.raises(ValueError, match="trace_path"):
            make_daemon(tmp_path, tracer=DecisionTracer())


class TestDistributedTracing:
    def test_submit_records_all_five_pipeline_stages(self, tmp_path):
        from repro.obs import SERVICE_STAGES, SpanRecorder

        daemon = make_daemon(tmp_path)
        client_spans = SpanRecorder(limit=64)
        with daemon:
            client = LandlordClient(
                f"http://127.0.0.1:{daemon.port}", spans=client_spans
            )
            reply = client.submit(["p1", "p2"])
            client.close()
        assert reply["trace_id"]
        trace = daemon.spans.trace(reply["trace_id"])
        assert trace is not None
        names = sorted(s["name"] for s in trace["spans"])
        assert names == sorted(SERVICE_STAGES)
        assert trace["request_index"] == reply["request_index"]
        # the client's root span shares the trace id, and the daemon's
        # stage spans all point at it as their parent
        (root,) = client_spans.spans()
        assert root.trace_id == reply["trace_id"]
        assert all(
            s["parent_id"] == root.span_id for s in trace["spans"]
        )

    def test_stage_durations_sum_within_client_e2e(self, tmp_path):
        from repro.obs import SpanRecorder

        daemon = make_daemon(tmp_path)
        client_spans = SpanRecorder(limit=64)
        with daemon:
            client = LandlordClient(
                f"http://127.0.0.1:{daemon.port}", spans=client_spans
            )
            reply = client.submit(["p3", "p4"])
            client.close()
        trace = daemon.spans.trace(reply["trace_id"])
        stage_sum = sum(s["duration"] for s in trace["spans"])
        (root,) = client_spans.spans()
        # The stages tile the server-side interval inside the client's
        # round trip; generous slack absorbs clock granularity (the
        # acceptance tolerance from the issue).
        assert stage_sum <= root.duration * 1.25 + 0.01

    def test_malformed_traceparent_starts_fresh_trace(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with daemon:
            status, payload = daemon.submit(
                ["p1"], traceparent="not-a-context"
            )
        assert status == 200
        assert len(payload["trace_id"]) == 32

    def test_valid_traceparent_is_continued(self, tmp_path):
        from repro.obs import format_traceparent

        daemon = make_daemon(tmp_path)
        trace_id = "ab" * 16
        with daemon:
            status, payload = daemon.submit(
                ["p1"], traceparent=format_traceparent(trace_id, "cd" * 8)
            )
        assert status == 200
        assert payload["trace_id"] == trace_id
        trace = daemon.spans.trace(trace_id)
        assert all(s["parent_id"] == "cd" * 8 for s in trace["spans"])

    def test_span_ring_stays_bounded_under_concurrent_clients(
        self, tmp_path
    ):
        limit = 25  # five 5-stage traces
        daemon = make_daemon(tmp_path, span_limit=limit, max_batch=4)
        barrier = threading.Barrier(4)

        def run_client(k):
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            barrier.wait()
            for spec in client_specs(k, n=6):
                client.submit(spec)
            client.close()

        with daemon:
            threads = [
                threading.Thread(target=run_client, args=(k,))
                for k in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(daemon.spans) <= limit
            # the survivors are complete recent spans, not torn halves
            assert daemon.spans.traces(last=1)

    def test_stop_flushes_in_flight_spans_before_final_snapshot(
        self, tmp_path
    ):
        # Submissions queued behind a held lock are still applied (and
        # their spans recorded) by the drain that stop() performs.
        daemon = make_daemon(tmp_path, max_batch=64)
        daemon.start()
        with daemon.lock:  # stall the batcher so submissions queue up
            threads = [
                threading.Thread(target=daemon.submit, args=([f"p{i}"],))
                for i in range(6)
            ]
            for t in threads:
                t.start()
            deadline = time.monotonic() + 10
            while daemon.accepted < 6:
                assert time.monotonic() < deadline, "admission stalled"
                time.sleep(0.005)
        daemon.stop()
        for t in threads:
            t.join()
        stage_stats = daemon.spans.stage_stats()
        assert stage_stats["apply"]["count"] == 6
        assert stage_stats["ack"]["count"] == 6
        # and the covering snapshot reflects every drained request
        reloaded, _, replayed = JournaledState(
            tmp_path / "state.json"
        ).load(SIZE.__getitem__)
        assert replayed == []
        assert reloaded.stats.requests == 6

    def test_traced_daemon_matches_untraced_serial_replay(self, tmp_path):
        # Tracing must never perturb decisions: drive the daemon with
        # explicit trace context on every submission, then replay the
        # same specs through a bare cache with no obs attached.
        from repro.obs import format_traceparent, new_span_id, new_trace_id

        daemon = make_daemon(tmp_path, max_batch=8)
        specs = client_specs(1, n=10)
        replies = []
        with daemon:
            for spec in specs:
                header = format_traceparent(new_trace_id(), new_span_id())
                status, payload = daemon.submit(spec, traceparent=header)
                assert status == 200
                replies.append(payload)
            live_snapshot = daemon.cache.snapshot()
        untraced = LandlordCache(500, 0.8, SIZE.__getitem__)
        for spec, reply in zip(specs, replies):
            decision = untraced.request(frozenset(spec))
            assert decision.action.value == reply["action"]
            assert decision.image.id == reply["image"]
        assert untraced.snapshot() == live_snapshot

    def test_exemplars_carry_trace_ids_into_the_scrape(self, tmp_path):
        from repro.obs import validate_openmetrics_text

        registry = MetricsRegistry()
        daemon = make_daemon(tmp_path, registry=registry)
        daemon.cache.enable_metrics(registry)
        with daemon:
            status, payload = daemon.submit(["p5", "p6"])
        assert status == 200
        text = registry.to_openmetrics()
        validate_openmetrics_text(text)
        # both the request-latency and stage histograms resolve the
        # slow bucket to this submission's trace
        assert f'trace_id="{payload["trace_id"]}"' in text
        assert "service_stage_seconds_bucket" in text

    def test_explain_cross_links_decisions_to_traces(self, tmp_path):
        tracer = DecisionTracer(limit=64)
        trace_path = tmp_path / "trace.jsonl"
        daemon = make_daemon(
            tmp_path, tracer=tracer, trace_path=str(trace_path)
        )
        daemon.cache.enable_tracing(tracer)
        with daemon:
            status, payload = daemon.submit(["p7", "p8"])
        assert status == 200
        narrative = tracer.explain(payload["request_index"])
        assert payload["trace_id"] in narrative
        assert "repro-landlord trace" in narrative
        # the sidecar persisted the link too
        persisted = read_traces(trace_path)[payload["request_index"]]
        assert persisted.trace_id == payload["trace_id"]

    def test_statusz_carries_stage_quantiles(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with daemon:
            daemon.submit(["p9"])
            status = daemon._status()
        stages = status["stages"]
        for stage in ("admission", "queue", "fsync", "apply", "ack"):
            assert stages[stage]["count"] >= 1
            assert stages[stage]["p95"] >= 0.0

    def test_client_traces_endpoint_round_trip(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            reply = client.submit(["p10", "p11"])
            payload = client.traces(5)
            client.close()
        trace_ids = [t["trace_id"] for t in payload["traces"]]
        assert reply["trace_id"] in trace_ids


class TestUnixSocket:
    def test_submit_over_unix_socket(self, tmp_path):
        sock = tmp_path / "landlord.sock"
        daemon = make_daemon(tmp_path, socket_path=str(sock))
        with daemon:
            assert sock.exists()
            client = LandlordClient(f"unix:{sock}")
            reply = client.submit(["p0", "p1"])
            assert reply["action"] == "insert"
            assert client.health()["status"] == "ok"
        assert not sock.exists()  # removed on shutdown

    def test_stale_socket_is_replaced(self, tmp_path):
        sock = tmp_path / "landlord.sock"
        daemon = make_daemon(tmp_path, socket_path=str(sock))
        with daemon:
            pass
        # leave a stale socket file behind, as a crashed daemon would
        sock.touch()
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        daemon2 = make_daemon(fresh_dir, socket_path=str(sock))
        with daemon2:
            assert LandlordClient(f"unix:{sock}").submit(["p2"])[
                "action"
            ] == "insert"


class TestLifecycle:
    def test_double_start_rejected(self, tmp_path):
        daemon = make_daemon(tmp_path)
        with daemon:
            with pytest.raises(RuntimeError, match="already started"):
                daemon.start()

    def test_stop_is_idempotent(self, tmp_path):
        daemon = make_daemon(tmp_path)
        daemon.start()
        daemon.stop()
        daemon.stop()

    def test_bad_bounds_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_queue"):
            make_daemon(tmp_path, max_queue=0)
        with pytest.raises(ValueError, match="max_batch"):
            make_daemon(tmp_path, max_batch=0)

    def test_port_and_url_resolve_after_start(self, tmp_path):
        daemon = make_daemon(tmp_path)
        assert daemon.port is None and daemon.url is None
        with daemon:
            assert daemon.port > 0
            assert daemon.url == f"http://127.0.0.1:{daemon.port}"

class TestFleetTelemetryIngest:
    def test_client_snapshot_appears_with_worker_label(self, tmp_path):
        from repro.obs.telemetry import TelemetryPusher

        registry = MetricsRegistry()
        daemon = make_daemon(tmp_path, registry=registry)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            for spec in client_specs(1, n=2):
                client.submit(spec)
            edge = MetricsRegistry()
            edge.counter("landlord_hits_total", "Hits.").inc(9)
            pusher = TelemetryPusher(
                f"http://127.0.0.1:{daemon.port}", worker="edge-1"
            )
            assert pusher.push(edge.snapshot(), final=True)
            body = client.metrics()
            validate_prometheus_text(body)
            # daemon's own families keep their unlabelled shape
            assert (
                'service_submissions_total{outcome="accepted"} 2' in body
            )
            # pushed client series carry the worker label, and land in
            # the aggregate too
            assert 'landlord_hits_total{worker="edge-1"} 9' in body
            assert "\nlandlord_hits_total 9\n" in f"\n{body}"
            status = client.status()
            assert status["telemetry"]["workers"]["edge-1"]["final"]

    def test_no_pushes_means_no_telemetry_block(self, tmp_path):
        registry = MetricsRegistry()
        daemon = make_daemon(tmp_path, registry=registry)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            client.submit(client_specs(1, n=1)[0])
            assert "telemetry" not in client.status()
            assert 'worker="' not in client.metrics()

    def test_openmetrics_scrape_with_fleet(self, tmp_path):
        import urllib.request

        from repro.obs import validate_openmetrics_text
        from repro.obs.telemetry import TelemetryPusher

        registry = MetricsRegistry()
        daemon = make_daemon(tmp_path, registry=registry)
        with daemon:
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            client.submit(client_specs(2, n=1)[0])
            edge = MetricsRegistry()
            edge.counter("landlord_hits_total").inc(1)
            TelemetryPusher(
                f"http://127.0.0.1:{daemon.port}", worker="edge-1"
            ).push(edge.snapshot())
            with urllib.request.urlopen(
                f"http://127.0.0.1:{daemon.port}/metrics"
                "?format=openmetrics",
                timeout=5,
            ) as response:
                assert response.headers["Content-Type"].startswith(
                    "application/openmetrics-text"
                )
                body = response.read().decode()
        validate_openmetrics_text(body)
        assert 'landlord_hits_total{worker="edge-1"} 1' in body

    def test_malformed_telemetry_post_is_400(self, tmp_path):
        import urllib.error
        import urllib.request

        daemon = make_daemon(tmp_path, registry=MetricsRegistry())
        with daemon:
            request = urllib.request.Request(
                f"http://127.0.0.1:{daemon.port}/telemetry",
                data=b'{"worker": "w", "mode": "bogus"}',
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                urllib.request.urlopen(request, timeout=5)
                pytest.fail("malformed telemetry should 400")
            except urllib.error.HTTPError as error:
                assert error.code == 400
            # the daemon still accepts submissions afterwards
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            reply = client.submit(client_specs(5, n=1)[0])
            assert reply["action"] in {"hit", "merge", "insert"}


class TestAdaptiveMaxBatch:
    def test_bad_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_daemon(tmp_path, max_batch="fast")
        with pytest.raises(ValueError):
            make_daemon(tmp_path, max_batch=0)
        with pytest.raises(ValueError):
            make_daemon(tmp_path, max_batch="auto", ack_budget=0.0)

    def test_governor_follows_latency_and_backlog(self, tmp_path):
        daemon = make_daemon(tmp_path, max_batch="auto", ack_budget=1.0)
        governor = daemon._governor
        assert governor is not None
        assert daemon.max_batch == governor.size == 256

        # A fast window with an empty queue holds: the cap was not the
        # binding constraint, so growing it would be guesswork.
        daemon._govern(0.01)
        assert daemon.max_batch == 256
        assert governor.holds == 1

        # The same fast window popped off a backlog grows additively.
        with daemon._cond:
            daemon._queue.append(_PendingSubmit(("p0",)))
        daemon._govern(0.01)
        assert daemon.max_batch == 256 + 32
        assert governor.increases == 1

        # Blowing the ack budget shrinks multiplicatively even with the
        # queue drained — latency protection beats throughput probing.
        with daemon._cond:
            daemon._queue.clear()
        daemon._govern(5.0)
        assert daemon.max_batch == 144
        assert governor.decreases == 1
        assert governor.last_signal == 1.0

    def test_fixed_max_batch_has_no_governor(self, tmp_path):
        daemon = make_daemon(tmp_path, max_batch=8)
        assert daemon._governor is None
        daemon._govern(5.0)  # no-op without a governor
        assert daemon.max_batch == 8
        assert "batch_governor" not in daemon._status()["service"]

    def test_auto_daemon_matches_serial_replay(self, tmp_path):
        daemon = make_daemon(
            tmp_path, max_batch="auto", ack_budget=0.05,
            registry=MetricsRegistry(),
        )
        replies = []
        replies_lock = threading.Lock()
        barrier = threading.Barrier(3)

        def run_client(k):
            client = LandlordClient(f"http://127.0.0.1:{daemon.port}")
            barrier.wait()
            for spec in client_specs(k):
                reply = client.submit(spec)
                with replies_lock:
                    replies.append((reply["request_index"], spec, reply))
            client.close()

        with daemon:
            threads = [
                threading.Thread(target=run_client, args=(k,))
                for k in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            live_snapshot = daemon.cache.snapshot()
            status = daemon._status()

        assert sorted(r[0] for r in replies) == list(range(24))
        serial = LandlordCache(500, 0.8, SIZE.__getitem__)
        for index, spec, reply in sorted(replies):
            decision = serial.request(frozenset(spec))
            assert decision.action.value == reply["action"]
            assert decision.image.id == reply["image"]
        assert serial.snapshot() == live_snapshot

        # The governor stepped once per applied window and its state is
        # published on /statusz; max_batch tracks the governed size.
        governor = status["service"]["batch_governor"]
        assert governor["steps"] == status["service"]["batches"]
        assert status["service"]["max_batch"] == governor["size"]

        # The scrape carries the governed batch size gauge.
        text = daemon.registry.to_prometheus()
        validate_prometheus_text(text)
        assert "service_batch_size" in text
        assert "service_dirty_rate" in text
