#!/usr/bin/env python3
"""Render committed-vs-regenerated benchmark deltas as a Markdown table.

CI regenerates ``BENCH_cache.json`` / ``BENCH_sweep.json`` on every run;
this script diffs each regenerated file against the committed baseline
(``git show <ref>:<file>``) and prints one GitHub-flavoured Markdown
table per file, meant for ``$GITHUB_STEP_SUMMARY``::

    python scripts/bench_summary.py BENCH_cache.json BENCH_sweep.json \
        >> "$GITHUB_STEP_SUMMARY"

Nested payloads (the ``{"scales": {...}}`` layout of BENCH_cache.json)
are flattened to dotted keys.  Only scalar leaves are compared; numeric
deltas carry a sign and a percentage so regressions read at a glance.
A missing baseline (new file, shallow clone) degrades to a
current-only table rather than failing the build.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, Optional

Scalar = object  # int | float | bool | str | None


def flatten(doc: object, prefix: str = "") -> Dict[str, Scalar]:
    """Dotted-key view of a nested JSON document's scalar leaves."""
    out: Dict[str, Scalar] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            out.update(flatten(value, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = doc
    return out


def baseline_of(path: Path, ref: str) -> Optional[dict]:
    """The committed version of ``path`` at ``ref``, or None."""
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{path.as_posix()}"],
            capture_output=True, check=True, cwd=path.parent or Path("."),
        ).stdout
        return json.loads(blob)
    except (subprocess.CalledProcessError, OSError, ValueError):
        return None


def _fmt(value: Scalar) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _delta(old: Scalar, new: Scalar) -> str:
    if old == new:
        return ""
    if isinstance(old, bool) or isinstance(new, bool):
        return "changed"
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        diff = new - old
        pct = f" ({diff / old:+.1%})" if old else ""
        return f"{diff:+g}{pct}"
    return "changed"


def _adaptive_highlight(doc: object) -> Optional[str]:
    """One-line adaptive-vs-fixed readout for BENCH_cache's ``adaptive``
    scale, so the governor's win (or regression) reads without scanning
    the full table."""
    if not isinstance(doc, dict):
        return None
    payload = (doc.get("scales") or {}).get("adaptive")
    if not isinstance(payload, dict):
        return None
    fixed = payload.get("fixed_requests_per_second")
    auto = payload.get("adaptive_requests_per_second")
    ratio = payload.get("adaptive_vs_fixed")
    if fixed is None or auto is None:
        return None
    line = (
        f"**Adaptive batching:** {auto} req/s (auto) vs {fixed} req/s "
        f"(fixed-{payload.get('fixed_batch_size', '?')}) — "
        f"{ratio}x, {payload.get('compactions', 0)} compaction(s) "
        f"reclaiming {payload.get('rows_reclaimed', 0)} row(s)"
    )
    if payload.get("degraded_single_cpu"):
        line += " _(single-CPU runner; gate informational)_"
    return line


def summarize(path: Path, ref: str) -> str:
    doc = json.loads(path.read_text())
    current = flatten(doc)
    baseline_doc = baseline_of(path, ref)
    lines = [f"### {path.name}", ""]
    highlight = _adaptive_highlight(doc)
    if highlight:
        lines += [highlight, ""]
    if baseline_doc is None:
        lines += ["| metric | value |", "|---|---|"]
        lines += [f"| {k} | {_fmt(v)} |" for k, v in sorted(current.items())]
        lines += ["", f"_No committed baseline at `{ref}`._", ""]
        return "\n".join(lines)
    baseline = flatten(baseline_doc)
    lines += [
        f"| metric | committed (`{ref}`) | this run | delta |",
        "|---|---|---|---|",
    ]
    for key in sorted(baseline.keys() | current.keys()):
        old = baseline.get(key, "—")
        new = current.get(key, "—")
        delta = _delta(old, new) if key in baseline and key in current else "new" \
            if key not in baseline else "removed"
        lines.append(f"| {key} | {_fmt(old)} | {_fmt(new)} | {delta} |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", type=Path,
                        help="regenerated benchmark JSON files to diff")
    parser.add_argument("--ref", default="HEAD",
                        help="git ref holding the committed baseline "
                        "(default: %(default)s)")
    args = parser.parse_args(argv)
    failures = 0
    print("## Benchmark deltas\n")
    for path in args.files:
        if not path.exists():
            print(f"### {path.name}\n\n_Not regenerated in this run._\n")
            continue
        try:
            print(summarize(path, args.ref))
        except ValueError as exc:
            print(f"### {path.name}\n\n_Unreadable: {exc}_\n")
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
