#!/usr/bin/env python3
"""Validate a fleet-telemetry scrape: formats, labels, and arithmetic.

The CI fleet smoke step runs ``sweep --serve``, scrapes ``/metrics`` in
both exposition formats, and pipes the bodies through this checker::

    python scripts/check_fleet_scrape.py scrape.prom scrape.om \
        --workers 4 --cells 8

Checks, beyond what :mod:`repro.obs.promcheck` already enforces on
each body:

- both bodies validate under their strict format checker;
- at least ``--workers`` distinct ``worker="..."`` label values appear;
- for every counter family that has per-worker series, the aggregated
  (worker-less) sample equals the sum of the per-worker samples for
  the same residual label set — the fleet arithmetic a dashboard's
  "total" row silently depends on;
- with ``--cells N``, the classic body's ``/statusz`` companion JSON
  (``--status``) reports exactly ``N`` folded cells and completion.

Exit code 0 on success; 1 with a diagnostic on the first violation.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import defaultdict

from repro.obs.promcheck import (
    validate_openmetrics_text,
    validate_prometheus_text,
)

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>[^ ]+)"
)
_WORKER = re.compile(r'worker="([^"]*)"')


def _counter_families(text: str) -> set:
    return {
        line.split(" ")[2]
        for line in text.splitlines()
        if line.startswith("# TYPE ") and line.endswith(" counter")
    }


def _strip_worker(labels: str) -> str:
    residual = [
        part for part in labels.split(",")
        if part and not part.startswith("worker=")
    ]
    return ",".join(residual)


def check_fleet_arithmetic(text: str, min_workers: int) -> None:
    """Aggregate counter == sum of its per-worker series, per label set."""
    counters = _counter_families(text)
    aggregated = {}
    per_worker = defaultdict(float)
    workers = set()
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if not match:
            continue
        name = re.sub(r"_(total|created)$", "", match.group("name"))
        if name not in counters and match.group("name") not in counters:
            continue
        labels = match.group("labels") or ""
        value = float(match.group("value"))
        found = _WORKER.search(labels)
        key = (match.group("name"), _strip_worker(labels))
        if found:
            workers.add(found.group(1))
            per_worker[key] += value
        else:
            aggregated[key] = value
    if len(workers) < min_workers:
        raise SystemExit(
            f"expected >= {min_workers} workers in the scrape, "
            f"found {len(workers)}: {sorted(workers)}"
        )
    checked = 0
    for key, total in per_worker.items():
        if key not in aggregated:
            raise SystemExit(
                f"per-worker series {key} has no aggregated counterpart"
            )
        if aggregated[key] != total:
            raise SystemExit(
                f"fleet arithmetic broken for {key}: aggregate "
                f"{aggregated[key]} != per-worker sum {total}"
            )
        checked += 1
    if not checked:
        raise SystemExit("no per-worker counter series found to check")
    print(
        f"fleet arithmetic ok: {checked} counter series, "
        f"{len(workers)} workers"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("classic", help="classic-format scrape body file")
    parser.add_argument("openmetrics",
                        help="openmetrics-format scrape body file")
    parser.add_argument("--workers", type=int, default=1,
                        help="minimum distinct worker labels expected")
    parser.add_argument("--cells", type=int, default=None,
                        help="exact folded cell count expected in --status")
    parser.add_argument("--status", default=None,
                        help="optional /statusz JSON body to cross-check")
    args = parser.parse_args(argv)

    classic = open(args.classic, encoding="utf-8").read()
    openmetrics = open(args.openmetrics, encoding="utf-8").read()
    validate_prometheus_text(classic)
    validate_openmetrics_text(openmetrics)
    print("exposition formats ok (prometheus + openmetrics)")
    check_fleet_arithmetic(classic, args.workers)
    check_fleet_arithmetic(openmetrics, args.workers)
    if args.status:
        status = json.load(open(args.status, encoding="utf-8"))
        telemetry = status.get("telemetry", {})
        if not telemetry.get("complete"):
            raise SystemExit("statusz does not report the run complete")
        folded = telemetry.get("cells", {}).get("folded")
        if args.cells is not None and folded != args.cells:
            raise SystemExit(
                f"statusz reports {folded} folded cells, "
                f"expected {args.cells}"
            )
        print(f"statusz ok: complete, {folded} cells folded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
