"""Benchmark: the adaptive-alpha study."""

from repro.experiments import adaptive_study


def test_adaptive_study(benchmark, scale):
    results = benchmark.pedantic(
        adaptive_study.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    adaptive = results["configs"][-1]
    fixed_high = results["configs"][1]
    assert (
        adaptive["phases"][1]["write_amplification"]
        < fixed_high["phases"][1]["write_amplification"]
    )
