"""Benchmark: regenerate Figure 2 (LHC benchmark application table)."""

from repro.experiments import fig2_benchmarks


def test_fig2_lhc_benchmarks(benchmark, scale):
    results = benchmark.pedantic(
        fig2_benchmarks.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    rows = results["apps"]
    assert len(rows) == 7
    for row in rows:
        # Model-minimal images within 50% of the paper's column.
        assert abs(row["model_image"] - row["paper_image"]) \
            < 0.5 * row["paper_image"]
        assert row["model_repo"] == row["full_repo"]
