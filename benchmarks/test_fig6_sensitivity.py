"""Benchmark: regenerate Figure 6 (efficiency vs cache size / job count)."""

from repro.experiments import fig6_sensitivity


def test_fig6_parameter_sensitivity(benchmark, scale):
    # 7 sweeps; keep repetitions modest in the timing harness.
    bench_scale = scale.with_(repetitions=min(scale.repetitions, 3))
    results = benchmark.pedantic(
        fig6_sensitivity.run, args=(bench_scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    by_cache = results["by_cache"]
    assert len(by_cache) == 4
    mid = len(by_cache[0].alphas) - 2
    # bigger caches: container efficiency does not improve
    assert (
        by_cache[-1].metric("container_efficiency")[mid]
        <= by_cache[0].metric("container_efficiency")[mid] + 0.05
    )
    assert len(results["by_jobs"]) == 3
