"""Benchmark: regenerate Figure 5 (single-simulation timeline)."""

import numpy as np

from repro.experiments import fig5_single_run


def test_fig5_single_simulation(benchmark, scale):
    results = benchmark.pedantic(
        fig5_single_run.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    final = results["final"]
    timeline = results["timeline"]
    # merges dominate operations at α = 0.75
    assert final["merges"] > 0
    # cached data saturates under the capacity (plus pinned-image slack)
    assert timeline["cached_bytes"].max() <= scale.capacity * 1.5
    # hits keep rising; writes are cumulative
    assert timeline["hits"][-1] >= timeline["hits"][0]
    assert np.all(np.diff(timeline["bytes_written"]) >= 0)
