"""Benchmark: multi-tenant isolation overhead study."""

from repro.experiments import tenancy_overhead


def test_tenancy_overhead(benchmark, scale):
    results = benchmark.pedantic(
        tenancy_overhead.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    modes = results["modes"]
    assert (
        modes["isolated"]["unique_bytes"] > modes["shared"]["unique_bytes"]
    )
