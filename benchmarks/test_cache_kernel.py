"""Benchmark: the vectorized decision engine vs the naive reference.

The tentpole perf claim (DESIGN.md, "Decision-engine internals") is that
``engine="vectorized"`` — one ``uint64`` bit matrix answering the hit
scan with a filtered subset test, the merge scan with a batched popcount
intersection, and eviction with lazy-deletion heaps — beats the naive
per-image Python loops by a wide margin on a Figure-4-shaped workload,
while staying bit-identical (same decisions, stats, events, snapshots).

The workload here is the quick-scale repository with a low merge
threshold (α at the bottom of the Figure-4 grid) and a capacity chosen
so images *accumulate*: thousands of requests against a cache holding
thousands of images, which is exactly where the naive O(cache size)
per-request scans hurt.  Both engines replay the identical spec stream;
the snapshots are asserted equal, so the seconds measure the same
decisions.

Running this file writes ``BENCH_cache.json`` at the repository root —
the committed record of both timings and the speedup ratio.  CI runs it
as a regression gate: the vectorized engine being slower than naive
(speedup < ``GATE_MIN_SPEEDUP``) fails the build.  Like
``BENCH_sweep.json``, the payload records ``cpu_count`` and a
``degraded_single_cpu`` flag so readers can weigh numbers from starved
single-CPU runners (the kernels are single-threaded, so the gate itself
still applies there).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from time import perf_counter

from repro.core.cache import LandlordCache
from repro.experiments.common import QUICK, base_config
from repro.htc.simulator import build_stream, make_workload
from repro.packages.sft import build_experiment_repository
from repro.util.rng import spawn
from repro.util.units import GB

REPO_ROOT = Path(__file__).resolve().parents[1]

# The committed BENCH_cache.json shows >=3x; the CI gate only requires
# the vectorized engine to not be *slower*, so timer noise on loaded
# runners cannot flake the build.
GATE_MIN_SPEEDUP = 1.0

# Acceptance floors for the workload shape itself.
MIN_REQUESTS = 1_000
MIN_IMAGES = 200

# Figure-4-shaped, sized so the cache accumulates thousands of images:
# alpha at the low end of the Fig-4 grid (few merges), capacity far above
# the working set (no eviction churn hiding scan cost), 2500 unique specs
# each repeated 4 times (hit-heavy steady state, like the paper's
# repeated-selection streams).
ALPHA = 0.1
N_UNIQUE = 2_500
REPEATS = 4
CAPACITY = 50_000 * GB
ROUNDS = 3  # best-of timing rounds per engine


def _build_stream():
    config = base_config(
        QUICK, seed=2020, alpha=ALPHA, n_unique=N_UNIQUE, repeats=REPEATS,
        scheme="random", capacity=CAPACITY, record_timeline=False,
    )
    repository = build_experiment_repository(
        config.repo_kind, seed=config.seed,
        n_packages=config.n_packages,
        target_total_size=config.repo_total_size,
    )
    workload = make_workload(config, repository)
    rng = spawn(config.seed, "workload", config.scheme, config.n_unique)
    stream = list(
        build_stream(
            workload, rng, n_unique=config.n_unique, repeats=config.repeats
        )
    )
    return config, repository, stream


def _time_engine(config, repository, stream, engine: str):
    """Best-of-ROUNDS wall time of the raw request loop; returns the
    final-round cache so callers can compare end states."""
    best = float("inf")
    cache = None
    for _ in range(ROUNDS):
        cache = LandlordCache(
            config.capacity, config.alpha, repository.size_of, engine=engine
        )
        t0 = perf_counter()
        for spec in stream:
            cache.request(spec)
        best = min(best, perf_counter() - t0)
    return best, cache


def test_vectorized_engine_not_slower_than_naive():
    config, repository, stream = _build_stream()
    assert len(stream) >= MIN_REQUESTS

    naive_s, naive_cache = _time_engine(config, repository, stream, "naive")
    vec_s, vec_cache = _time_engine(config, repository, stream, "vectorized")

    # The seconds are only comparable if the engines made the same
    # decisions — which they must, bit-identically.
    assert naive_cache.snapshot() == vec_cache.snapshot()
    assert len(vec_cache) >= MIN_IMAGES

    speedup = naive_s / vec_s if vec_s > 0 else float("inf")
    cpu_count = os.cpu_count() or 1
    payload = {
        "scale": "quick",
        "seed": 2020,
        "alpha": ALPHA,
        "scheme": "random",
        "requests": len(stream),
        "unique_specs": N_UNIQUE,
        "repeats": REPEATS,
        "final_images": len(vec_cache),
        "rounds": ROUNDS,
        "naive_seconds": round(naive_s, 3),
        "vectorized_seconds": round(vec_s, 3),
        "speedup": round(speedup, 3),
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "cpu_count": cpu_count,
        "degraded_single_cpu": cpu_count < 2,
    }
    (REPO_ROOT / "BENCH_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert speedup >= GATE_MIN_SPEEDUP, payload
