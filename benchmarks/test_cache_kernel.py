"""Benchmark: the vectorized decision engine vs the naive reference.

The tentpole perf claim (DESIGN.md, "Decision-engine internals") is that
``engine="vectorized"`` — one ``uint64`` bit matrix answering the hit
scan with a filtered subset test, the merge scan with a count-window
prefiltered popcount intersection, and eviction with lazy-deletion
heaps — beats the naive per-image Python loops by a wide margin on a
Figure-4-shaped workload, while staying bit-identical (same decisions,
stats, events, snapshots).

Two scales, recorded side by side under ``{"scales": {...}}`` in
``BENCH_cache.json`` at the repository root:

- ``quick`` (always runs, the CI regression gate): thousands of
  requests against a cache holding thousands of images — exactly where
  the naive O(cache size) per-request scans start to hurt.  Both
  engines replay the identical spec stream end to end; the snapshots
  are asserted equal, so the seconds measure the same decisions.
- ``adaptive`` (always runs): fixed-256 vs ``batch_size="auto"`` on a
  phase-change workload — hit-heavy steady state, a mass idle-eviction
  (which fires the live-row compaction), then a churny unique-spec
  phase under capacity pressure.  The AIMD governor grows the window
  while the dirty rate is low and shrinks it when repair dominates;
  the gate is adaptive never slower than fixed-256.
- ``large`` (opt-in via ``REPRO_BENCH_LARGE=1``; takes ~10 minutes):
  one million requests over 100k unique specifications, driven through
  ``LandlordCache.submit_batch`` so the batched hit kernel amortises
  the full-matrix scan across lanes.  A full naive replay at this
  scale is infeasible (hours), so the naive engine is timed on a
  *continuation slice*: the vectorized cache's mid-stream snapshot is
  restored into both engines, which then replay the same slice of the
  stream — bit-identity is asserted on the resulting snapshots and the
  per-request ratio is the recorded speedup.

CI runs the quick scale as a regression gate: the vectorized engine
being slower than naive (speedup < ``GATE_MIN_SPEEDUP``) fails the
build.  Like ``BENCH_sweep.json``, each scale records ``cpu_count`` and
a ``degraded_single_cpu`` flag so readers can weigh numbers from
starved single-CPU runners; the large scale's 10× target gate degrades
to never-slower on such runners (the kernels are single-threaded, but
a contended runner adds noise the quick gate already bounds).
"""

from __future__ import annotations

import json
import os
import resource
from pathlib import Path
from time import perf_counter

import pytest

from repro.core.cache import LandlordCache
from repro.experiments.common import QUICK, base_config
from repro.htc.simulator import build_stream, make_workload
from repro.packages.sft import build_experiment_repository
from repro.util.rng import spawn
from repro.util.units import GB

REPO_ROOT = Path(__file__).resolve().parents[1]

# The committed BENCH_cache.json shows >=3x (quick) / >=10x (large); the
# CI gate only requires the vectorized engine to not be *slower*, so
# timer noise on loaded runners cannot flake the build.
GATE_MIN_SPEEDUP = 1.0
LARGE_GATE_SPEEDUP = 10.0

# Acceptance floors for the workload shapes themselves.
MIN_REQUESTS = 1_000
MIN_IMAGES = 200
LARGE_MIN_REQUESTS = 1_000_000
LARGE_MIN_UNIQUE = 100_000

# Figure-4-shaped, sized so the cache accumulates thousands of images:
# alpha at the low end of the Fig-4 grid (few merges), capacity far above
# the working set (no eviction churn hiding scan cost), 2500 unique specs
# each repeated 4 times (hit-heavy steady state, like the paper's
# repeated-selection streams).
ALPHA = 0.1
N_UNIQUE = 2_500
REPEATS = 4
CAPACITY = 50_000 * GB
ROUNDS = 3  # best-of timing rounds per engine

# Phase-change workload for the adaptive-batching bench: a hit-heavy
# steady state (low dirty rate, where the AIMD governor grows the window
# past the fixed 256), a mass idle-eviction at the phase boundary (the
# dead-row fraction spike that triggers live-row compaction), then a
# churny unique-spec phase under capacity pressure (high dirty rate,
# where the governor shrinks the window below the 64-dirty re-prediction
# threshold that fixed-256 keeps tripping).
ADAPTIVE_A_UNIQUE = 400
ADAPTIVE_A_REPEATS = 10     # 4000 hit-heavy requests
ADAPTIVE_B_UNIQUE = 2_500   # 2500 churny one-shot requests
ADAPTIVE_IDLE_WINDOW = 1    # evict everything idle at the boundary
ADAPTIVE_HEADROOM = 1.2     # capacity = phase-A working set x this

# The large scale stretches the same shape three orders of magnitude:
# 100k unique specs x 10 repeats = 1M requests accumulating toward 100k
# live images under an effectively unbounded capacity.
LARGE_N_UNIQUE = 100_000
LARGE_REPEATS = 10
LARGE_CAPACITY = 1_000_000 * GB
LARGE_BATCH = 256        # submit_batch window for the timed full run
LARGE_SNAP_AT = 500_000  # where the continuation slice starts
LARGE_WARM = 64          # untimed requests absorbing restore warm-up
LARGE_SLICE = 300        # timed continuation requests per engine


def _merge_bench(scale_name: str, payload: dict) -> dict:
    """Write one scale's payload into BENCH_cache.json, keeping others."""
    path = REPO_ROOT / "BENCH_cache.json"
    doc: dict = {}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except ValueError:
            doc = {}
    if not isinstance(doc.get("scales"), dict):
        doc = {"scales": {}}  # migrate the legacy flat layout
    doc["scales"][scale_name] = payload
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def _peak_rss_mb() -> int:
    """Peak resident set size of this process in MiB (ru_maxrss is KiB
    on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss // 1024


def _build_stream(n_unique: int, repeats: int, capacity: int):
    config = base_config(
        QUICK, seed=2020, alpha=ALPHA, n_unique=n_unique, repeats=repeats,
        scheme="random", capacity=capacity, record_timeline=False,
    )
    repository = build_experiment_repository(
        config.repo_kind, seed=config.seed,
        n_packages=config.n_packages,
        target_total_size=config.repo_total_size,
    )
    workload = make_workload(config, repository)
    rng = spawn(config.seed, "workload", config.scheme, config.n_unique)
    stream = list(
        build_stream(
            workload, rng, n_unique=config.n_unique, repeats=config.repeats
        )
    )
    return config, repository, stream


def _time_engine(config, repository, stream, engine: str):
    """Best-of-ROUNDS wall time of the raw request loop; returns the
    final-round cache so callers can compare end states."""
    best = float("inf")
    cache = None
    for _ in range(ROUNDS):
        cache = LandlordCache(
            config.capacity, config.alpha, repository.size_of, engine=engine
        )
        t0 = perf_counter()
        for spec in stream:
            cache.request(spec)
        best = min(best, perf_counter() - t0)
    return best, cache


def test_vectorized_engine_not_slower_than_naive():
    config, repository, stream = _build_stream(N_UNIQUE, REPEATS, CAPACITY)
    assert len(stream) >= MIN_REQUESTS

    naive_s, naive_cache = _time_engine(config, repository, stream, "naive")
    vec_s, vec_cache = _time_engine(config, repository, stream, "vectorized")

    # The seconds are only comparable if the engines made the same
    # decisions — which they must, bit-identically.
    assert naive_cache.snapshot() == vec_cache.snapshot()
    assert len(vec_cache) >= MIN_IMAGES

    speedup = naive_s / vec_s if vec_s > 0 else float("inf")
    cpu_count = os.cpu_count() or 1
    payload = {
        "seed": 2020,
        "alpha": ALPHA,
        "scheme": "random",
        "requests": len(stream),
        "unique_specs": N_UNIQUE,
        "repeats": REPEATS,
        "final_images": len(vec_cache),
        "rounds": ROUNDS,
        "naive_seconds": round(naive_s, 3),
        "vectorized_seconds": round(vec_s, 3),
        "requests_per_second": round(len(stream) / vec_s) if vec_s else None,
        "speedup": round(speedup, 3),
        "gate_min_speedup": GATE_MIN_SPEEDUP,
        "cpu_count": cpu_count,
        "degraded_single_cpu": cpu_count < 2,
    }
    _merge_bench("quick", payload)

    assert speedup >= GATE_MIN_SPEEDUP, payload


def _build_phase_change():
    """The adaptive bench's two-phase stream over one repository."""
    config = base_config(
        QUICK, seed=2020, alpha=ALPHA, n_unique=ADAPTIVE_A_UNIQUE,
        repeats=ADAPTIVE_A_REPEATS, scheme="random", capacity=CAPACITY,
        record_timeline=False,
    )
    repository = build_experiment_repository(
        config.repo_kind, seed=config.seed,
        n_packages=config.n_packages,
        target_total_size=config.repo_total_size,
    )
    workload = make_workload(config, repository)
    phase_a = list(build_stream(
        workload, spawn(config.seed, "adaptive", "phase-a"),
        n_unique=ADAPTIVE_A_UNIQUE, repeats=ADAPTIVE_A_REPEATS,
    ))
    phase_b = list(build_stream(
        workload, spawn(config.seed, "adaptive", "phase-b"),
        n_unique=ADAPTIVE_B_UNIQUE, repeats=1,
    ))
    # Size the capacity off an untimed phase-A run so the steady state
    # fits comfortably while phase B's one-shot specs churn against it.
    probe = LandlordCache(CAPACITY, ALPHA, repository.size_of)
    for spec in phase_a:
        probe.request(spec)
    capacity = int(probe.cached_bytes * ADAPTIVE_HEADROOM)
    return capacity, repository, phase_a, phase_b


def _run_phase_change(capacity, repository, phase_a, phase_b,
                      engine: str, batch_size):
    """One timed pass over the phase-change workload; best of ROUNDS.

    The boundary ``evict_idle`` is part of the scripted workload (every
    variant replays it identically), so snapshots stay comparable."""
    best = float("inf")
    cache = None
    governors = {}
    for _ in range(ROUNDS):
        cache = LandlordCache(
            capacity, ALPHA, repository.size_of, engine=engine
        )
        governors = {}
        t0 = perf_counter()
        if batch_size != 0:
            cache.submit_batch(phase_a, batch_size=batch_size)
            if cache.last_batch_governor is not None:
                governors["phase_a"] = cache.last_batch_governor.status()
            cache.evict_idle(ADAPTIVE_IDLE_WINDOW)
            cache.submit_batch(phase_b, batch_size=batch_size)
            if cache.last_batch_governor is not None:
                governors["phase_b"] = cache.last_batch_governor.status()
        else:
            for spec in phase_a:
                cache.request(spec)
            cache.evict_idle(ADAPTIVE_IDLE_WINDOW)
            for spec in phase_b:
                cache.request(spec)
        best = min(best, perf_counter() - t0)
    return best, cache, governors


def test_adaptive_batching_not_slower_than_fixed():
    """``batch_size="auto"`` vs fixed-256 on the phase-change workload.

    Fixed-256 is structurally suboptimal on both sides of the phase
    boundary: during the hit-heavy phase it pays per-window dispatch the
    governor amortises by growing, and during the churny phase its wide
    windows keep crossing the 64-dirty re-prediction threshold that the
    shrunken adaptive window stays under.  The gate is never-slower
    (ratio >= 1), degraded to informational on single-CPU runners the
    same way the large-scale gate degrades.
    """
    capacity, repository, phase_a, phase_b = _build_phase_change()
    n_requests = len(phase_a) + len(phase_b)
    assert n_requests >= MIN_REQUESTS

    fixed_s, fixed_cache, _ = _run_phase_change(
        capacity, repository, phase_a, phase_b, "vectorized", 256
    )
    auto_s, auto_cache, governors = _run_phase_change(
        capacity, repository, phase_a, phase_b, "vectorized", "auto"
    )
    naive_s, naive_cache, _ = _run_phase_change(
        capacity, repository, phase_a, phase_b, "naive", 0
    )

    # Window boundaries never affect decisions: fixed windows, governed
    # windows and the naive sequential replay end bit-identical.
    assert fixed_cache.snapshot() == auto_cache.snapshot()
    assert naive_cache.snapshot() == auto_cache.snapshot()

    compaction = dict(auto_cache._engine.compaction_stats)
    batch_stats = dict(auto_cache._engine.batch_stats)
    assert set(governors) == {"phase_a", "phase_b"}
    # The governor must actually adapt: grow somewhere in the hit-heavy
    # phase, shrink under phase-B churn, and the boundary eviction must
    # have fired at least one live-row compaction.
    assert governors["phase_a"]["increases"] >= 1, governors
    assert governors["phase_b"]["decreases"] >= 1, governors
    assert compaction["compactions"] >= 1, compaction

    ratio = fixed_s / auto_s if auto_s > 0 else float("inf")
    cpu_count = os.cpu_count() or 1
    degraded = cpu_count < 2
    payload = {
        "seed": 2020,
        "alpha": ALPHA,
        "scheme": "random",
        "requests": n_requests,
        "phase_a_requests": len(phase_a),
        "phase_b_requests": len(phase_b),
        "capacity_bytes": capacity,
        "final_images": len(auto_cache),
        "rounds": ROUNDS,
        "naive_seconds": round(naive_s, 3),
        "fixed_batch_size": 256,
        "fixed_seconds": round(fixed_s, 3),
        "fixed_requests_per_second": (
            round(n_requests / fixed_s) if fixed_s else None
        ),
        "adaptive_seconds": round(auto_s, 3),
        "adaptive_requests_per_second": (
            round(n_requests / auto_s) if auto_s else None
        ),
        "adaptive_vs_fixed": round(ratio, 3),
        "governor_phase_a": governors["phase_a"],
        "governor_phase_b": governors["phase_b"],
        "batch_windows": batch_stats["windows"],
        "compactions": compaction["compactions"],
        "rows_reclaimed": compaction["rows_reclaimed"],
        "gate_min_ratio": 0.0 if degraded else GATE_MIN_SPEEDUP,
        "cpu_count": cpu_count,
        "degraded_single_cpu": degraded,
    }
    _merge_bench("adaptive", payload)

    assert ratio >= payload["gate_min_ratio"], payload


def _replay_from(snapshot, config, repository, stream, engine: str,
                 batch_size=0):
    """Restore ``snapshot`` into a fresh cache of ``engine`` kind, absorb
    warm-up (lazy index builds) untimed, then time the continuation
    slice.  ``batch_size`` follows ``submit_batch``: 0 replays
    sequentially, N uses fixed windows, ``"auto"`` the AIMD governor.
    Returns (seconds, final snapshot)."""
    cache = LandlordCache(
        config.capacity, config.alpha, repository.size_of, engine=engine
    )
    cache.restore(snapshot)
    warm = stream[LARGE_SNAP_AT:LARGE_SNAP_AT + LARGE_WARM]
    timed = stream[LARGE_SNAP_AT + LARGE_WARM:
                   LARGE_SNAP_AT + LARGE_WARM + LARGE_SLICE]
    ensure_lsh = getattr(cache._engine, "_ensure_sig_lsh", None)
    if ensure_lsh is not None:
        ensure_lsh()  # build the signature index outside the timed region
    for spec in warm:
        cache.request(spec)
    t0 = perf_counter()
    if batch_size != 0:
        cache.submit_batch(timed, batch_size=batch_size)
    else:
        for spec in timed:
            cache.request(spec)
    return perf_counter() - t0, cache.snapshot()


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_LARGE") != "1",
    reason="million-request benchmark takes ~10 minutes; set "
           "REPRO_BENCH_LARGE=1 to run it",
)
def test_million_request_batched_kernel():
    config, repository, stream = _build_stream(
        LARGE_N_UNIQUE, LARGE_REPEATS, LARGE_CAPACITY
    )
    assert len(stream) >= LARGE_MIN_REQUESTS
    assert len(set(stream)) >= LARGE_MIN_UNIQUE

    # Full batched run, pausing once mid-stream to snapshot the state the
    # naive continuation replays from.
    vec = LandlordCache(
        config.capacity, config.alpha, repository.size_of, engine="vectorized"
    )
    t0 = perf_counter()
    vec.submit_batch(stream[:LARGE_SNAP_AT], batch_size=LARGE_BATCH)
    vec_s = perf_counter() - t0
    mid_snapshot = vec.snapshot()
    t0 = perf_counter()
    vec.submit_batch(stream[LARGE_SNAP_AT:], batch_size=LARGE_BATCH)
    vec_s += perf_counter() - t0

    # Continuation slice from the identical mid-stream state: naive vs
    # vectorized (plain and batched dispatch), all bit-identical.
    naive_slice_s, naive_snap = _replay_from(
        mid_snapshot, config, repository, stream, "naive"
    )
    plain_slice_s, plain_snap = _replay_from(
        mid_snapshot, config, repository, stream, "vectorized"
    )
    batch_slice_s, batch_snap = _replay_from(
        mid_snapshot, config, repository, stream, "vectorized",
        batch_size=LARGE_BATCH,
    )
    auto_slice_s, auto_snap = _replay_from(
        mid_snapshot, config, repository, stream, "vectorized",
        batch_size="auto",
    )
    assert naive_snap == plain_snap == batch_snap == auto_snap

    speedup_plain = naive_slice_s / plain_slice_s if plain_slice_s else float("inf")
    speedup = naive_slice_s / batch_slice_s if batch_slice_s else float("inf")
    naive_per_request = naive_slice_s / LARGE_SLICE
    cpu_count = os.cpu_count() or 1
    degraded = cpu_count < 2
    payload = {
        "seed": 2020,
        "alpha": ALPHA,
        "scheme": "random",
        "requests": len(stream),
        "unique_specs": len(set(stream)),
        "repeats": LARGE_REPEATS,
        "final_images": len(vec),
        "hit_rate": round(vec.stats.hit_rate, 4),
        "batch_size": LARGE_BATCH,
        "vectorized_seconds": round(vec_s, 1),
        "requests_per_second": round(len(stream) / vec_s),
        "peak_rss_mb": _peak_rss_mb(),
        "slice_requests": LARGE_SLICE,
        "slice_at": LARGE_SNAP_AT,
        "slice_images": len(mid_snapshot["images"]),
        "naive_slice_seconds": round(naive_slice_s, 3),
        "vectorized_slice_seconds": round(plain_slice_s, 3),
        "batched_slice_seconds": round(batch_slice_s, 3),
        "adaptive_slice_seconds": round(auto_slice_s, 3),
        "naive_seconds_extrapolated": round(naive_per_request * len(stream)),
        "speedup_plain": round(speedup_plain, 1),
        "speedup": round(speedup, 1),
        "gate_min_speedup": GATE_MIN_SPEEDUP if degraded else LARGE_GATE_SPEEDUP,
        "cpu_count": cpu_count,
        "degraded_single_cpu": degraded,
    }
    _merge_bench("large", payload)

    assert speedup >= payload["gate_min_speedup"], payload
