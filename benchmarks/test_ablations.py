"""Benchmark: the design-choice ablation studies (DESIGN.md §5)."""

from repro.experiments import ablations


def test_ablation_studies(benchmark, scale):
    bench_scale = scale.with_(repetitions=min(scale.repetitions, 3))
    results = benchmark.pedantic(
        ablations.run, args=(bench_scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    studies = results["studies"]
    assert set(studies) == {
        "candidate_order", "eviction", "hit_selection", "minhash",
        "merge_write_mode",
    }
    # Mechanism ablation: delta writes strictly undercut full rewrites.
    assert (
        studies["merge_write_mode"]["delta"]["bytes_written"]
        < studies["merge_write_mode"]["full"]["bytes_written"]
    )
    # The LSH prefilter's entire point: far fewer exact Jaccard evaluations.
    minhash = studies["minhash"]
    assert (
        minhash["lsh-prefilter"]["candidates_examined"]
        < minhash["exact"]["candidates_examined"]
    )
