"""Benchmark: regenerate Figure 3 (image size vs selection size)."""

import numpy as np

from repro.experiments import fig3_image_size


def test_fig3_image_size(benchmark, scale):
    results = benchmark.pedantic(
        fig3_image_size.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    amp = results["amplification"]
    assert amp[0] > 1.5          # strong amplification for small selections
    assert amp[-1] < amp[0]      # fading with size (shared core)
    assert np.all(results["image_bytes"] >= results["spec_bytes"])
    assert results["image_bytes"][-1] <= results["repo_bytes"]
