"""Benchmarks for the substrate layers: scheduling, pilots, adaptation,
solver, catalogs — the pieces every experiment composes."""

import pytest

from repro.core.adaptive import AlphaController
from repro.core.cache import LandlordCache
from repro.cvmfs.nested import NestedCatalogTree
from repro.htc.cluster import Cluster, Site
from repro.htc.pilot import JobQueue, PilotFactory
from repro.htc.scheduler import Scheduler
from repro.htc.workload import DependencyWorkload, build_stream, jobs_from_specs
from repro.packages.resolve import DependencySolver
from repro.util.rng import spawn
from repro.util.units import GB


@pytest.fixture(scope="module")
def jobs_and_repo(bench_repo):
    workload = DependencyWorkload(bench_repo, max_selection=8)
    rng = spawn(11, "bench-jobs")
    jobs = jobs_from_specs(
        workload.sample_specs(rng, 60), rng, mean_runtime=60.0
    )
    return jobs, bench_repo


def test_scheduler_throughput(benchmark, jobs_and_repo):
    jobs, repo = jobs_and_repo

    def run():
        cluster = Cluster(
            [Site(f"s{i}", repo, cache_bytes=30 * GB, n_workers=4,
                  worker_scratch_bytes=20 * GB) for i in range(2)]
        )
        return Scheduler(cluster).run(jobs)

    summary = benchmark.pedantic(run, rounds=3, iterations=1)
    assert summary.jobs == len(jobs)


def test_pilot_drain_throughput(benchmark, jobs_and_repo):
    jobs, repo = jobs_and_repo

    def run():
        site = Site("s0", repo, cache_bytes=30 * GB, n_workers=4,
                    worker_scratch_bytes=20 * GB)
        return PilotFactory(site, max_jobs_per_pilot=10).drain(JobQueue(jobs))

    summary = benchmark.pedantic(run, rounds=3, iterations=1)
    assert summary.jobs_left == 0


def test_adaptive_controller_overhead(benchmark, bench_repo, scale):
    """The controller's per-request bookkeeping must be negligible."""
    workload = DependencyWorkload(bench_repo, scale.max_selection)
    stream = build_stream(workload, spawn(4, "adapt-bench"),
                          n_unique=scale.n_unique, repeats=scale.repeats)

    def run():
        cache = LandlordCache(scale.capacity, 0.5, bench_repo.size_of)
        controller = AlphaController(cache, interval=50)
        for spec in stream:
            controller.request(spec)
        return controller

    controller = benchmark.pedantic(run, rounds=3, iterations=1)
    assert controller.cache.stats.requests == len(stream)


def test_dependency_solver(benchmark, bench_repo):
    solver = DependencySolver(bench_repo)
    names = sorted({pid.split("/")[0] for pid in bench_repo.ids})[:20]

    result = benchmark(solver.solve, names, False)
    assert len(result.assignments) == 20


def test_nested_catalog_cold_walk(benchmark, bench_repo):
    spec = bench_repo.ids[: min(200, len(bench_repo))]

    def run():
        tree = NestedCatalogTree(bench_repo)
        return tree.metadata_cost_of(spec)

    cost = benchmark.pedantic(run, rounds=3, iterations=1)
    assert cost > 0
