"""Benchmark: the cross-site federation study."""

from repro.experiments import federation_study


def test_federation_study(benchmark, scale):
    results = benchmark.pedantic(
        federation_study.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    assert (
        results["federated"]["bytes_built"]
        < results["isolated"]["bytes_built"]
    )
