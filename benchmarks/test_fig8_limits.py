"""Benchmark: regenerate Figure 8 (operational zone detection)."""

from repro.experiments import fig8_limits


def test_fig8_operational_zone(benchmark, scale):
    results = benchmark.pedantic(
        fig8_limits.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    zone = results["zone"]
    assert zone["valid"]
    # a wide moderate-α zone, as the paper reports (0.65–0.95 at its scale)
    assert 0.4 <= zone["lower"] <= zone["upper"] <= 1.0
