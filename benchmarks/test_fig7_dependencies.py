"""Benchmark: regenerate Figure 7 (dependency vs random workloads)."""

from repro.experiments import fig7_dependencies


def test_fig7_dependency_impact(benchmark, scale):
    results = benchmark.pedantic(
        fig7_dependencies.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    deps_merges = results["deps"].metric("merges")[:-1].sum()
    random_merges = results["random"].metric("merges")[:-1].sum()
    # random images almost never merge below α = 1
    assert random_merges < 0.2 * max(deps_merges, 1)
