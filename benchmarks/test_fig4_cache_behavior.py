"""Benchmark: regenerate Figure 4 (cache behaviour across the α sweep).

Covers all three panels: operation counts (4a), cache duplication (4b)
and cumulative I/O overhead (4c).
"""

from repro.experiments import fig4_cache_behavior


def test_fig4_alpha_sweep(benchmark, scale):
    results = benchmark.pedantic(
        fig4_cache_behavior.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    sweep = results["sweep"]
    merges = sweep.metric("merges")
    hits = sweep.metric("hits")
    unique = sweep.metric("unique_bytes")
    total = sweep.metric("cached_bytes")
    wamp = sweep.metric("write_amplification")
    # 4a: no merges at the LRU end; merges rise then collapse at α=1.
    assert merges[0] == 0
    assert merges.max() > 0
    assert merges[-1] < merges.max()
    assert hits[-1] > hits[0]
    # 4b: unique rises, total falls, equal at α=1.
    assert unique[-1] > unique[0]
    assert total[-1] < total[0]
    assert abs(unique[-1] - total[-1]) < 0.01 * total[-1] + 1
    # 4c: merge rewrites push actual writes past requested at high α.
    assert wamp.max() > 1.05
