"""Benchmark: the observability layer's disabled path must be ~free.

The instrumentation contract (DESIGN.md, "Observability") is that a
cache with no registry attached pays only ``is not None`` guards on its
hot paths — budgeted at <2% of request time.  That cost cannot be
measured by diffing two binaries, so this benchmark bounds it from
measurements of the current one:

1. time the guard pattern itself (slot attribute load + ``is None``
   test) in isolation, per evaluation;
2. time the Figure-4-style request workload end to end, uninstrumented,
   to get the per-request budget;
3. assert ``guards_per_request x guard_cost < 2%`` of a request.

A deliberately generous ``GUARDS_PER_REQUEST`` (about 3x the real site
count in ``LandlordCache.request``) keeps the bound honest against
refactors that add sites.

The *enabled* path — metrics registry plus rolling-window SLO tracker
attached, the full live-telemetry configuration ``submit --serve``
runs — is bounded too, at ≤25%: attaching telemetry is opt-in, so it
may cost real time, but "opt-in" must never become "unusable in
production".  The bound is deliberately loose (perf_counter calls and
histogram bucketing dominate it) and exists to catch regressions that
would make operators turn telemetry off.

Running this file writes ``BENCH_obs.json`` at the repository root, the
committed record of both ratios.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

from repro.experiments.common import base_config, get_scale
from repro.htc.simulator import simulate
from repro.packages.sft import build_experiment_repository

REPO_ROOT = Path(__file__).resolve().parents[1]
OVERHEAD_BOUND = 0.02
# Full telemetry (metrics + SLO window) may cost real time, bounded so
# it stays deployable; see the module docstring.
ENABLED_OVERHEAD_BOUND = 0.25
# LandlordCache.request has ~8 `is not None` guard evaluations on the
# insert path (the worst case); budget triple that.
GUARDS_PER_REQUEST = 24


class _Holder:
    __slots__ = ("_ins", "_tracer")

    def __init__(self):
        self._ins = None
        self._tracer = None


def _guard_cost_seconds(n: int = 2_000_000) -> float:
    """Per-evaluation cost of the hot-path guard pattern."""
    holder = _Holder()
    t0 = perf_counter()
    for _ in range(n):
        pass
    empty = perf_counter() - t0
    t0 = perf_counter()
    for _ in range(n):
        ins = holder._ins
        if ins is not None:  # pragma: no cover - never true here
            raise AssertionError
    guarded = perf_counter() - t0
    return max(guarded - empty, 0.0) / n


def _exemplar_cost_seconds(n: int = 200_000) -> float:
    """Per-observation cost of attaching an exemplar to a histogram.

    The enabled path now stamps ``landlord_request_seconds`` buckets
    with a ``request=<index>`` exemplar (the click-through to
    ``explain``); this isolates what that stamp adds on top of a plain
    ``observe`` so the committed record shows exemplars are not what
    operators would turn telemetry off over.
    """
    from repro.obs.metrics import MetricsRegistry

    hist = MetricsRegistry().histogram(
        "bench_exemplar_seconds", "exemplar cost probe"
    )
    t0 = perf_counter()
    for i in range(n):
        hist.observe(0.004)
    plain = perf_counter() - t0
    t0 = perf_counter()
    for i in range(n):
        hist.observe(0.004, exemplar=(("request", str(i)),))
    stamped = perf_counter() - t0
    return max(stamped - plain, 0.0) / n


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


def test_disabled_path_overhead_under_bound():
    scale = get_scale("tiny")
    config = base_config(scale, seed=2020, alpha=0.75,
                         record_timeline=False)
    repository = build_experiment_repository(
        config.repo_kind, seed=config.seed,
        n_packages=config.n_packages,
        target_total_size=config.repo_total_size,
    )
    n_requests = config.n_unique * config.repeats

    enabled = config.with_(collect_metrics=True, collect_slo=True)
    disabled_s = _best_of(lambda: simulate(config, repository=repository))
    enabled_s = _best_of(lambda: simulate(enabled, repository=repository))
    guard_s = _guard_cost_seconds()
    exemplar_s = _exemplar_cost_seconds()

    per_request = disabled_s / n_requests
    disabled_overhead = GUARDS_PER_REQUEST * guard_s / per_request
    enabled_overhead = enabled_s / disabled_s - 1
    # One exemplar stamp per request (the landlord_request_seconds
    # observe site) as a fraction of the uninstrumented request budget.
    exemplar_overhead = exemplar_s / per_request

    payload = {
        "scale": "tiny",
        "seed": 2020,
        "requests": n_requests,
        "disabled_seconds": round(disabled_s, 4),
        "enabled_seconds": round(enabled_s, 4),
        "enabled_overhead_ratio": round(enabled_overhead, 4),
        "enabled_bound": ENABLED_OVERHEAD_BOUND,
        "guard_ns": round(guard_s * 1e9, 2),
        "guards_per_request": GUARDS_PER_REQUEST,
        "disabled_overhead_ratio": round(disabled_overhead, 6),
        "bound": OVERHEAD_BOUND,
        "exemplar_ns": round(exemplar_s * 1e9, 2),
        "exemplar_overhead_ratio": round(exemplar_overhead, 6),
    }
    (REPO_ROOT / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert disabled_overhead < OVERHEAD_BOUND, payload
    assert enabled_overhead < ENABLED_OVERHEAD_BOUND, payload
    # Exemplar stamping rides inside the enabled budget; it must stay a
    # small slice of it, not a second telemetry tax.
    assert exemplar_overhead < ENABLED_OVERHEAD_BOUND, payload
    # sanity: the instrumented run must still be the same simulation
    assert simulate(config, repository=repository).stats == simulate(
        enabled, repository=repository
    ).stats
