"""Micro-benchmarks for the primitives on every experiment's hot path."""

import numpy as np
import pytest

from repro.core.cache import LandlordCache
from repro.core.minhash import MinHashLSH, MinHashSignature
from repro.core.similarity import jaccard_distance
from repro.htc.workload import DependencyWorkload, build_stream
from repro.util.rng import spawn


@pytest.fixture(scope="module")
def spec_pair():
    a = frozenset(f"pkg-{i:05d}/1.0" for i in range(0, 3000))
    b = frozenset(f"pkg-{i:05d}/1.0" for i in range(1000, 4000))
    return a, b


class TestSimilarity:
    def test_jaccard_exact_3k_sets(self, benchmark, spec_pair):
        a, b = spec_pair
        result = benchmark(jaccard_distance, a, b)
        assert 0 < result < 1

    def test_minhash_signature_3k_set(self, benchmark, spec_pair):
        a, _ = spec_pair
        sig = benchmark(MinHashSignature.of, a, 128)
        assert sig.num_perm == 128

    def test_minhash_estimate(self, benchmark, spec_pair):
        a, b = spec_pair
        sa = MinHashSignature.of(a)
        sb = MinHashSignature.of(b)
        estimate = benchmark(sa.estimate_jaccard, sb)
        assert 0 <= estimate <= 1

    def test_lsh_query_100_images(self, benchmark, spec_pair):
        a, _ = spec_pair
        lsh = MinHashLSH()
        rng = np.random.default_rng(0)
        items = sorted(a)
        for i in range(100):
            subset = frozenset(
                items[j] for j in rng.choice(len(items), 500, replace=False)
            )
            lsh.insert(f"img-{i}", MinHashSignature.of(subset))
        probe = MinHashSignature.of(frozenset(items[:500]))
        benchmark(lsh.query, probe)


class TestUniverseMask:
    """The bitmask constructor behind every cache request (cache.py)."""

    @pytest.fixture(scope="class")
    def universe(self, spec_pair):
        from repro.core.cache import _Universe

        a, b = spec_pair
        uni = _Universe(lambda _pid: 1)
        # Pre-intern so the benchmark measures mask construction, not
        # first-touch index assignment.
        for pid in sorted(a | b):
            uni.index_of(pid)
        return uni

    @staticmethod
    def _mask_reference(universe, packages):
        # The pre-vectorisation implementation: one big-int OR per package.
        mask = 0
        indices = sorted(universe.index_of(p) for p in packages)
        for i in indices:
            mask |= 1 << i
        return mask, np.asarray(indices, dtype=np.int64)

    def test_mask_of_3k_set(self, benchmark, universe, spec_pair):
        a, _ = spec_pair
        mask, indices = benchmark(universe.mask_of, a)
        assert indices.size == len(a)
        ref_mask, ref_indices = self._mask_reference(universe, a)
        assert mask == ref_mask
        assert np.array_equal(indices, ref_indices)

    def test_mask_of_small_set(self, benchmark, universe, spec_pair):
        a, _ = spec_pair
        small = frozenset(sorted(a)[:20])
        mask, indices = benchmark(universe.mask_of, small)
        ref_mask, ref_indices = self._mask_reference(universe, small)
        assert mask == ref_mask
        assert np.array_equal(indices, ref_indices)

    def test_mask_reference_3k_set(self, benchmark, universe, spec_pair):
        # The yardstick: the python-loop construction the vectorised
        # mask_of replaced, timed on the same set for comparison.
        a, _ = spec_pair
        mask, _ = benchmark(self._mask_reference, universe, a)
        assert mask > 0


class TestRepository:
    def test_build_sft_repository(self, benchmark, scale):
        from repro.packages.sft import build_sft_repository

        repo = benchmark.pedantic(
            build_sft_repository,
            kwargs={"seed": 1, "n_packages": scale.n_packages,
                    "target_total_size": scale.repo_total_size},
            rounds=1, iterations=1,
        )
        assert len(repo) == scale.n_packages

    def test_closure_of_100_random_packages(self, benchmark, bench_repo):
        rng = spawn(0, "bench-closure")
        ids = bench_repo.ids
        k = min(100, len(ids))

        def closure_once():
            picks = rng.choice(len(ids), size=k, replace=False)
            return bench_repo.closure([ids[int(i)] for i in picks])

        result = benchmark(closure_once)
        assert len(result) >= k


class TestCacheThroughput:
    def test_request_throughput_alpha_075(self, benchmark, bench_repo, scale):
        workload = DependencyWorkload(bench_repo, scale.max_selection)
        stream = build_stream(
            workload, spawn(3, "bench-stream"),
            n_unique=scale.n_unique, repeats=scale.repeats,
        )

        def run_stream():
            cache = LandlordCache(
                scale.capacity, 0.75, bench_repo.size_of
            )
            for spec in stream:
                cache.request(spec)
            return cache

        cache = benchmark.pedantic(run_stream, rounds=3, iterations=1)
        assert cache.stats.requests == len(stream)

    def test_request_throughput_with_minhash(self, benchmark, bench_repo, scale):
        workload = DependencyWorkload(bench_repo, scale.max_selection)
        stream = build_stream(
            workload, spawn(3, "bench-stream"),
            n_unique=scale.n_unique, repeats=scale.repeats,
        )

        def run_stream():
            cache = LandlordCache(
                scale.capacity, 0.75, bench_repo.size_of, use_minhash=True
            )
            for spec in stream:
                cache.request(spec)
            return cache

        cache = benchmark.pedantic(run_stream, rounds=3, iterations=1)
        assert cache.stats.requests == len(stream)
