"""Shared benchmark fixtures.

Benchmarks regenerate every paper figure at the ``tiny`` scale by default
so ``pytest benchmarks/ --benchmark-only`` completes in a few minutes; set
``REPRO_BENCH_SCALE=quick`` (or ``paper``) to run larger.  Each figure
bench asserts the same qualitative shape the test suite checks, so a
timing run is also a correctness run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import PAPER, QUICK, TINY
from repro.packages.sft import build_sft_repository
from repro.util.units import GB

_SCALES = {"tiny": TINY, "quick": QUICK, "paper": PAPER}


@pytest.fixture(scope="session")
def scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}"
        ) from None


@pytest.fixture(scope="session")
def bench_repo(scale):
    return build_sft_repository(
        seed=2020,
        n_packages=scale.n_packages,
        target_total_size=scale.repo_total_size,
    )
