"""Benchmark: regenerate Figure 1 (layering vs composition)."""

from repro.experiments import fig1_layering


def test_fig1_layering(benchmark, scale):
    results = benchmark.pedantic(
        fig1_layering.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    schematic = results["schematic"]
    assert schematic["composition"]["equivalence_detected"]
    assert not schematic["layering"]["equivalence_detected"]
    gen = results["generalised"]
    assert gen["layering_stored_bytes"] >= gen["composition_unique_bytes"]
