"""Benchmark: the §III baseline-strategy comparison."""

from repro.experiments import baselines


def test_baseline_strategies(benchmark, scale):
    results = benchmark.pedantic(
        baselines.run, args=(scale,), kwargs={"seed": 2020},
        rounds=1, iterations=1,
    )
    strategies = results["strategies"]
    # The §III story in one assertion chain:
    assert strategies["no-cache"]["bytes_written"] == results["requested_bytes"]
    assert (
        strategies["landlord (a=0.8)"]["cache_efficiency"]
        >= strategies["exact-lru (a=0)"]["cache_efficiency"]
    )
    assert strategies["full-repo image"]["hit_rate"] == 1.0
