"""Image builder: produce and merge ContainerImages with cost accounting.

Bridges the declarative world (:class:`~repro.core.spec.ImageSpec`) and the
artifact world (:class:`~repro.containers.image.ContainerImage`) through the
Shrinkwrap substrate.  Merging rewrites the whole merged image — the cost
the α parameter trades against storage (§VI, "Overhead of LANDLORD").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Union

from repro.containers.image import ContainerImage
from repro.core.spec import ImageSpec
from repro.cvmfs.shrinkwrap import BuildReport, Shrinkwrap

__all__ = ["BuildCost", "ImageBuilder"]


@dataclass(frozen=True)
class BuildCost:
    """Bytes moved and modelled seconds for one build or merge."""

    bytes_downloaded: int
    bytes_written: int
    seconds: float


class ImageBuilder:
    """Builds fresh images and merges existing ones via Shrinkwrap."""

    def __init__(self, shrinkwrap: Shrinkwrap):
        self.shrinkwrap = shrinkwrap
        self.total_builds = 0
        self.total_merges = 0
        self.total_bytes_written = 0
        self.total_seconds = 0.0

    def _account(self, report: BuildReport) -> BuildCost:
        cost = BuildCost(
            bytes_downloaded=report.bytes_downloaded,
            bytes_written=report.image_bytes,
            seconds=report.prep_seconds,
        )
        self.total_bytes_written += cost.bytes_written
        self.total_seconds += cost.seconds
        return cost

    def build(
        self,
        spec: Union[ImageSpec, AbstractSet[str]],
        resolve_closure: bool = True,
    ) -> "tuple[ContainerImage, BuildCost]":
        """Materialise a fresh image for ``spec``."""
        report = self.shrinkwrap.build(spec, resolve_closure=resolve_closure)
        self.total_builds += 1
        cost = self._account(report)
        image = ContainerImage(
            spec=ImageSpec(report.packages),
            size=report.image_bytes,
        )
        return image, cost

    def merge(
        self,
        base: ContainerImage,
        extra: Union[ImageSpec, AbstractSet[str]],
        resolve_closure: bool = True,
    ) -> "tuple[ContainerImage, BuildCost]":
        """Produce the union image of ``base`` and ``extra``.

        Only the packages missing from ``base`` are downloaded (their
        objects may even be in the local CVMFS cache), but the merged image
        file is written out **in its entirety** — the paper's dominant
        source of I/O overhead at high α.
        """
        extra_spec = extra if isinstance(extra, ImageSpec) else ImageSpec(extra)
        if resolve_closure:
            extra_spec = ImageSpec(self.shrinkwrap.resolve(extra_spec))
        union = base.spec.merge(extra_spec)
        if union == base.spec:
            # Nothing to add; "merge" degenerates to reuse, no I/O.
            self.total_merges += 1
            return base, BuildCost(0, 0, 0.0)
        missing = union - base.spec
        fetch_report = self.shrinkwrap.build(missing, resolve_closure=False)
        image_bytes = base.size + fetch_report.image_bytes
        seconds = self.shrinkwrap.prep_time(
            fetch_report.bytes_downloaded, image_bytes
        )
        self.total_merges += 1
        cost = BuildCost(
            bytes_downloaded=fetch_report.bytes_downloaded,
            bytes_written=image_bytes,
            seconds=seconds,
        )
        self.total_bytes_written += image_bytes
        self.total_seconds += seconds
        image = ContainerImage(
            spec=union,
            size=image_bytes,
            parents=(base.image_id,),
        )
        return image, cost
