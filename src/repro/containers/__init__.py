"""Container-image substrate.

Models the artifacts LANDLORD manages without ever executing a container:

- :mod:`repro.containers.image` — the immutable built image (contents,
  byte size, lineage).
- :mod:`repro.containers.layers` — Docker-style *layered* images, where
  history is additive and masked content still occupies storage; used for
  the Figure 1 layering-vs-composition comparison.
- :mod:`repro.containers.store` — a byte-capacity image store with LRU
  bookkeeping and a write ledger (worker-node scratch space).
- :mod:`repro.containers.builder` — builds and merges images through the
  Shrinkwrap cost model.
"""

from repro.containers.builder import BuildCost, ImageBuilder
from repro.containers.image import ContainerImage
from repro.containers.layers import Layer, LayeredImage, LayerStore
from repro.containers.registry import ImageRegistry, RegistryStats
from repro.containers.store import ImageStore, StoreStats

__all__ = [
    "ContainerImage",
    "Layer",
    "LayeredImage",
    "LayerStore",
    "ImageStore",
    "StoreStats",
    "ImageRegistry",
    "RegistryStats",
    "ImageBuilder",
    "BuildCost",
]
