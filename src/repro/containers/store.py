"""A byte-capacity container-image store (worker scratch space).

Worker nodes keep container images on local scratch; the paper assumes
*"each compute node has scratch space available for storing container
images locally, but the total repository contents or the collection of all
container images may be too large to store on every worker node"* (§V).

:class:`ImageStore` is deliberately simpler than the Landlord cache: it
holds immutable :class:`~repro.containers.image.ContainerImage` artifacts,
evicts LRU to stay within capacity, and ledgers bytes written (transfers
into scratch) so the distributed simulation can account per-node I/O.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.containers.image import ContainerImage
from repro.core.spec import ImageSpec

__all__ = ["ImageStore", "StoreStats"]


@dataclass
class StoreStats:
    """Cumulative transfer/eviction accounting for one store."""

    puts: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_written: int = 0
    bytes_evicted: int = 0


class ImageStore:
    """LRU image store bounded by bytes.

    Unlike the Landlord cache this never merges or rewrites: it is plain
    storage.  ``put`` of an image larger than the whole capacity raises —
    a worker simply cannot run such a job, and the scheduler must react.
    """

    def __init__(self, capacity: int, name: str = "store"):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.name = name
        self._images: Dict[str, ContainerImage] = {}
        self._last_used: Dict[str, int] = {}
        self._clock = 0
        self._bytes = 0
        self.stats = StoreStats()

    def __len__(self) -> int:
        return len(self._images)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._images

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    @property
    def free_bytes(self) -> int:
        return max(0, self.capacity - self._bytes)

    @property
    def images(self) -> List[ContainerImage]:
        return list(self._images.values())

    def _touch(self, image_id: str) -> None:
        self._clock += 1
        self._last_used[image_id] = self._clock

    def get(self, image_id: str) -> Optional[ContainerImage]:
        """Fetch by id; None on miss.  Hits refresh LRU order."""
        image = self._images.get(image_id)
        if image is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._touch(image_id)
        return image

    def find_satisfying(self, request: ImageSpec) -> Optional[ContainerImage]:
        """Smallest stored image whose contents satisfy ``request``."""
        best: Optional[ContainerImage] = None
        for image in self._images.values():
            if image.satisfies(request) and (best is None or image.size < best.size):
                best = image
        if best is not None:
            self.stats.hits += 1
            self._touch(best.image_id)
        else:
            self.stats.misses += 1
        return best

    def put(self, image: ContainerImage) -> List[str]:
        """Store an image (charging a transfer); returns evicted ids."""
        if image.size > self.capacity:
            raise ValueError(
                f"image {image.image_id} ({image.size} B) exceeds "
                f"{self.name} capacity ({self.capacity} B)"
            )
        if image.image_id in self._images:
            self._touch(image.image_id)
            return []
        evicted = []
        while self._bytes + image.size > self.capacity:
            victim_id = min(self._last_used, key=self._last_used.get)
            victim = self._images.pop(victim_id)
            del self._last_used[victim_id]
            self._bytes -= victim.size
            self.stats.evictions += 1
            self.stats.bytes_evicted += victim.size
            evicted.append(victim_id)
        self._images[image.image_id] = image
        self._bytes += image.size
        self._touch(image.image_id)
        self.stats.puts += 1
        self.stats.bytes_written += image.size
        return evicted

    def remove(self, image_id: str) -> bool:
        """Explicitly drop an image; True if it was present."""
        image = self._images.pop(image_id, None)
        if image is None:
            return False
        del self._last_used[image_id]
        self._bytes -= image.size
        return True
