"""The built container image.

A :class:`ContainerImage` is the immutable artifact produced by a build:
its *contents* are exactly an :class:`~repro.core.spec.ImageSpec` (the set
of packages materialised inside), plus size and provenance.  Contrast with
:class:`~repro.core.cache.CachedImage`, which is the cache's mutable
bookkeeping record; the simulator converts between the two at the edges.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Tuple

from repro.core.spec import ImageSpec

__all__ = ["ContainerImage"]

_id_counter = itertools.count()


def _next_id() -> str:
    return f"sif-{next(_id_counter):06d}"


@dataclass(frozen=True)
class ContainerImage:
    """An immutable built image.

    Attributes:
        spec: the packages materialised inside the image.
        size: image file size in bytes.
        image_id: unique identity of this build (not of the contents — two
            builds of the same spec are distinct files).
        parents: image ids merged to produce this one (empty for fresh
            builds); the lineage lets reports reconstruct merge chains.
        format: artifact flavour, cosmetic ("sif" for Singularity).
    """

    spec: ImageSpec
    size: int
    image_id: str = field(default_factory=_next_id)
    parents: Tuple[str, ...] = ()
    format: str = "sif"

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("image size must be non-negative")

    def satisfies(self, request: ImageSpec) -> bool:
        """True if this image can serve a job requesting ``request``."""
        return self.spec.satisfies(request)

    @property
    def package_count(self) -> int:
        return len(self.spec)

    def __repr__(self) -> str:
        return (
            f"ContainerImage({self.image_id}, {self.package_count} pkgs, "
            f"{self.size} B)"
        )
