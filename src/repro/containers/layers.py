"""Docker-style layered images — the Figure 1 comparison.

A layered image is an ordered sequence of layers, each *adding* packages
and possibly *masking* (whiting-out) earlier ones.  Two properties drive the
paper's argument (§III, "Imperfect Solution: Layering"):

1. **Masked content is still stored and transferred.**  "Although item C is
   hidden in the lower layer, it still exists in a previous layer and must
   be transferred and stored.  Since changes to layered images are strictly
   additive, old content can be masked but not removed."
2. **Equivalent contents are not recognised.**  Two images whose visible
   contents coincide but whose layer histories differ are distinct artifacts
   to a layer store, so identical requirements reached along different
   recipe orders cannot share an image (Figure 1's first and third jobs).

:class:`LayerStore` models a registry with layer-level dedup (layers shared
between images stored once, Docker's one genuine saving) so the comparison
against composition is fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.core.spec import ImageSpec

__all__ = ["Layer", "LayeredImage", "LayerStore"]


@dataclass(frozen=True)
class Layer:
    """One image layer: packages added, packages masked, stored bytes.

    ``layer_id`` is derived from the *history* (parent chain + contents):
    the same addition on top of different parents yields different layers,
    exactly the Docker behaviour that defeats content-level sharing.
    """

    layer_id: str
    adds: FrozenSet[str]
    masks: FrozenSet[str]
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("layer size must be non-negative")
        if self.adds & self.masks:
            raise ValueError("a layer cannot add and mask the same package")


def _layer_id(parent_id: str, adds: FrozenSet[str], masks: FrozenSet[str]) -> str:
    import hashlib

    h = hashlib.blake2b(digest_size=8)
    h.update(parent_id.encode())
    for pid in sorted(adds):
        h.update(b"+" + pid.encode())
    for pid in sorted(masks):
        h.update(b"-" + pid.encode())
    return h.hexdigest()


class LayeredImage:
    """An ordered stack of layers."""

    def __init__(self, layers: Sequence[Layer] = ()):
        self.layers: Tuple[Layer, ...] = tuple(layers)

    @property
    def visible_packages(self) -> FrozenSet[str]:
        """Apply adds/masks in order: what a container actually sees."""
        visible: set = set()
        for layer in self.layers:
            visible -= layer.masks
            visible |= layer.adds
        return frozenset(visible)

    @property
    def stored_bytes(self) -> int:
        """Bytes of all layers — masked history included."""
        return sum(layer.size for layer in self.layers)

    @property
    def visible_spec(self) -> ImageSpec:
        return ImageSpec(self.visible_packages)

    def head_id(self) -> str:
        """Identity of the top layer ('scratch' for an empty image)."""
        return self.layers[-1].layer_id if self.layers else "scratch"

    def extend(
        self,
        adds: Iterable[str],
        package_size: Callable[[str], int],
        masks: Iterable[str] = (),
    ) -> "LayeredImage":
        """Append a refinement layer; returns a new image (history shared).

        Masked packages remain stored in the earlier layers; the new layer
        itself only stores the added packages' bytes (a whiteout is
        metadata).
        """
        adds = frozenset(adds)
        masks = frozenset(masks)
        size = sum(package_size(p) for p in adds)
        layer = Layer(
            layer_id=_layer_id(self.head_id(), adds, masks),
            adds=adds,
            masks=masks,
            size=size,
        )
        return LayeredImage(self.layers + (layer,))

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        return (
            f"LayeredImage({len(self.layers)} layers, "
            f"{len(self.visible_packages)} visible pkgs, "
            f"{self.stored_bytes} B stored)"
        )


class LayerStore:
    """A registry holding layered images with layer-level dedup.

    Storage charged = total bytes of *distinct* layers.  This is the best
    case for layering: identical layer ids (same parent chain, same
    contents) are stored once across all images.
    """

    def __init__(self):
        self._layers: Dict[str, Layer] = {}
        self._images: Dict[str, LayeredImage] = {}

    def push(self, name: str, image: LayeredImage) -> None:
        """Store an image under a name (replacing any previous holder)."""
        self._images[name] = image
        for layer in image.layers:
            self._layers.setdefault(layer.layer_id, layer)

    def get(self, name: str) -> LayeredImage:
        """Fetch an image by name (KeyError if absent)."""
        try:
            return self._images[name]
        except KeyError:
            raise KeyError(f"unknown image: {name!r}") from None

    @property
    def image_count(self) -> int:
        return len(self._images)

    @property
    def distinct_layers(self) -> int:
        return len(self._layers)

    @property
    def stored_bytes(self) -> int:
        """Registry storage: each distinct layer once."""
        self._gc()
        return sum(layer.size for layer in self._layers.values())

    def find_satisfying(self, request: ImageSpec) -> Optional[str]:
        """Name of an image whose *visible* contents satisfy the request.

        Docker itself cannot do this (it matches on image ids, not
        contents); provided so experiments can quantify the satisfaction a
        content-aware layer store could at best achieve.
        """
        for name, image in self._images.items():
            if request.packages <= image.visible_packages:
                return name
        return None

    def _gc(self) -> None:
        """Drop layers no longer referenced by any stored image."""
        live = {
            layer.layer_id
            for image in self._images.values()
            for layer in image.layers
        }
        self._layers = {
            lid: layer for lid, layer in self._layers.items() if lid in live
        }
