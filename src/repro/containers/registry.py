"""A shared image registry — cross-site image distribution.

The paper observes that *"often, containers are replicated across sites
and to many individual nodes"* (§I).  A registry models the distribution
side of that: sites push built images to a central store and pull instead
of rebuilding when another site already produced a suitable image.

Contents-aware by construction: because every artifact carries its
specification, the registry can serve *any* request satisfied by a stored
image (superset lookup), not just exact tag matches — the same
specification-level advantage the cache exploits locally (§IV).  Transfer
and storage accounting let experiments weigh rebuild-at-site against
pull-from-registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.containers.image import ContainerImage
from repro.core.spec import ImageSpec

__all__ = ["RegistryStats", "ImageRegistry"]


@dataclass
class RegistryStats:
    """Cumulative registry traffic."""

    pushes: int = 0
    pulls: int = 0
    misses: int = 0
    bytes_ingested: int = 0
    bytes_served: int = 0
    deduplicated_pushes: int = 0


class ImageRegistry:
    """A central, contents-indexed image store.

    Unlike a worker scratch store the registry is effectively unbounded
    (object storage); ``capacity`` may still be set to model a quota.
    Pushes of an image whose exact contents are already present are
    deduplicated — the second site's copy costs nothing (the registry, not
    the image file, establishes identity via the specification).
    """

    def __init__(self, capacity: Optional[int] = None, name: str = "registry"):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.name = name
        self._by_id: Dict[str, ContainerImage] = {}
        self._by_contents: Dict[frozenset, str] = {}
        self._bytes = 0
        self.stats = RegistryStats()

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._by_id

    @property
    def stored_bytes(self) -> int:
        return self._bytes

    def push(self, image: ContainerImage) -> str:
        """Ingest an image; returns the canonical id for its contents.

        A push with contents already stored is free and returns the
        existing id.  A quota overflow raises — registries reject, they
        don't silently evict user images.
        """
        existing = self._by_contents.get(image.spec.packages)
        if existing is not None:
            self.stats.deduplicated_pushes += 1
            return existing
        if self.capacity is not None and self._bytes + image.size > self.capacity:
            raise ValueError(
                f"registry quota exceeded: {self._bytes + image.size} "
                f"> {self.capacity}"
            )
        self._by_id[image.image_id] = image
        self._by_contents[image.spec.packages] = image.image_id
        self._bytes += image.size
        self.stats.pushes += 1
        self.stats.bytes_ingested += image.size
        return image.image_id

    def pull(self, image_id: str) -> ContainerImage:
        """Fetch by id; charges the transfer."""
        image = self._by_id.get(image_id)
        if image is None:
            self.stats.misses += 1
            raise KeyError(f"unknown image: {image_id!r}")
        self.stats.pulls += 1
        self.stats.bytes_served += image.size
        return image

    def find_satisfying(self, request: ImageSpec) -> Optional[str]:
        """Id of the *smallest* stored image serving ``request`` (or None).

        This is a metadata query — no transfer is charged until
        :meth:`pull`.
        """
        best: Optional[ContainerImage] = None
        for image in self._by_id.values():
            if image.satisfies(request) and (
                best is None or image.size < best.size
            ):
                best = image
        if best is None:
            self.stats.misses += 1
            return None
        return best.image_id

    def delete(self, image_id: str) -> bool:
        """Remove an image (administrative); True if it existed."""
        image = self._by_id.pop(image_id, None)
        if image is None:
            return False
        del self._by_contents[image.spec.packages]
        self._bytes -= image.size
        return True

    def images(self) -> List[ContainerImage]:
        """Snapshot of stored images."""
        return list(self._by_id.values())
