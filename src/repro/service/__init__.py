"""LANDLORD as a long-lived service: daemon, wire protocol, client.

The paper evaluates the cache as one caller running one stream to
completion; a production deployment is the opposite shape — many
concurrent submitters, one shared cache, a daemon that outlives them
all.  This package promotes the job-wrapper deployment to exactly that:

- :mod:`repro.service.daemon` — :class:`LandlordDaemon`, a
  zero-dependency loopback HTTP (and optional UNIX-socket) server in
  the same stdlib idiom as :mod:`repro.obs.server`.  Submissions from
  many clients funnel through a bounded admission queue into a single
  batcher thread, which group-commits each window to the write-ahead
  journal *before* acknowledging (crash → ``recover`` replays to
  bit-identical state) and applies it through one
  :meth:`~repro.core.cache.LandlordCache.submit_batch` vectorized pass.
- :mod:`repro.service.client` — :class:`LandlordClient`, the thin
  stdlib client behind ``repro-landlord submit --remote`` and the CI
  smoke test, with optional bounded retry on backpressure.

CLI surface: ``repro-landlord serve`` runs the daemon;
``repro-landlord submit SPEC --remote URL`` submits through it.  See
the "LANDLORD as a service" section of DESIGN.md for the queue →
journal → batch pipeline and its durability/ordering guarantees.
"""

from .client import LandlordClient, ServiceError, SubmitRejected
from .daemon import LandlordDaemon

__all__ = [
    "LandlordClient",
    "LandlordDaemon",
    "ServiceError",
    "SubmitRejected",
]
