"""Thin stdlib client for the LANDLORD daemon.

Wraps :mod:`http.client` (nothing else is available in the job-wrapper
image) around the daemon's tiny JSON API.  One
:class:`LandlordClient` holds one connection; it understands both
endpoint shapes the daemon serves:

- ``http://host:port`` — the loopback TCP listener;
- ``unix:/path/to.sock`` — the optional UNIX-domain socket, reached
  through an ``AF_UNIX`` :class:`http.client.HTTPConnection` subclass.

Backpressure is part of the protocol: the daemon answers 429 when its
admission queue is full and 503 while draining.  Both surface as
:class:`SubmitRejected` (with the parsed body), and
:meth:`LandlordClient.submit` can absorb them with a bounded
retry/backoff loop — the shape a pilot-job wrapper wants.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, List, Optional, Sequence

from repro.obs.spans import (
    TRACEPARENT_HEADER,
    format_traceparent,
    new_span_id,
    new_trace_id,
)

__all__ = ["LandlordClient", "ServiceError", "SubmitRejected"]


class ServiceError(RuntimeError):
    """The daemon answered with an unexpected error (or not at all)."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        #: HTTP status code when the daemon did answer, else ``None``.
        self.status = status


class SubmitRejected(ServiceError):
    """The daemon rejected a submission for capacity reasons.

    Status 429 (queue full — retryable) or 503 (draining for shutdown —
    not retryable; resubmit after the daemon restarts).
    """

    def __init__(self, status: int, payload: dict):
        super().__init__(
            f"submission rejected ({status}): "
            f"{payload.get('error', 'unknown')}",
            status=status,
        )
        #: The daemon's parsed JSON rejection body.
        self.payload = payload

    @property
    def retryable(self) -> bool:
        """Whether resubmitting to this daemon can succeed (429 yes,
        503 no — it is shutting down)."""
        return self.status == 429


class _UnixHTTPConnection(http.client.HTTPConnection):
    """An :class:`HTTPConnection` that dials a UNIX-domain socket."""

    def __init__(self, socket_path: str, timeout: float):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self):
        """Connect to the configured socket path (stdlib hook)."""
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.settimeout(self.timeout)
        self.sock.connect(self._socket_path)


class LandlordClient:
    """A connection to one running :class:`~repro.service.LandlordDaemon`.

    Args:
        endpoint: ``http://host:port`` or ``unix:/path/to.sock``.
        timeout: per-request socket timeout in seconds.  Submissions
            block server-side until their batch is journalled and
            applied, so this also bounds how long a submit may wait.
        spans: optional :class:`~repro.obs.SpanRecorder` — when set,
            every submit records a ``client_submit`` root span covering
            the whole round trip, under the same trace id the daemon's
            pipeline stages continue (the client always *sends* trace
            context; the recorder only controls local recording).
    """

    def __init__(self, endpoint: str, timeout: float = 30.0, spans=None):
        self.endpoint = endpoint
        self.timeout = timeout
        self.spans = spans
        if endpoint.startswith("unix:"):
            self._socket_path: Optional[str] = endpoint[len("unix:"):]
            self._host = None
            self._port = None
        elif endpoint.startswith("http://"):
            self._socket_path = None
            rest = endpoint[len("http://"):].rstrip("/")
            host, _, port = rest.partition(":")
            if not host or not port.isdigit():
                raise ValueError(f"bad endpoint {endpoint!r}")
            self._host = host
            self._port = int(port)
        else:
            raise ValueError(
                f"endpoint must be http://host:port or unix:/path, "
                f"got {endpoint!r}"
            )
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            if self._socket_path is not None:
                self._conn = _UnixHTTPConnection(
                    self._socket_path, self.timeout
                )
            else:
                self._conn = http.client.HTTPConnection(
                    self._host, self._port, timeout=self.timeout
                )
        return self._conn

    def close(self) -> None:
        """Drop the underlying connection (reopened lazily on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "LandlordClient":
        """Context-manager entry (connections open lazily)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: close the connection."""
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ):
        conn = self._connection()
        try:
            payload = None if body is None else json.dumps(body)
            send_headers = (
                {"Content-Type": "application/json"} if payload else {}
            )
            if headers:
                send_headers.update(headers)
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, response.getheader("Content-Type"), data
        except (OSError, http.client.HTTPException) as exc:
            self.close()  # a broken connection must not be reused
            raise ServiceError(
                f"daemon unreachable at {self.endpoint}: {exc}"
            ) from exc

    def _request_json(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> "tuple[int, dict]":
        status, _, data = self._request(method, path, body, headers)
        try:
            return status, json.loads(data)
        except ValueError as exc:
            raise ServiceError(
                f"non-JSON reply ({status}) from {path}", status=status
            ) from exc

    # -- API ---------------------------------------------------------------

    def submit(
        self,
        packages: Sequence[str],
        retries: int = 0,
        backoff: float = 0.05,
    ) -> dict:
        """Submit one spec; returns the daemon's decision payload.

        The reply (keys ``action``, ``image``, ``image_bytes``,
        ``request_index``, ``evicted``, ...) is only sent after the
        request has been journalled and applied — a returned decision is
        durable.  ``retries`` > 0 absorbs up to that many retryable
        (429) rejections, sleeping ``backoff * 2^attempt`` between
        tries; 503 (draining) and 400 (bad spec) raise immediately.

        Every submit opens a distributed trace: a fresh trace id and
        root span id are sent as the W3C ``traceparent`` header (held
        constant across retries — one logical submission, one trace),
        and the daemon's pipeline stages continue that trace.  The
        reply echoes ``trace_id``; resolve it to a stage waterfall with
        ``repro-landlord trace``.

        Raises:
            SubmitRejected: on 429 (after retries) or 503.
            ServiceError: on any other non-200 reply or transport error.
        """
        trace_id = new_trace_id()
        root_span_id = new_span_id()
        headers = {
            TRACEPARENT_HEADER: format_traceparent(trace_id, root_span_id)
        }
        attempt = 0
        start = time.perf_counter()
        while True:
            status, payload = self._request_json(
                "POST",
                "/submit",
                {"packages": list(packages)},
                headers=headers,
            )
            if status == 200:
                if self.spans is not None:
                    self.spans.observe(
                        "client_submit",
                        start,
                        time.perf_counter() - start,
                        trace_id,
                        request_index=payload.get("request_index"),
                        span_id=root_span_id,
                    )
                return payload
            if status in (429, 503):
                rejection = SubmitRejected(status, payload)
                if rejection.retryable and attempt < retries:
                    time.sleep(backoff * (2 ** attempt))
                    attempt += 1
                    continue
                raise rejection
            raise ServiceError(
                f"submit failed ({status}): "
                f"{payload.get('error', payload)}",
                status=status,
            )

    def submit_many(
        self,
        specs: Sequence[Sequence[str]],
        retries: int = 0,
        backoff: float = 0.05,
    ) -> List[dict]:
        """Submit specs sequentially over one connection; returns all
        decision payloads in order (same retry contract as
        :meth:`submit`)."""
        return [
            self.submit(spec, retries=retries, backoff=backoff)
            for spec in specs
        ]

    def health(self) -> dict:
        """The daemon's ``/healthz`` JSON (raises if not healthy 200)."""
        status, payload = self._request_json("GET", "/healthz")
        if status != 200:
            raise ServiceError(f"unhealthy ({status})", status=status)
        return payload

    def status(self) -> dict:
        """The daemon's ``/statusz`` JSON snapshot."""
        status, payload = self._request_json("GET", "/statusz")
        if status != 200:
            raise ServiceError(f"statusz failed ({status})", status=status)
        return payload

    def metrics(self) -> str:
        """The daemon's ``/metrics`` Prometheus text exposition."""
        status, _, data = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"metrics failed ({status})", status=status)
        return data.decode("utf-8")

    def traces(self, n: int = 10) -> dict:
        """The daemon's ``/traces/<n>?format=json`` body: recent
        distributed traces (``"traces"``, each with its per-stage
        spans) plus recent decision records (``"decisions"``).

        Raises :class:`ServiceError` when the daemon has tracing
        disabled (404) or otherwise refuses.
        """
        status, payload = self._request_json(
            "GET", f"/traces/{int(n)}?format=json"
        )
        if status != 200:
            raise ServiceError(
                f"traces failed ({status}): "
                f"{payload.get('error', payload)}",
                status=status,
            )
        return payload
