"""The concurrent multi-client LANDLORD daemon.

``repro-landlord serve`` turns the paper's per-job wrapper into a
long-lived service: many clients POST JSON spec submissions, one
:class:`~repro.core.cache.LandlordCache` decides.  Zero-dependency —
the whole wire layer is :mod:`http.server`, the same idiom as
:mod:`repro.obs.server`.

Pipeline (one request's life)::

    client --POST /submit--> handler thread (one per connection)
        -> admission: packages validated against the site repository,
           bounded queue (429 when full, 503 when draining)
        -> batcher thread (single consumer):
             pops every queued item (<= max_batch),
             group-commits the window to the write-ahead journal
               (one fsync -- Journal.append_many),
             applies it through LandlordCache.submit_batch
               (one vectorized-engine prediction window),
             snapshots/compacts when the window crossed the
               snapshot_every boundary,
             appends new decision traces to the sidecar,
             wakes each waiting handler with its decision
        -> handler replies JSON (ack strictly after the journal fsync)

Guarantees:

- **Durability**: a request is journalled before it is acknowledged, so
  a SIGKILL at any point after the ack replays to bit-identical state
  via ``repro-landlord recover`` (the cache is deterministic; the
  journal records arrival order).
- **Serialisability**: the final cache state is bit-identical to the
  same requests applied serially in arrival (journal) order —
  ``submit_batch`` is decision-identical to sequential ``request``
  calls by construction.
- **Consistent telemetry**: one re-entrant lock (attached via
  :meth:`~repro.core.cache.LandlordCache.enable_lock` and shared with
  the embedded :class:`~repro.obs.ObsServer`) serialises scrape
  rendering against cache mutation, so ``/metrics`` and ``/statusz``
  never observe a half-applied batch.
- **Bounded memory**: admission control rejects with HTTP 429 once
  ``max_queue`` submissions wait; a draining daemon rejects with 503.

SIGTERM handling lives in the CLI (:func:`repro.cli.main`): it calls
:meth:`LandlordDaemon.stop`, which stops admitting, drains the queue,
writes a final covering snapshot, and compacts the journal.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from repro.core.adaptive import service_governor
from repro.obs import ObsServer, build_status, write_traces
from repro.obs.clock import default_clock
from repro.obs.spans import SpanRecorder, new_trace_id, parse_traceparent
from repro.obs.telemetry import TelemetryAggregator

__all__ = ["LandlordDaemon"]

#: Reject request bodies larger than this (a spec is a package list —
#: anything bigger is a client bug, not a workload).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _PendingSubmit:
    """One admitted submission waiting for the batcher."""

    __slots__ = (
        "packages", "done", "decision", "request_index", "error",
        "trace_id", "parent_id", "enqueued_mono", "applied_mono",
    )

    def __init__(self, packages: Tuple[str, ...]):
        self.packages = packages
        self.done = threading.Event()
        self.decision = None
        self.request_index: Optional[int] = None
        self.error: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.enqueued_mono: float = 0.0
        self.applied_mono: Optional[float] = None


class _ServiceInstruments:
    """Pre-bound ``service_*`` metric children (see DESIGN.md schema)."""

    __slots__ = (
        "accepted", "rejected_full", "rejected_draining", "rejected_invalid",
        "batches", "batched_requests", "queue_depth", "batch_size",
        "dirty_rate",
    )

    def __init__(self, registry) -> None:
        submissions = registry.counter(
            "service_submissions_total",
            "Submissions by admission outcome.",
            labelnames=("outcome",),
        )
        self.accepted = submissions.labels(outcome="accepted")
        self.rejected_full = submissions.labels(outcome="rejected_full")
        self.rejected_draining = submissions.labels(
            outcome="rejected_draining"
        )
        self.rejected_invalid = submissions.labels(outcome="rejected_invalid")
        self.batches = registry.counter(
            "service_batches_total",
            "Request windows applied by the batcher.",
        ).labels()
        self.batched_requests = registry.counter(
            "service_batched_requests_total",
            "Requests applied through batched windows.",
        ).labels()
        self.queue_depth = registry.gauge(
            "service_queue_depth",
            "Submissions waiting in the admission queue.",
        ).labels()
        self.batch_size = registry.gauge(
            "service_batch_size",
            "Current batcher window cap (adaptive under --max-batch auto).",
        ).labels()
        self.dirty_rate = registry.gauge(
            "service_dirty_rate",
            "Dirty rate of the engine's most recent batch window.",
        ).labels()


class _UnixHTTPServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to a UNIX-domain socket."""

    address_family = socket.AF_UNIX

    def server_bind(self):
        """Bind, replacing a stale socket file from a dead daemon."""
        try:
            os.unlink(self.server_address)
        except FileNotFoundError:
            pass
        super().server_bind()

    def get_request(self):
        """Accept, normalising the empty AF_UNIX peer address to a pair
        so :class:`BaseHTTPRequestHandler` machinery stays happy."""
        request, _ = self.socket.accept()
        return request, ("unix", 0)


class LandlordDaemon:
    """A multi-client submission daemon over one durable LANDLORD cache.

    Args:
        store: the :class:`~repro.core.journal.JournaledState` holding
            the snapshot + write-ahead journal (already initialised or
            loaded by the caller; the daemon never re-reads it).
        cache: the live :class:`~repro.core.cache.LandlordCache` the
            store loaded.  The daemon attaches its own re-entrant lock
            via :meth:`~repro.core.cache.LandlordCache.enable_lock`.
        metadata: the store's metadata dict (written into snapshots).
        host / port: TCP bind address (loopback; port 0 = ephemeral).
        socket_path: additionally serve the same API on a UNIX-domain
            socket at this path (optional).
        max_queue: admission-queue bound; submissions beyond it are
            rejected with HTTP 429 (the backpressure contract).
        max_batch: largest request window the batcher applies at once,
            or ``"auto"`` — an AIMD governor
            (:func:`repro.core.adaptive.service_governor`) grows the cap
            while windows clear well inside ``ack_budget`` with a
            backlog waiting, and shrinks it multiplicatively when a
            window's fsync+apply time approaches the budget.
        ack_budget: target wall seconds for one window's fsync+apply —
            the adaptive cap's latency reference (only read under
            ``max_batch="auto"``).
        registry: optional :class:`~repro.obs.MetricsRegistry` — the
            daemon adds ``service_*`` instruments and serves it at
            ``/metrics``.
        slo: optional :class:`~repro.obs.SloTracker` already attached
            to the cache; the daemon publishes ``queue_depth`` /
            ``submissions_rejected`` extras into it.
        alerts: optional :class:`~repro.obs.AlertEngine`, evaluated
            after every applied window (not per request — the daemon's
            unit of progress is the window).
        tracer: optional :class:`~repro.obs.DecisionTracer` already
            attached to the cache; drained to ``trace_path`` after
            every window so ``repro-landlord explain`` works against a
            running daemon.
        trace_path: decision-trace sidecar file (required with
            ``tracer``).
        known_package: predicate validating a package id at admission;
            submissions naming unknown packages are rejected with HTTP
            400 *before* anything is journalled, so the journal never
            holds an unreplayable entry.
        span_limit: size of the bounded span ring buffer behind
            ``/traces`` and ``repro-landlord trace`` (per-stage
            histograms are unaffected — they are cumulative).
        clock: optional :class:`~repro.obs.HybridClock` override for
            the span timeline (tests inject a
            :class:`~repro.obs.FrozenClock`); defaults to the process
            default clock.
    """

    def __init__(
        self,
        store,
        cache,
        metadata: Optional[dict],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
        max_queue: int = 1024,
        max_batch: "int | str" = 256,
        ack_budget: float = 0.25,
        registry=None,
        slo=None,
        alerts=None,
        tracer=None,
        trace_path: Optional[str] = None,
        known_package: Optional[Callable[[str], bool]] = None,
        span_limit: int = 4096,
        clock=None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if isinstance(max_batch, str):
            if max_batch != "auto":
                raise ValueError(
                    f"max_batch must be a positive int or 'auto', "
                    f"got {max_batch!r}"
                )
            self._governor = service_governor()
            max_batch = self._governor.size
        else:
            if max_batch < 1:
                raise ValueError("max_batch must be >= 1")
            self._governor = None
        if not ack_budget > 0:
            raise ValueError("ack_budget must be positive")
        if tracer is not None and trace_path is None:
            raise ValueError("trace_path is required when tracing")
        self.store = store
        self.cache = cache
        self.metadata = metadata
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.ack_budget = ack_budget
        self.slo = slo
        self.alerts = alerts
        self.tracer = tracer
        self.trace_path = trace_path
        self.known_package = known_package
        self._host = host
        self._requested_port = port
        self._socket_path = socket_path

        self.lock = threading.RLock()
        cache.enable_lock(self.lock)
        self._cond = threading.Condition()
        self._queue: Deque[_PendingSubmit] = deque()
        self._draining = False
        self._stopping = False
        self.accepted = 0
        self.rejected = 0
        self.batches = 0
        self._ins = (
            _ServiceInstruments(registry) if registry is not None else None
        )
        if self._ins is not None:
            self._ins.batch_size.set(self.max_batch)
        self.registry = registry
        self.clock = clock if clock is not None else default_clock()
        # The span ring always records — the service pipeline is not the
        # benchmarked hot path, and "why was that submit slow?" must be
        # answerable without a restart.  Per-stage histograms land in
        # ``registry`` (when attached) as service_stage_seconds.
        self.spans = SpanRecorder(
            limit=span_limit, clock=self.clock, registry=registry
        )
        # Client processes (launchers, other caches) can push their own
        # registry snapshots to POST /telemetry; /metrics then exposes
        # the whole fleet — this daemon's service_*/landlord_* families
        # as the aggregate plus worker-labelled series per client.  With
        # no pushed clients the exposition is byte-identical to the bare
        # registry, so existing scrapers see no change.
        self.telemetry = TelemetryAggregator(base=registry)
        self.obs = ObsServer(
            self.telemetry,
            status_fn=self._status,
            tracer=tracer,
            spans=self.spans,
            on_scrape=self._on_scrape if registry is not None else None,
            lock=self.lock,
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._unix_httpd: Optional[_UnixHTTPServer] = None
        self._threads: List[threading.Thread] = []
        self._batcher_thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> Optional[int]:
        """The bound TCP port once started."""
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> Optional[str]:
        """Base URL once started, e.g. ``http://127.0.0.1:43210``."""
        if self._httpd is None:
            return None
        return f"http://{self._host}:{self.port}"

    @property
    def queue_depth(self) -> int:
        """Submissions currently waiting for the batcher."""
        with self._cond:
            return len(self._queue)

    def start(self) -> int:
        """Bind the socket(s), start the batcher; returns the TCP port."""
        if self._httpd is not None:
            raise RuntimeError("daemon already started")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        servers = [self._httpd]
        if self._socket_path is not None:
            self._unix_httpd = _UnixHTTPServer(self._socket_path, handler)
            self._unix_httpd.daemon_threads = True
            servers.append(self._unix_httpd)
        self._batcher_thread = threading.Thread(
            target=self._batcher, name="repro-service-batcher", daemon=True
        )
        self._batcher_thread.start()
        for httpd in servers:
            thread = threading.Thread(
                target=httpd.serve_forever,
                name="repro-service-server",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self.port

    def stop(self) -> None:
        """Graceful shutdown: drain, final covering snapshot, unbind.

        New submissions are rejected with 503 from the moment this is
        called; everything already admitted is applied (and its client
        answered) before the final snapshot is written and the journal
        compacted.  Idempotent.
        """
        with self._cond:
            already = self._stopping
            self._draining = True
            self._stopping = True
            self._cond.notify_all()
        if already:
            return
        if self._batcher_thread is not None:
            self._batcher_thread.join()
        with self.lock:
            self.store.flush(self.cache, self.metadata)
            self._drain_traces()
        self._close_sockets()

    def kill(self) -> None:
        """Crash-style shutdown: stop everything, flush *nothing*.

        Queued-but-unapplied submissions are abandoned (their clients
        were never acknowledged) and no final snapshot is written — the
        on-disk state is exactly what a SIGKILL would leave.  Exists so
        tests and the fault-injection harness can exercise the
        ``recover`` path against a realistic crash image.
        """
        with self._cond:
            self._draining = True
            self._stopping = True
            for item in self._queue:
                item.error = "daemon killed"
                item.done.set()
            self._queue.clear()
            self._cond.notify_all()
        if self._batcher_thread is not None:
            self._batcher_thread.join()
        self._close_sockets()

    def _close_sockets(self) -> None:
        for httpd in (self._httpd, self._unix_httpd):
            if httpd is not None:
                httpd.shutdown()
                httpd.server_close()
        if self._unix_httpd is not None and self._socket_path is not None:
            try:
                os.unlink(self._socket_path)
            except FileNotFoundError:
                pass
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads.clear()
        self._httpd = None
        self._unix_httpd = None

    def __enter__(self) -> "LandlordDaemon":
        """Context-manager start (``with LandlordDaemon(...) as d:``)."""
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager graceful stop (drain + final snapshot)."""
        self.stop()

    # -- submission path ---------------------------------------------------

    def submit(
        self, packages: Sequence[str], traceparent: Optional[str] = None
    ) -> Tuple[int, dict]:
        """Admit one submission and wait for its decision (handler hook).

        Returns ``(http_status, json_payload)``: 200 with the decision,
        400 for invalid specs, 429 when the queue is full, 503 when
        draining, 500 if the batcher failed.  Blocks the calling
        (handler) thread until the batcher has journalled *and* applied
        the request — the ack-after-fsync contract.

        ``traceparent``, when a valid W3C header, continues the
        client's distributed trace: every pipeline stage (admission,
        queue, fsync, apply, ack) is recorded under the client's trace
        id with the client's span as parent, and the 200 payload echoes
        the ``trace_id``.  Absent or malformed context starts a fresh
        trace — a request is never dropped from tracing.  Rejected
        submissions record no spans (they never enter the pipeline).
        """
        t_start = self.clock.monotonic()
        context = (
            parse_traceparent(traceparent) if traceparent is not None
            else None
        )
        if context is not None:
            trace_id, parent_id = context
        else:
            trace_id, parent_id = new_trace_id(), None
        if not packages:
            return 400, {"error": "empty package list"}
        if self.known_package is not None:
            unknown = sorted(
                p for p in set(packages) if not self.known_package(p)
            )
            if unknown:
                if self._ins is not None:
                    self._ins.rejected_invalid.inc()
                return 400, {"error": "unknown packages", "unknown": unknown}
        item = _PendingSubmit(tuple(packages))
        item.trace_id = trace_id
        item.parent_id = parent_id
        with self._cond:
            if self._draining:
                self.rejected += 1
                if self._ins is not None:
                    self._ins.rejected_draining.inc()
                return 503, {"error": "draining", "retry": False}
            if len(self._queue) >= self.max_queue:
                self.rejected += 1
                if self._ins is not None:
                    self._ins.rejected_full.inc()
                return 429, {
                    "error": "queue full",
                    "queue_depth": len(self._queue),
                    "retry": True,
                }
            item.enqueued_mono = self.clock.monotonic()
            self._queue.append(item)
            self.accepted += 1
            if self._ins is not None:
                self._ins.accepted.inc()
            self._cond.notify_all()
        self.spans.observe(
            "admission",
            t_start,
            max(0.0, item.enqueued_mono - t_start),
            trace_id,
            parent_id=parent_id,
        )
        while not item.done.wait(timeout=0.5):
            batcher = self._batcher_thread
            if batcher is None or not batcher.is_alive():
                if item.done.is_set():
                    break
                return 500, {"error": "batcher died"}
        if item.error is not None:
            return 500, {"error": item.error}
        decision = item.decision
        ack_start = (
            item.applied_mono if item.applied_mono is not None
            else self.clock.monotonic()
        )
        self.spans.observe(
            "ack",
            ack_start,
            max(0.0, self.clock.monotonic() - ack_start),
            trace_id,
            parent_id=parent_id,
            request_index=item.request_index,
        )
        return 200, {
            "action": decision.action.value,
            "request_index": item.request_index,
            "image": decision.image.id,
            "image_bytes": decision.image.size,
            "image_packages": decision.image.package_count,
            "requested_bytes": decision.requested_bytes,
            "bytes_added": decision.bytes_added,
            "distance": decision.distance,
            "evicted": list(decision.evicted),
            "trace_id": trace_id,
        }

    # -- the batcher -------------------------------------------------------

    def _batcher(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue:
                    return  # stopping and drained
                window = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue), self.max_batch))
                ]
            self._apply_window(window, self.clock.monotonic())

    def _apply_window(
        self, window: List[_PendingSubmit], pop_mono: float
    ) -> None:
        ops = [
            ("request", {"packages": sorted(set(item.packages))})
            for item in window
        ]
        timings: dict = {}
        with self.lock:
            base = self.cache.stats.requests
            trace_map = {
                base + offset: item.trace_id
                for offset, item in enumerate(window)
                if item.trace_id is not None
            }
            self.cache.set_exemplar_traces(trace_map or None)
            try:
                results = self.store.apply_batch(
                    self.cache, self.metadata, ops, timings=timings
                )
            except Exception as exc:  # surface, don't hang the clients
                message = f"{type(exc).__name__}: {exc}"
                for item in window:
                    item.error = message
                    item.done.set()
                return
            finally:
                # Runs even on the except-branch return: exemplar trace
                # ids never outlive the window they were built for.
                self.cache.set_exemplar_traces(None)
            if self.tracer is not None:
                # Cross-link decision records to their distributed
                # traces *before* draining to the sidecar, so the
                # persisted JSONL carries trace_id too.
                for offset, item in enumerate(window):
                    if item.trace_id is not None:
                        self.tracer.link_trace(base + offset, item.trace_id)
            if self.alerts is not None and self.slo is not None:
                self.alerts.evaluate(
                    self.slo.values(), self.cache.stats.requests - 1
                )
            self._drain_traces()
            self.batches += 1
            if self.slo is not None:
                self.slo.set_extra("queue_depth", float(self.queue_depth))
                self.slo.set_extra(
                    "submissions_rejected", float(self.rejected)
                )
            if self._ins is not None:
                self._ins.batches.inc()
                self._ins.batched_requests.inc(len(window))
        fsync_start, fsync_s = timings.get("fsync", (pop_mono, 0.0))
        apply_start, apply_s = timings.get("apply", (pop_mono, 0.0))
        for offset, (item, decision) in enumerate(zip(window, results)):
            index = base + offset
            item.request_index = index
            item.decision = decision
            if item.trace_id is not None:
                self.spans.observe(
                    "queue",
                    item.enqueued_mono,
                    max(0.0, pop_mono - item.enqueued_mono),
                    item.trace_id,
                    parent_id=item.parent_id,
                    request_index=index,
                )
                self.spans.observe(
                    "fsync",
                    fsync_start,
                    fsync_s,
                    item.trace_id,
                    parent_id=item.parent_id,
                    request_index=index,
                )
                self.spans.observe(
                    "apply",
                    apply_start,
                    apply_s,
                    item.trace_id,
                    parent_id=item.parent_id,
                    request_index=index,
                )
            item.applied_mono = self.clock.monotonic()
            item.done.set()
        self._govern(fsync_s + apply_s)

    def _govern(self, window_s: float) -> None:
        """Fold one window's wall time into the adaptive batch cap.

        Runs after the clients were woken (the step is cheap, but acks
        come first).  The latency signal is window fsync+apply time over
        the ack budget; a healthy window with *no* backlog holds rather
        than grows — the cap wasn't binding, so growth is untested
        guesswork — while a healthy window popped from a backlog grows
        additively, and a window near/over budget shrinks the cap
        multiplicatively regardless of backlog.
        """
        governor = self._governor
        if governor is not None:
            signal = min(1.0, window_s / self.ack_budget)
            if signal < governor.high_watermark and self.queue_depth == 0:
                signal = governor.hold_signal
            self.max_batch = governor.observe(signal)
        if self._ins is not None:
            self._ins.batch_size.set(self.max_batch)
            stats = getattr(self.cache._engine, "batch_stats", None)
            if stats is not None:
                self._ins.dirty_rate.set(stats["last_dirty_rate"])

    def _drain_traces(self) -> None:
        if self.tracer is None:
            return
        traces = self.tracer.drain()
        if traces:
            write_traces(traces, self.trace_path, append=True)

    # -- observability -----------------------------------------------------

    def _on_scrape(self) -> None:
        if self._ins is not None:
            self._ins.queue_depth.set(self.queue_depth)
            self._ins.batch_size.set(self.max_batch)
            stats = getattr(self.cache._engine, "batch_stats", None)
            if stats is not None:
                self._ins.dirty_rate.set(stats["last_dirty_rate"])
        if self.slo is not None:
            self.slo.set_extra("queue_depth", float(self.queue_depth))
            self.slo.set_extra("submissions_rejected", float(self.rejected))
            self.slo.export_to(self.registry)

    def _status(self) -> dict:
        """The ``/statusz`` body: cache status plus a ``service`` block."""
        extra: dict = {
            "service": {
                "queue_depth": self.queue_depth,
                "max_queue": self.max_queue,
                "max_batch": self.max_batch,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "batches": self.batches,
                "draining": self._draining,
            }
        }
        if self._governor is not None:
            extra["service"]["batch_governor"] = self._governor.status()
        telemetry_status = self.telemetry.status()
        if telemetry_status["workers"]:
            extra["telemetry"] = telemetry_status
        stages = self.spans.stage_stats()
        if stages:
            extra["stages"] = stages
        return build_status(
            self.cache,
            slo=self.slo,
            alerts=self.alerts,
            extra=extra,
        )


def _make_handler(daemon: "LandlordDaemon"):
    """Build the request-handler class closed over one daemon."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # many clients are chatty; stay silent

        def _reply(self, code: int, body: str, content_type: str) -> None:
            data = body.encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _reply_json(self, code: int, payload: dict) -> None:
            self._reply(code, json.dumps(payload), "application/json")

        def do_GET(self):  # noqa: N802 - stdlib casing
            path, _, query = self.path.partition("?")
            path = path.rstrip("/") or "/"
            try:
                status, content_type, body = daemon.obs.render_get(
                    path, query
                )
                if status == 404 and not path.startswith("/traces"):
                    body = (
                        "endpoints: POST /submit /telemetry; GET /metrics "
                        "/healthz /statusz /traces/<n>\n"
                    )
                self._reply(status, body, content_type)
            except BrokenPipeError:  # client went away mid-reply
                pass

        def do_POST(self):  # noqa: N802 - stdlib casing
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path not in ("/submit", "/telemetry"):
                    self._reply_json(
                        404, {"error": "POST /submit or /telemetry only"}
                    )
                    return
                try:
                    length = int(self.headers.get("Content-Length", ""))
                except ValueError:
                    self._reply_json(411, {"error": "length required"})
                    return
                if length > MAX_BODY_BYTES:
                    self._reply_json(413, {"error": "body too large"})
                    return
                try:
                    payload = json.loads(self.rfile.read(length))
                except ValueError:
                    self._reply_json(400, {"error": "bad JSON body"})
                    return
                if path == "/telemetry":
                    try:
                        ack = daemon.telemetry.ingest_payload(payload)
                    except (ValueError, KeyError, IndexError, TypeError) as exc:
                        self._reply_json(400, {"error": str(exc)})
                        return
                    self._reply_json(200, ack)
                    return
                packages = (
                    payload.get("packages")
                    if isinstance(payload, dict)
                    else payload
                )
                if not isinstance(packages, list) or not all(
                    isinstance(p, str) for p in packages
                ):
                    self._reply_json(
                        400,
                        {"error": 'body must be {"packages": [ids...]}'},
                    )
                    return
                status, body = daemon.submit(
                    packages,
                    traceparent=self.headers.get("traceparent"),
                )
                self._reply_json(status, body)
            except BrokenPipeError:  # client went away mid-reply
                pass

    return Handler
