"""Process-pool fan-out for embarrassingly parallel experiment workloads.

The paper's protocol (§VI) evaluates every figure as a grid of independent
simulations — *"at each choice of α (in steps of 0.05) we performed a set
of 20 simulated runs"* — which this subsystem executes across worker
processes instead of serially:

- :mod:`repro.parallel.seeds` — ``SeedSequence``-based derivation of
  per-repetition seeds, shared by the serial and parallel paths so both
  produce bit-identical results;
- :mod:`repro.parallel.pool` — the generic bounded, chunked,
  order-preserving process-pool map with a clean serial fallback;
- :mod:`repro.parallel.simulations` — simulation-specific workers: a
  :class:`SimulationPool` whose worker processes build the (expensive,
  shared) :class:`~repro.packages.repository.Repository` once each.

Worker counts resolve as: explicit argument > ``REPRO_WORKERS`` env var >
the caller's default (``1`` for library calls, all CPUs for the CLI).
Results are keyed by task index, never by completion order, so any worker
count — including the serial fallback — yields identical output.
"""

from repro.parallel.pool import (
    ParallelExecutionError,
    parallel_map,
    resolve_workers,
)
from repro.parallel.seeds import repetition_seed_sequence, repetition_seeds
from repro.parallel.shm import SharedPackedMatrix
from repro.parallel.simulations import (
    RepositorySpec,
    SimulationPool,
    merge_result_metrics,
)

__all__ = [
    "ParallelExecutionError",
    "parallel_map",
    "resolve_workers",
    "repetition_seed_sequence",
    "repetition_seeds",
    "SharedPackedMatrix",
    "RepositorySpec",
    "SimulationPool",
    "merge_result_metrics",
]
