"""Shared-memory transport for the packed closure bit-matrix.

A sweep's workers all need the same repository-derived state; on spawn
platforms each worker rebuilds it, and the dominant rebuild cost is the
transitive-closure walk over the dependency DAG.
:class:`SharedPackedMatrix` lets the parent compute
:meth:`~repro.packages.repository.Repository.closure_matrix` once and
publish it through :mod:`multiprocessing.shared_memory`; workers attach
the segment read-only and decode closure rows lazily instead of
re-walking the DAG (fork platforms inherit the parent's warm memo
directly and skip this path entirely — see
:mod:`repro.parallel.simulations`).

Failure is always graceful: a platform that cannot allocate or attach
shared memory gets ``None`` and falls back to the per-worker rebuild,
never an error — mirroring the serial-fallback philosophy of
:mod:`repro.parallel.pool`.
"""

from __future__ import annotations

import warnings
from multiprocessing import shared_memory
from typing import Optional, Tuple

import numpy as np

__all__ = ["SharedPackedMatrix"]

#: Picklable descriptor shipped to workers: (segment name, shape, dtype).
Handle = Tuple[str, Tuple[int, ...], str]


class SharedPackedMatrix:
    """A NumPy matrix backed by a POSIX shared-memory segment.

    The creating process owns the segment and must :meth:`unlink` it
    when the pool is done (closing alone only drops this process's
    mapping; the segment itself persists until unlinked).  Attached
    processes hold a mapping that lives as long as the object — keep a
    reference for the worker's lifetime, since ``array`` views the
    mapped buffer directly (zero-copy).
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        dtype: str,
        owner: bool,
    ):
        self._segment = segment
        self._owner = owner
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=segment.buf)

    @classmethod
    def create(cls, array: np.ndarray) -> Optional["SharedPackedMatrix"]:
        """Publish ``array`` into a fresh segment; ``None`` on failure."""
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, int(array.nbytes))
            )
        except (OSError, PermissionError, ValueError) as exc:
            warnings.warn(
                f"cannot allocate shared memory ({exc!r}); "
                "workers will rebuild closures locally",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        shared = cls(segment, array.shape, array.dtype.str, owner=True)
        shared.array[...] = array
        return shared

    def handle(self) -> Handle:
        """The picklable descriptor a worker passes to :meth:`attach`."""
        return (self._segment.name, self.shape, self.dtype.str)

    @classmethod
    def attach(cls, handle: Handle) -> Optional["SharedPackedMatrix"]:
        """Map an existing segment by handle; ``None`` on failure."""
        name, shape, dtype = handle
        tracked_fallback = False
        try:
            try:
                segment = shared_memory.SharedMemory(name=name, track=False)
            except TypeError:
                # Python < 3.13 has no track= parameter; attach normally
                # and unregister from the resource tracker below so only
                # the creating process ever unlinks the segment.
                tracked_fallback = True
                segment = shared_memory.SharedMemory(name=name)
        except (OSError, PermissionError, ValueError) as exc:
            warnings.warn(
                f"cannot attach shared memory {name!r} ({exc!r}); "
                "rebuilding closures locally",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if tracked_fallback:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals vary
                pass
        return cls(segment, tuple(shape), dtype, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (safe to call repeatedly)."""
        self.array = None  # release the exported buffer before closing
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; no-op if already gone)."""
        if not self._owner:
            return
        try:
            self._segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass
