"""Bounded, order-preserving process-pool map with a serial fallback.

Design constraints (they shape every choice here):

- **Determinism** — results are returned keyed by submission index, never
  by completion order, so any worker count produces identical output.
- **Bounded memory** — tasks are submitted in chunks with at most
  ``workers * INFLIGHT_FACTOR`` futures outstanding; a million-cell sweep
  never materialises a million pickled futures.
- **Attributable failure** — a task that raises in a worker surfaces in
  the parent as :class:`ParallelExecutionError` naming the failing task's
  label (e.g. ``alpha=0.40 rep=3``) with the worker traceback attached.
- **Graceful degradation** — if the platform cannot start a pool or
  pickle the payload, execution falls back to the serial path with a
  warning instead of failing; ``workers=1`` is always the serial path.

Worker processes prefer the ``fork`` start method (cheap on Linux, and
inherits interned state); platforms without it use their default method.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "ParallelExecutionError",
    "parallel_map",
    "resolve_workers",
    "set_task_observer",
]

# At most this many chunks in flight per worker (bounds pickled backlog).
INFLIGHT_FACTOR = 4
# Chunks never grow beyond this many tasks (keeps progress responsive).
MAX_CHUNK = 32


# Worker-side task observer: called as ``observer(index, result)`` after
# each successful task, where ``index`` is the task's global submission
# index.  Installed per worker process by pool initializers that stream
# per-task telemetry (see repro.parallel.simulations); ``None`` keeps
# the hot loop untouched.  An observer that raises is disabled rather
# than failing the task — telemetry is best-effort by contract.
_TASK_OBSERVER: List[Optional[Callable[[int, Any], None]]] = [None]


def set_task_observer(
    observer: Optional[Callable[[int, Any], None]]
) -> None:
    """Install (or clear, with ``None``) this process's task observer."""
    _TASK_OBSERVER[0] = observer


class ParallelExecutionError(RuntimeError):
    """A task failed inside a worker process.

    Carries the task's ``label`` and submission ``index`` so the failing
    cell of a sweep — not just "something in the pool" — is identifiable,
    plus the worker-side traceback in the message.
    """

    def __init__(self, label: str, index: int, worker_traceback: str):
        super().__init__(
            f"parallel task {label!r} (index {index}) failed in worker:\n"
            f"{worker_traceback}"
        )
        self.label = label
        self.index = index
        self.worker_traceback = worker_traceback


def resolve_workers(
    workers: Optional[int] = None, default: Optional[int] = None
) -> int:
    """Resolve a worker count: explicit > ``REPRO_WORKERS`` > ``default``.

    ``default=None`` means "all CPUs" (the CLI's choice); library entry
    points pass nothing and stay serial unless the user opts in.  A count
    below 1 — from any source — is rejected rather than silently clamped.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
        elif default is not None:
            workers = default
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(
            f"workers must be a positive integer, got {workers} "
            "(use workers=1 for serial execution)"
        )
    return workers


def _mp_context():
    """The preferred multiprocessing context (``fork`` where available)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _make_executor(workers, initializer, initargs):
    """Create a process pool, or ``None`` if the platform cannot."""
    try:
        return ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_mp_context(),
            initializer=initializer,
            initargs=initargs,
        )
    except (NotImplementedError, OSError, ValueError, PermissionError) as exc:
        warnings.warn(
            f"cannot start a process pool ({exc!r}); running serially",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[Tuple[int, Any]],
    observer_offset: int = 0,
):
    """Worker-side chunk loop: per-task success flag, result or traceback.

    ``observer_offset`` shifts the submission indices seen by the task
    observer — a pool reused across batches keeps indices globally
    unique by passing its dispatched-task count.
    """
    out = []
    for index, item in chunk:
        try:
            result = fn(item)
        except BaseException:  # noqa: BLE001 - reported in the parent
            out.append((index, False, traceback.format_exc()))
            continue
        observer = _TASK_OBSERVER[0]
        if observer is not None:
            try:
                observer(index + observer_offset, result)
            except Exception:  # noqa: BLE001 - telemetry is best-effort
                _TASK_OBSERVER[0] = None
        out.append((index, True, result))
    return out


def _chunked(items: Sequence[Any], chunk_size: int) -> List[List[Tuple[int, Any]]]:
    indexed = list(enumerate(items))
    return [
        indexed[start : start + chunk_size]
        for start in range(0, len(indexed), chunk_size)
    ]


def _auto_chunk(n_items: int, workers: int) -> int:
    """Chunk size balancing IPC overhead against scheduling granularity."""
    return max(1, min(MAX_CHUNK, n_items // (workers * INFLIGHT_FACTOR * 2)))


def _execute_bounded(
    executor: ProcessPoolExecutor,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    labels: Sequence[str],
    progress: Optional[Callable[[int, int, str], None]],
    workers: int,
    chunk_size: Optional[int] = None,
    observer_offset: int = 0,
) -> List[Any]:
    """Submit chunks with a bounded in-flight window; results by index."""
    chunks = _chunked(items, chunk_size or _auto_chunk(len(items), workers))
    results: List[Any] = [None] * len(items)
    total = len(items)
    done = 0
    pending = set()
    next_chunk = 0

    def submit_one() -> None:
        nonlocal next_chunk
        if next_chunk < len(chunks):
            pending.add(
                executor.submit(
                    _run_chunk, fn, chunks[next_chunk], observer_offset
                )
            )
            next_chunk += 1

    for _ in range(max(1, workers * INFLIGHT_FACTOR)):
        submit_one()
    while pending:
        finished, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in finished:
            for index, ok, payload in future.result():
                if not ok:
                    for waiting in pending:
                        waiting.cancel()
                    raise ParallelExecutionError(labels[index], index, payload)
                results[index] = payload
                done += 1
                if progress is not None:
                    progress(done, total, labels[index])
            submit_one()
    return results


def _serial_map(fn, items, labels, progress, initializer, initargs):
    """The serial fallback: same contract, current process."""
    if initializer is not None:
        initializer(*initargs)
    results = []
    total = len(items)
    for i, item in enumerate(items):
        results.append(fn(item))
        if progress is not None:
            progress(i + 1, total, labels[i])
    return results


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
    labels: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[int, int, str], None]] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Map ``fn`` over ``items`` across worker processes, order-preserving.

    ``fn`` must be a module-level callable (pickled by reference) and
    ``items`` picklable.  ``initializer(*initargs)`` runs once per worker
    — the place to build expensive shared state (the serial path calls it
    once in-process).  ``progress(done, total, label)`` fires in the
    parent as each task completes.  ``workers`` resolves via
    :func:`resolve_workers`; 1 (the library default) runs serially, and
    platforms that cannot fork/pickle fall back serially with a warning.
    Raises :class:`ParallelExecutionError` naming the first failing task.
    """
    items = list(items)
    if labels is None:
        labels = [f"task {i}" for i in range(len(items))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(items):
            raise ValueError("labels must match items one-to-one")
    if not items:
        return []
    n_workers = min(resolve_workers(workers), len(items))
    if n_workers <= 1:
        return _serial_map(fn, items, labels, progress, initializer, initargs)
    executor = _make_executor(n_workers, initializer, initargs)
    if executor is None:
        return _serial_map(fn, items, labels, progress, initializer, initargs)
    try:
        with executor:
            return _execute_bounded(
                executor, fn, items, labels, progress, n_workers, chunk_size
            )
    except (pickle.PicklingError, BrokenProcessPool) as exc:
        warnings.warn(
            f"process-pool execution failed ({exc!r}); retrying serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_map(fn, items, labels, progress, initializer, initargs)
