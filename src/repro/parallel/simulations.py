"""Simulation workers: fan simulation configs out over a shared repository.

The repository is the expensive shared input of every sweep — one build
per worker *process*, not per task, is the difference between linear
speedup and a pickling regression.  Two ways to get it into workers:

- :class:`RepositorySpec` — a tiny picklable recipe; each worker rebuilds
  the repository deterministically from the seed (preferred: ships bytes
  proportional to four scalars);
- a prebuilt :class:`~repro.packages.repository.Repository` — pickled
  once per worker through the pool initializer (for repositories loaded
  from files or otherwise not reconstructible from a spec).

:class:`SimulationPool` wraps both behind one interface and is reusable
across batches, so a multi-sweep experiment (Figure 6 runs seven sweeps)
pays worker start-up and repository construction once.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.htc.simulator import SimulationConfig, SimulationResult, simulate
from repro.packages.repository import Repository
from repro.packages.sft import build_experiment_repository
from repro.parallel.pool import (
    _execute_bounded,
    _make_executor,
    _mp_context,
    resolve_workers,
    set_task_observer,
)
from repro.parallel.shm import SharedPackedMatrix

__all__ = ["RepositorySpec", "SimulationPool"]


@dataclass(frozen=True)
class RepositorySpec:
    """Picklable recipe for rebuilding an experiment repository in workers.

    Equal specs build identical repositories (construction is seeded), so
    a worker can cache by spec.  A spec with ``seed=None`` would *not*
    rebuild deterministically — callers must ship the built
    :class:`Repository` object instead in that case.
    """

    kind: str
    seed: Optional[int]
    n_packages: int
    total_size: int

    @classmethod
    def from_config(cls, config: SimulationConfig) -> "RepositorySpec":
        """The spec matching what :func:`simulate` would build itself."""
        return cls(
            kind=config.repo_kind,
            seed=config.seed,
            n_packages=config.n_packages,
            total_size=config.repo_total_size,
        )

    def build(self) -> Repository:
        """Construct the repository this spec describes."""
        return build_experiment_repository(
            self.kind,
            seed=self.seed,
            n_packages=self.n_packages,
            target_total_size=self.total_size,
        )


RepositorySource = Union[RepositorySpec, Repository]

# Per-worker-process repository, installed by the pool initializer.  Keyed
# by spec so a worker surviving across pools with the same spec reuses it.
# The parent pre-installs this *before* forking (see SimulationPool), so
# fork-platform workers inherit the warm repository and closure memo and
# their initializer is a no-op.
_WORKER_REPOSITORY: List[object] = [None, None]  # [key, repository]
# Keeps a worker's shared-memory attachment mapped for its lifetime.
_WORKER_SHM: List[object] = [None]
# Per-worker-process telemetry pusher (see repro.obs.telemetry),
# installed by the pool initializer when the pool was given an endpoint.
_WORKER_PUSHER: List[object] = [None]
# Per-worker-process span recorder (see repro.obs.spans): each sweep
# cell runs under its own ``sweep_cell`` trace, so the same waterfall
# model that explains daemon submits explains slow cells.
_WORKER_SPANS: List[object] = [None]


def worker_span_recorder():
    """This process's sweep-span recorder (lazily created, bounded)."""
    if _WORKER_SPANS[0] is None:
        from repro.obs.spans import SpanRecorder

        _WORKER_SPANS[0] = SpanRecorder(limit=1024)
    return _WORKER_SPANS[0]


def _traced_simulate(
    config: SimulationConfig, repository, spans
) -> SimulationResult:
    """Run one cell under a ``sweep_cell`` span (one trace per cell)."""
    with spans.start(
        "sweep_cell", attrs=(("alpha", f"{config.alpha:g}"),)
    ):
        return simulate(config, repository=repository)


def _push_task_metrics(index: int, result) -> None:
    """Task observer: stream one finished cell's metrics to the parent.

    The push happens synchronously inside the worker before the result
    travels back, so by the time the pool's ``run`` returns, every
    cell has reached the collector — an exit scrape is complete.
    """
    pusher = _WORKER_PUSHER[0]
    snap = getattr(result, "metrics", None)
    if pusher is not None and snap is not None:
        pusher.push_cells([(index, snap)])


def _finalize_worker_telemetry() -> None:
    """Worker exit hook: mark this worker done at the parent (idempotent)."""
    pusher = _WORKER_PUSHER[0]
    if pusher is not None:
        _WORKER_PUSHER[0] = None
        pusher.finalize()


def _install_worker_telemetry(endpoint: str) -> None:
    from multiprocessing import util as _mp_util

    from repro.obs.telemetry import TelemetryPusher

    pusher = TelemetryPusher(endpoint)
    _WORKER_PUSHER[0] = pusher
    set_task_observer(_push_task_metrics)
    # Pool workers exit through multiprocessing's _exit_function +
    # os._exit, which skips standard atexit handlers — register with
    # multiprocessing's own finalizer registry so the final marker is
    # pushed from real workers, and with atexit as a fallback for the
    # in-process case.  The hook is idempotent, so double-firing is fine.
    _mp_util.Finalize(None, _finalize_worker_telemetry, exitpriority=10)
    atexit.register(_finalize_worker_telemetry)
    pusher.register()


def _source_key(source: RepositorySource) -> object:
    return source if isinstance(source, RepositorySpec) else id(source)


def _materialise(source: RepositorySource) -> Repository:
    return source.build() if isinstance(source, RepositorySpec) else source


def _init_simulation_worker(
    source: RepositorySource, closure_handle=None, telemetry=None
) -> None:
    """Pool initializer: build/install the shared repository once.

    Three tiers, cheapest first: (1) the parent pre-installed the
    repository before forking, so this process inherited it and returns
    immediately; (2) a shared-memory closure-matrix handle is attached
    so the local rebuild skips the dependency-DAG walk (spawn
    platforms); (3) plain rebuild from the source.

    ``telemetry`` (a collector base URL) additionally installs a
    per-task metrics pusher + exit finalizer in this worker — the
    fork-inherited-repository tier still runs this part, since pushers
    are per *process*, not per repository.
    """
    if telemetry is not None and _WORKER_PUSHER[0] is None:
        _install_worker_telemetry(telemetry)
    key = _source_key(source)
    if _WORKER_REPOSITORY[0] == key and _WORKER_REPOSITORY[1] is not None:
        return  # inherited warm via fork (or reused across pools)
    repository = _materialise(source)
    if closure_handle is not None:
        shared = SharedPackedMatrix.attach(closure_handle)
        if shared is not None:
            _WORKER_SHM[0] = shared  # hold the mapping open
            repository.install_packed_closures(shared.array)
    _WORKER_REPOSITORY[0] = key
    _WORKER_REPOSITORY[1] = repository


def _simulate_task(config: SimulationConfig) -> SimulationResult:
    """Run one simulation against the worker's installed repository."""
    repository = _WORKER_REPOSITORY[1]
    return _traced_simulate(config, repository, worker_span_recorder())


class SimulationPool:
    """A reusable worker pool bound to one shared repository.

    Usage::

        with SimulationPool(RepositorySpec.from_config(cfg), workers=8) as pool:
            results = pool.run(cell_configs, labels=cell_labels)

    ``run`` returns :class:`SimulationResult`\\ s in submission order —
    bit-identical to calling :func:`simulate` serially over the same
    configs — regardless of worker count or completion order.  When the
    platform cannot start a pool (or ``workers=1``), the pool degrades to
    an in-process loop over a single locally built repository.
    """

    def __init__(
        self,
        source: RepositorySource,
        workers: Optional[int] = None,
        telemetry: Optional[str] = None,
    ):
        if isinstance(source, RepositorySpec) and source.seed is None:
            raise ValueError(
                "RepositorySpec with seed=None cannot be rebuilt "
                "deterministically in workers; pass the built Repository"
            )
        self.workers = resolve_workers(workers)
        self._source = source
        self.telemetry = telemetry
        self._local_repo: Optional[Repository] = None
        self._local_pusher = None
        #: This process's span recorder — serial runs record into it
        #: directly; worker processes each hold their own (same model).
        self.spans = worker_span_recorder()
        self._executor = None
        self._shared_closures: Optional[SharedPackedMatrix] = None
        self._tasks_dispatched = 0
        self.shared_universe = False
        if self.workers > 1:
            closure_handle = None
            if _mp_context() is not None:
                # fork is available: build + fully warm the repository in
                # the parent *before* the executor forks, so every worker
                # inherits the closure memo and its initializer no-ops.
                repository = self._repository()
                repository.warm_closures()
                _WORKER_REPOSITORY[0] = _source_key(source)
                _WORKER_REPOSITORY[1] = repository
                self.shared_universe = True
            else:
                # spawn platforms rebuild per worker; publish the packed
                # closure matrix once so rebuilds skip the DAG walk.
                shared = SharedPackedMatrix.create(
                    self._repository().closure_matrix()
                )
                if shared is not None:
                    self._shared_closures = shared
                    self.shared_universe = True
                    closure_handle = shared.handle()
            self._executor = _make_executor(
                self.workers,
                _init_simulation_worker,
                (source, closure_handle, telemetry),
            )

    @property
    def parallel(self) -> bool:
        """Whether batches actually fan out to worker processes."""
        return self._executor is not None

    def _repository(self) -> Repository:
        if self._local_repo is None:
            self._local_repo = _materialise(self._source)
        return self._local_repo

    def run(
        self,
        configs: Sequence[SimulationConfig],
        labels: Optional[Sequence[str]] = None,
        progress: Optional[Callable[[int, int, str], None]] = None,
    ) -> List[SimulationResult]:
        """Execute a batch of simulation configs; results by input index."""
        configs = list(configs)
        if labels is None:
            labels = [f"simulation {i}" for i in range(len(configs))]
        else:
            labels = [str(label) for label in labels]
            if len(labels) != len(configs):
                raise ValueError("labels must match configs one-to-one")
        if not configs:
            return []
        offset = self._tasks_dispatched
        self._tasks_dispatched += len(configs)
        if self._executor is None:
            repository = self._repository()
            pusher = self._serial_pusher()
            results = []
            for i, config in enumerate(configs):
                result = _traced_simulate(config, repository, self.spans)
                if pusher is not None:
                    snap = getattr(result, "metrics", None)
                    if snap is not None:
                        pusher.push_cells([(offset + i, snap)])
                results.append(result)
                if progress is not None:
                    progress(i + 1, len(configs), labels[i])
            return results
        return _execute_bounded(
            self._executor, _simulate_task, configs, labels, progress,
            self.workers, observer_offset=offset,
        )

    def _serial_pusher(self):
        """The in-process pusher for the serial path (``worker="main"``)."""
        if self.telemetry is None:
            return None
        if self._local_pusher is None:
            from repro.obs.telemetry import TelemetryPusher

            self._local_pusher = TelemetryPusher(
                self.telemetry, worker="main"
            )
            self._local_pusher.register()
        return self._local_pusher

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            # With telemetry active, wait for workers to exit so their
            # atexit finalizers push the final marker before we return.
            self._executor.shutdown(
                wait=self.telemetry is not None, cancel_futures=True
            )
            self._executor = None
        if self._local_pusher is not None:
            self._local_pusher.finalize()
            self._local_pusher = None
        if self._shared_closures is not None:
            # Unlink after shutdown: the segment persists until the last
            # worker's mapping closes, so in-flight readers are safe.
            self._shared_closures.close()
            self._shared_closures.unlink()
            self._shared_closures = None

    def __enter__(self) -> "SimulationPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Context-manager exit: shut workers down."""
        self.close()


def merge_result_metrics(results, registry) -> int:
    """Fold per-run metrics snapshots into a parent registry, in order.

    Each :class:`~repro.htc.simulator.SimulationResult` produced with
    ``collect_metrics=True`` carries its worker-local registry snapshot;
    merging them in submission order makes the parent registry
    independent of worker count and completion order — the deterministic
    families (everything not ``*_seconds``) come out bit-identical to a
    serial run.  Returns the number of snapshots merged (results without
    one are skipped).
    """
    merged = 0
    for result in results:
        snap = getattr(result, "metrics", None)
        if snap is not None:
            registry.merge_snapshot(snap)
            merged += 1
    return merged
