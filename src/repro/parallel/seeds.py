"""Seed derivation for sweep repetitions (serial and parallel paths).

Repetition seeds used to be ``(config.seed or 0) * 10_000 + rep``, which
has two defects: ``seed=None`` and ``seed=0`` produce identical streams,
and distinct base seeds collide as soon as the repetition space scales
(base 1 / rep 10000 meets base 2 / rep 0).  Both paths now derive seeds
through :class:`numpy.random.SeedSequence` spawning, which keys children
cryptographically off the root entropy — no structural collisions, and
``None`` is distinguished from every integer.

The same ``(base_seed, rep)`` pair always yields the same derived seed, so
a parallel sweep distributes exactly the workloads the serial sweep runs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.util.rng import key_to_entropy

__all__ = ["repetition_seed_sequence", "repetition_seeds"]

# Domain separator: repetition seeds never collide with other spawn users.
_DOMAIN = "sweep-repetition"


def repetition_seed_sequence(
    base_seed: Optional[int],
) -> np.random.SeedSequence:
    """Root :class:`~numpy.random.SeedSequence` for a sweep's repetitions.

    ``base_seed=None`` feeds a distinct entropy word, so an unseeded sweep
    does not alias ``seed=0`` (it stays deterministic — the paper's
    sweeps are always reproducible, "unseeded" just names its own stream).
    """
    entropy = key_to_entropy(
        [_DOMAIN, base_seed is None, 0 if base_seed is None else base_seed]
    )
    return np.random.SeedSequence(entropy)


def repetition_seeds(base_seed: Optional[int], repetitions: int) -> List[int]:
    """Derive ``repetitions`` independent 32-bit simulation seeds.

    Children come from :meth:`SeedSequence.spawn`, so seeds for different
    base seeds (and for ``None``) are pairwise independent streams; the
    list depends only on ``(base_seed, repetitions prefix)`` — extending a
    sweep from 20 to 40 repetitions keeps the first 20 seeds unchanged.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    root = repetition_seed_sequence(base_seed)
    return [
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in root.spawn(repetitions)
    ]
