"""repro — a reproduction of LANDLORD (IPDPS 2020).

*Solving the Container Explosion Problem for Distributed High Throughput
Computing*, T. Shaffer, N. Hazekamp, J. Blomer, D. Thain.

LANDLORD manages a bounded cache of container images for streams of HTC
jobs by operating on container *specifications* (declarative package sets):
requests are served by superset reuse, merged into Jaccard-near images
(threshold α), or inserted fresh, with LRU eviction — trading container
bloat and merge I/O against cache storage.

Quick start::

    from repro import Landlord, build_sft_repository
    from repro.util.units import GB

    repo = build_sft_repository(n_packages=2000, target_total_size=150 * GB)
    landlord = Landlord(repo, capacity=300 * GB, alpha=0.8)
    prepared = landlord.prepare(repo.ids[:25])   # one job's requirements
    print(prepared.action, prepared.image.size)

Subpackages: :mod:`repro.core` (the contribution), :mod:`repro.packages`
(software repositories), :mod:`repro.cvmfs` (content-addressed store +
Shrinkwrap), :mod:`repro.containers` (images, layering, stores),
:mod:`repro.htc` (workloads, simulator, cluster), :mod:`repro.specs`
(specification inference), :mod:`repro.analysis` (sweeps, metrics),
:mod:`repro.experiments` (every paper figure).
"""

from repro.core import (
    ImageSpec,
    Landlord,
    LandlordCache,
    MinHashSignature,
    PreparedContainer,
    jaccard_distance,
    jaccard_similarity,
)
from repro.htc import SimulationConfig, simulate
from repro.packages import Repository, build_sft_repository

__version__ = "1.0.0"

__all__ = [
    "ImageSpec",
    "jaccard_distance",
    "jaccard_similarity",
    "MinHashSignature",
    "LandlordCache",
    "Landlord",
    "PreparedContainer",
    "Repository",
    "build_sft_repository",
    "SimulationConfig",
    "simulate",
    "__version__",
]
