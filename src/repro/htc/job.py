"""Jobs and their results.

A job in this reproduction is a specification plus a runtime; HTC streams
are just sequences of jobs.  Results carry the container decision and the
modelled costs so schedulers and reports can aggregate throughput and
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.events import EventKind
from repro.core.spec import ImageSpec

__all__ = ["Job", "JobResult"]


@dataclass(frozen=True)
class Job:
    """One unit of HTC work.

    Attributes:
        job_id: unique identity within a stream.
        spec: the packages the job requires (already closed or not is the
            submitter's concern; :class:`~repro.core.landlord.Landlord`
            can expand closures on preparation).
        runtime_seconds: modelled execution time once the container is up.
        user: submitting user/experiment tag (multi-tenant accounting).
    """

    job_id: str
    spec: ImageSpec
    runtime_seconds: float = 0.0
    user: str = ""

    def __post_init__(self) -> None:
        if self.runtime_seconds < 0:
            raise ValueError("runtime_seconds must be non-negative")

    @property
    def packages(self) -> FrozenSet[str]:
        return self.spec.packages


@dataclass(frozen=True)
class JobResult:
    """Outcome of running one job through a landlord + worker."""

    job: Job
    action: EventKind
    image_id: str
    image_bytes: int
    requested_bytes: int
    prep_seconds: float
    transfer_seconds: float = 0.0
    worker: Optional[str] = None
    site: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        """Prep + transfer + execution."""
        return self.prep_seconds + self.transfer_seconds + self.job.runtime_seconds

    @property
    def overhead_fraction(self) -> float:
        """Share of wall-clock not spent executing the job itself."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        return (self.prep_seconds + self.transfer_seconds) / total
