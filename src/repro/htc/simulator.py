"""Trace-driven cache simulation — the engine behind Figures 4–8.

A simulation drives an image provider (normally a
:class:`~repro.core.cache.LandlordCache`) over a stream of specification
requests, recording after every request the cumulative operation counts and
byte gauges that the paper's figures plot:

- Figure 5 plots one simulation's time series directly;
- Figures 4 and 6–8 aggregate the end states of many simulations across
  α values and configurations (see :mod:`repro.analysis.sweep`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.cache import CacheStats, LandlordCache
from repro.obs.metrics import MetricsRegistry
from repro.htc.workload import (
    DependencyWorkload,
    RandomWorkload,
    UserDriftWorkload,
    WorkloadScheme,
    build_stream,
)
from repro.packages.repository import Repository
from repro.packages.sft import SFT_PACKAGE_COUNT, build_experiment_repository
from repro.util.rng import spawn
from repro.util.units import GB

__all__ = ["SimulationConfig", "SimulationResult", "simulate", "simulate_stream"]

_TIMELINE_FIELDS = (
    "hits",
    "inserts",
    "merges",
    "deletes",
    "cached_bytes",
    "unique_bytes",
    "bytes_written",
    "requested_bytes",
)


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to reproduce one simulation run.

    Defaults mirror the paper's Figure 5 configuration: α = 0.75, a 1.4 TB
    cache (2× the 700 GB repository), 500 unique specifications each
    repeated five times, dependency-scheme workload over the SFT-like
    repository.
    """

    alpha: float = 0.75
    capacity: int = 1400 * GB
    n_unique: int = 500
    repeats: int = 5
    scheme: str = "deps"  # "deps" | "random" | "drift"
    max_selection: int = 100
    repo_kind: str = "sft"  # "sft" | "random" | "flat"
    n_packages: int = SFT_PACKAGE_COUNT
    repo_total_size: int = 700 * GB
    seed: int = 0
    # Cache-policy knobs (ablations):
    hit_selection: str = "smallest"
    candidate_order: str = "distance"
    eviction: str = "lru"
    use_minhash: bool = False
    merge_write_mode: str = "full"
    # Which decision engine resolves the cache's inner scans ("vectorized"
    # or "naive").  A pure performance knob — the engines are
    # bit-identical, so results never depend on it.
    engine: str = "vectorized"
    # Let the vectorized engine prefilter full merge scans through the
    # exact count window (another bit-identical performance knob).
    prefilter: bool = True
    # Drive the stream through submit_batch windows: 0 = sequential
    # request() calls, N >= 1 = fixed windows, "auto" = AIMD-governed
    # windows (repro.core.adaptive.batch_governor).  Decisions are
    # bit-identical either way; batching requires record_timeline=False.
    batch_size: "int | str" = 0
    record_timeline: bool = True
    # Observability: when True, the run builds a repro.obs.MetricsRegistry,
    # instruments the cache with it, and returns its snapshot in
    # SimulationResult.metrics (picklable, so parallel workers ship it
    # home for deterministic aggregation — see repro.parallel).
    collect_metrics: bool = False
    # When True, also attach a repro.obs.SloTracker and return its final
    # windowed series in SimulationResult.slo_window (the full enabled
    # telemetry path the overhead benchmark bounds).
    collect_slo: bool = False

    def with_(self, **changes: object) -> "SimulationConfig":
        """A modified copy (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass
class SimulationResult:
    """A finished simulation: final stats plus optional per-request series."""

    config: Optional[SimulationConfig]
    stats: CacheStats
    cached_bytes: int
    unique_bytes: int
    n_images: int
    timeline: Dict[str, np.ndarray] = field(default_factory=dict)
    # Metrics-registry snapshot (repro.obs) when the run collected one;
    # merge into a parent registry with MetricsRegistry.merge_snapshot.
    metrics: Optional[dict] = None
    # Final rolling-window SLO series when the run attached a tracker.
    slo_window: Optional[Dict[str, float]] = None

    @property
    def cache_efficiency(self) -> float:
        """Unique data / total data in the final cache state (paper §VI)."""
        if self.cached_bytes == 0:
            return 1.0
        return self.unique_bytes / self.cached_bytes

    @property
    def container_efficiency(self) -> float:
        """Bytes-weighted requested/used ratio over all requests."""
        return self.stats.container_efficiency

    @property
    def requests(self) -> int:
        return self.stats.requests

    def summary(self) -> Dict[str, float]:
        """Flat scalar summary (what sweeps aggregate medians over)."""
        return {
            "hits": self.stats.hits,
            "inserts": self.stats.inserts,
            "merges": self.stats.merges,
            "deletes": self.stats.deletes,
            "evictions_capacity": self.stats.evictions_capacity,
            "evictions_idle": self.stats.evictions_idle,
            "hit_rate": self.stats.hit_rate,
            "cache_efficiency": self.cache_efficiency,
            "container_efficiency": self.container_efficiency,
            "cached_bytes": self.cached_bytes,
            "unique_bytes": self.unique_bytes,
            "bytes_written": self.stats.bytes_written,
            "requested_bytes": self.stats.requested_bytes,
            "write_amplification": self.stats.write_amplification,
            "n_images": self.n_images,
        }


def simulate_stream(
    cache: "LandlordCache",
    stream: Sequence[frozenset],
    config: Optional[SimulationConfig] = None,
    record_timeline: bool = True,
    metrics=None,
    slo=None,
    alerts=None,
    batch_size: int = 0,
) -> SimulationResult:
    """Drive an existing image provider over a request stream.

    Duck-typed: any :class:`~repro.core.policies.ImageProvider` (the
    baseline policies included) works, not just a LandlordCache — it needs
    ``request``/``stats``/``cached_bytes``/``unique_bytes``/``__len__``.

    ``batch_size > 0`` (or ``"auto"``, AIMD-governed window sizing from
    the engine's observed dirty rate) drives the stream through the
    provider's ``submit_batch`` (decisions are bit-identical to
    sequential ``request`` calls; only dispatch overhead changes).  The batched
    path records no per-request timeline and evaluates no alert rules —
    those are per-request observers — so it is incompatible with
    ``record_timeline=True`` and ``alerts``.

    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) instruments the
    provider when it supports ``enable_metrics`` and records the
    simulation's own loop under the ``sim_*`` names; the registry
    snapshot rides home in ``SimulationResult.metrics``.

    ``slo`` (a :class:`repro.obs.SloTracker`) attaches rolling-window
    telemetry when the provider supports ``enable_slo``; ``alerts`` (an
    :class:`repro.obs.AlertEngine`) is then evaluated against the window
    after every request — neither ever perturbs decisions.
    """
    sim_requests = sim_request_s = None
    if metrics is not None:
        enable = getattr(cache, "enable_metrics", None)
        if enable is not None:
            enable(metrics)
        sim_requests = metrics.counter(
            "sim_requests_total", "Requests driven by the simulator."
        ).labels()
        sim_request_s = metrics.histogram(
            "sim_request_seconds",
            "Wall-clock seconds per simulated request (simulator loop).",
        ).labels()
    if slo is not None:
        enable_slo = getattr(cache, "enable_slo", None)
        if enable_slo is not None:
            enable_slo(slo)
    if alerts is not None and slo is None:
        raise ValueError("alerts require an SloTracker (pass slo=)")
    if isinstance(batch_size, str) and batch_size != "auto":
        raise ValueError(
            f"batch_size must be an int or 'auto', got {batch_size!r}"
        )
    batched = batch_size == "auto" or (
        not isinstance(batch_size, str) and batch_size > 0
    )
    if batched:
        if record_timeline:
            raise ValueError(
                "batch_size is incompatible with record_timeline "
                "(the timeline is sampled after every request)"
            )
        if alerts is not None:
            raise ValueError(
                "batch_size is incompatible with alerts "
                "(rules are evaluated after every request)"
            )
        submit = getattr(cache, "submit_batch", None)
        if submit is None:
            raise ValueError(
                f"{type(cache).__name__} has no submit_batch; "
                "use batch_size=0"
            )
        t0 = perf_counter() if sim_requests is not None else 0.0
        submit(stream, batch_size=batch_size)
        if sim_requests is not None:
            elapsed = perf_counter() - t0
            n = len(stream)
            sim_requests.inc(n)
            # One aggregate observation per window-mean request: the
            # batched loop cannot time requests individually without
            # reintroducing the per-request dispatch it removes.
            for _ in range(n):
                sim_request_s.observe(elapsed / n if n else 0.0)
        return SimulationResult(
            config=config,
            stats=cache.stats.copy(),
            cached_bytes=cache.cached_bytes,
            unique_bytes=cache.unique_bytes,
            n_images=len(cache),
            timeline={},
            metrics=metrics.snapshot() if metrics is not None else None,
            slo_window=slo.values() if slo is not None else None,
        )
    request_index = 0
    series: Dict[str, List[int]] = {name: [] for name in _TIMELINE_FIELDS}
    for spec in stream:
        if sim_requests is not None:
            t0 = perf_counter()
            cache.request(spec)
            sim_request_s.observe(perf_counter() - t0)
            sim_requests.inc()
        else:
            cache.request(spec)
        if alerts is not None:
            alerts.evaluate(slo.values(), request_index)
        request_index += 1
        if record_timeline:
            stats = cache.stats
            series["hits"].append(stats.hits)
            series["inserts"].append(stats.inserts)
            series["merges"].append(stats.merges)
            series["deletes"].append(stats.deletes)
            series["cached_bytes"].append(cache.cached_bytes)
            series["unique_bytes"].append(cache.unique_bytes)
            series["bytes_written"].append(stats.bytes_written)
            series["requested_bytes"].append(stats.requested_bytes)
    timeline = (
        {name: np.asarray(vals, dtype=np.int64) for name, vals in series.items()}
        if record_timeline
        else {}
    )
    return SimulationResult(
        config=config,
        stats=cache.stats.copy(),
        cached_bytes=cache.cached_bytes,
        unique_bytes=cache.unique_bytes,
        n_images=len(cache),
        timeline=timeline,
        metrics=metrics.snapshot() if metrics is not None else None,
        slo_window=slo.values() if slo is not None else None,
    )


def make_workload(
    config: SimulationConfig, repository: Repository
) -> WorkloadScheme:
    """Instantiate the configured workload scheme."""
    if config.scheme == "deps":
        return DependencyWorkload(repository, config.max_selection)
    if config.scheme == "random":
        return RandomWorkload(repository, config.max_selection)
    if config.scheme == "drift":
        return UserDriftWorkload(repository, config.max_selection)
    raise ValueError(f"unknown workload scheme: {config.scheme!r}")


def simulate(
    config: SimulationConfig,
    repository: Optional[Repository] = None,
) -> SimulationResult:
    """Run one full simulation from a config.

    ``repository`` may be passed in to amortise repository construction
    across a sweep's repetitions; it must match the config's repo
    parameters (not checked — sweeps construct both from the same config).
    """
    if repository is None:
        repository = build_experiment_repository(
            config.repo_kind,
            seed=config.seed,
            n_packages=config.n_packages,
            target_total_size=config.repo_total_size,
        )
    workload = make_workload(config, repository)
    rng = spawn(config.seed, "workload", config.scheme, config.n_unique)
    stream = build_stream(
        workload,
        rng,
        n_unique=config.n_unique,
        repeats=config.repeats,
    )
    cache = LandlordCache(
        capacity=config.capacity,
        alpha=config.alpha,
        package_size=repository.size_of,
        hit_selection=config.hit_selection,
        candidate_order=config.candidate_order,
        eviction=config.eviction,
        use_minhash=config.use_minhash,
        merge_write_mode=config.merge_write_mode,
        engine=config.engine,
        prefilter=config.prefilter,
        rng=spawn(config.seed, "cache-rng"),
    )
    metrics = MetricsRegistry() if config.collect_metrics else None
    slo = None
    if config.collect_slo:
        from repro.obs.slo import SloTracker

        slo = SloTracker()
    return simulate_stream(
        cache, stream, config=config,
        record_timeline=config.record_timeline, metrics=metrics, slo=slo,
        batch_size=config.batch_size,
    )
