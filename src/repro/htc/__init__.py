"""High-throughput-computing substrate.

Models the job side of the paper's evaluation:

- :mod:`repro.htc.job` — jobs and per-job results.
- :mod:`repro.htc.workload` — the paper's two image-request generation
  schemes (§VI, *Simulating HTC Jobs*): dependency-tree-based and uniform
  random, plus repeated-stream assembly.
- :mod:`repro.htc.lhc` — the seven LHC benchmark applications of Figure 2
  as model workloads over per-experiment repositories.
- :mod:`repro.htc.simulator` — the trace-driven cache simulation with
  per-request time series (Figures 4–8).
- :mod:`repro.htc.cluster` / :mod:`repro.htc.scheduler` — a multi-site
  cluster with per-site LANDLORD instances and worker scratch stores (the
  distributed deployment of §V).
- :mod:`repro.htc.trace` — save/load/replay of job streams.
"""

from repro.htc.arrivals import (
    assign_arrival_times,
    campaign_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
)
from repro.htc.job import Job, JobResult
from repro.htc.pilot import JobQueue, Pilot, PilotFactory
from repro.htc.simulator import (
    SimulationConfig,
    SimulationResult,
    simulate,
    simulate_stream,
)
from repro.htc.workload import (
    DependencyWorkload,
    RandomWorkload,
    WorkloadScheme,
    build_stream,
)

__all__ = [
    "Job",
    "JobResult",
    "JobQueue",
    "Pilot",
    "PilotFactory",
    "poisson_arrivals",
    "diurnal_arrivals",
    "campaign_arrivals",
    "assign_arrival_times",
    "WorkloadScheme",
    "DependencyWorkload",
    "RandomWorkload",
    "build_stream",
    "SimulationConfig",
    "SimulationResult",
    "simulate",
    "simulate_stream",
]
