"""The LHC benchmark applications of Figure 2.

The paper characterises seven HEP benchmark applications (from the CERN
hep-workloads suite) run under Shrinkwrap: per-app running time, image
preparation time, minimal (tailored) image size, and the full size of the
experiment's CVMFS repository.

We cannot run the real applications, so each is modelled as a specification
against a synthetic per-experiment repository whose *total* size matches the
paper's "Full Repo" column, with the spec chosen so its dependency closure
lands near the paper's "Minimal Image" size.  Preparation time then comes
from the Shrinkwrap bandwidth model.  EXPERIMENTS.md records paper-reported
vs. model-measured values side by side.

Experiment repositories deliberately differ from the SFT simulation
repository in shape: the bulk of an experiment repo is a long tail of large
versioned release packages, while the shared core is comparatively small —
that is what makes few-GB tailored images possible out of multi-TB repos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.spec import ImageSpec
from repro.cvmfs.shrinkwrap import BuildReport, Shrinkwrap
from repro.packages.depgen import LayerSpec, layered_dag
from repro.packages.package import make_package_id
from repro.packages.repository import Repository
from repro.packages.sft import _rescale_sizes
from repro.util.rng import spawn
from repro.util.units import GB, MB, TB

__all__ = [
    "PAPER_BENCHMARKS",
    "PaperBenchmark",
    "BenchmarkApp",
    "LHCSuite",
    "build_experiment_repository",
    "build_lhc_suite",
]


@dataclass(frozen=True)
class PaperBenchmark:
    """One row of Figure 2 as printed in the paper."""

    name: str
    experiment: str
    running_seconds: float
    prep_seconds: float
    minimal_image_bytes: int
    full_repo_bytes: int


# Figure 2, verbatim.
PAPER_BENCHMARKS: Tuple[PaperBenchmark, ...] = (
    PaperBenchmark("alice-gen-sim", "alice", 131, 59, int(6.0 * GB), 450 * GB),
    PaperBenchmark("atlas-gen", "atlas", 600, 37, int(2.7 * GB), int(4.8 * TB)),
    PaperBenchmark("atlas-sim", "atlas", 5340, 115, int(7.6 * GB), int(4.8 * TB)),
    PaperBenchmark("cms-digi", "cms", 629, 62, int(8.4 * GB), int(8.8 * TB)),
    PaperBenchmark("cms-gen-sim", "cms", 2360, 71, int(6.1 * GB), int(8.8 * TB)),
    PaperBenchmark("cms-reco", "cms", 961, 78, int(7.3 * GB), int(8.8 * TB)),
    PaperBenchmark("lhcb-gen-sim", "lhcb", 1010, 67, int(3.7 * GB), int(1.0 * TB)),
)

EXPERIMENT_REPO_BYTES: Dict[str, int] = {
    "alice": 450 * GB,
    "atlas": int(4.8 * TB),
    "cms": int(8.8 * TB),
    "lhcb": int(1.0 * TB),
}


@dataclass(frozen=True)
class BenchmarkApp:
    """A modelled benchmark application bound to its experiment repository."""

    paper: PaperBenchmark
    spec: ImageSpec               # the requested packages (pre-closure)
    closure: FrozenSet[str]       # full image contents
    image_bytes: int              # modelled minimal-image size
    measured_prep_seconds: float  # Shrinkwrap model, cold object cache

    @property
    def name(self) -> str:
        return self.paper.name

    @property
    def experiment(self) -> str:
        return self.paper.experiment

    @property
    def runtime_seconds(self) -> float:
        return self.paper.running_seconds


def _experiment_namer(experiment: str):
    def namer(layer: int, index: int) -> str:
        kind = ("base", "lib", "release")[layer]
        return make_package_id(f"{experiment}-{kind}-{index:04d}", "1.0")

    return namer


def build_experiment_repository(
    experiment: str,
    seed: Optional[int] = 2020,
    n_packages: int = 3000,
) -> Repository:
    """A per-experiment repository totalling the paper's full-repo size.

    Structure: a small shared base (~60 packages), a mid layer of common
    libraries, and a long tail of large release packages carrying most of
    the repository's bytes.
    """
    total = EXPERIMENT_REPO_BYTES.get(experiment)
    if total is None:
        raise ValueError(f"unknown experiment: {experiment!r}")
    n_base = 60
    n_lib = 600
    n_release = n_packages - n_base - n_lib
    if n_release < 10:
        raise ValueError("n_packages too small for experiment structure")
    base_mean = 60 * MB
    lib_mean = 120 * MB
    fixed = n_base * base_mean + n_lib * lib_mean
    release_mean = max(10 * MB, (total - fixed) / n_release)
    layers = [
        LayerSpec(count=n_base, mean_size=base_mean),
        LayerSpec(count=n_lib, dep_range=(2, 5), zipf_s=0.8, mean_size=lib_mean),
        LayerSpec(
            count=n_release,
            dep_range=(2, 6),
            core_fraction=0.4,
            zipf_s=0.7,
            mean_size=release_mean,
        ),
    ]
    rng = spawn(seed, "lhc-repo", experiment)
    packages = layered_dag(rng, layers, namer=_experiment_namer(experiment))
    # Pin the realised total exactly to the paper's full-repo size; the
    # lognormal draw has high variance at small package counts.
    packages = _rescale_sizes(packages, total)
    return Repository(packages)


def select_spec_for_size(
    repository: Repository,
    target_bytes: int,
    seed: Optional[int] = 0,
    candidate_prefix: str = "",
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """Greedily pick packages whose closure lands near ``target_bytes``.

    Returns ``(selection, closure)``.  Packages are probed in a seeded
    random order; a package is accepted while it keeps the closure at or
    under target and skipped otherwise (large release packages whose
    closures overshoot are passed over in favour of smaller ones).  The
    search stops once the closure is within 5% of target or the candidate
    order is exhausted.
    """
    rng = spawn(seed, "app-spec")
    ids = [
        pid for pid in repository.ids
        if candidate_prefix == "" or pid.startswith(candidate_prefix)
    ]
    if not ids:
        raise ValueError(f"no candidate packages match {candidate_prefix!r}")
    order = rng.permutation(len(ids))
    selection: List[str] = []
    closure: FrozenSet[str] = frozenset()
    size = 0
    best_single: Optional[str] = None
    best_single_gap = None
    for i in order:
        if size >= 0.95 * target_bytes:
            break
        pid = ids[int(i)]
        trial = closure | repository.closure_of(pid)
        trial_size = repository.bytes_of(trial)
        if trial_size > target_bytes:
            gap = trial_size - target_bytes
            if best_single_gap is None or gap < best_single_gap:
                best_single, best_single_gap = pid, gap
            continue
        selection.append(pid)
        closure, size = trial, trial_size
    if not selection and best_single is not None:
        # Everything overshoots alone: take the least-overshooting package.
        selection = [best_single]
        closure = repository.closure_of(best_single)
    return frozenset(selection), closure


@dataclass
class LHCSuite:
    """The seven benchmark apps with their experiment repositories."""

    repositories: Dict[str, Repository]
    apps: List[BenchmarkApp]

    def repository_for(self, app: BenchmarkApp) -> Repository:
        """The experiment repository an app builds against."""
        return self.repositories[app.experiment]

    def app(self, name: str) -> BenchmarkApp:
        """Look up a benchmark app by name (KeyError if unknown)."""
        for app in self.apps:
            if app.name == name:
                return app
        raise KeyError(f"unknown benchmark app: {name!r}")


def build_lhc_suite(
    seed: Optional[int] = 2020,
    n_packages: int = 3000,
) -> LHCSuite:
    """Build all experiment repositories and model the seven benchmarks."""
    repositories = {
        experiment: build_experiment_repository(experiment, seed, n_packages)
        for experiment in EXPERIMENT_REPO_BYTES
    }
    apps: List[BenchmarkApp] = []
    for idx, paper in enumerate(PAPER_BENCHMARKS):
        repo = repositories[paper.experiment]
        selection, closure = select_spec_for_size(
            repo, paper.minimal_image_bytes, seed=(seed or 0) + idx
        )
        shrinkwrap = Shrinkwrap(repo)  # cold cache per app measurement
        report: BuildReport = shrinkwrap.build(closure, resolve_closure=False)
        apps.append(
            BenchmarkApp(
                paper=paper,
                spec=ImageSpec(selection, label=paper.name),
                closure=closure,
                image_bytes=report.image_bytes,
                measured_prep_seconds=report.prep_seconds,
            )
        )
    return LHCSuite(repositories=repositories, apps=apps)
