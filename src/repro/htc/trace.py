"""Job-trace persistence: save, load and replay request streams.

Trace-driven simulation (the paper's methodology) needs reproducible
streams; this module serialises them as JSON lines — one record per request
with the job id and its package list — so a stream generated once can be
replayed across cache configurations, shared between machines, or diffed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.core.spec import ImageSpec
from repro.htc.job import Job

__all__ = ["save_trace", "load_trace", "iter_trace", "jobs_to_trace_records"]

PathLike = Union[str, Path]


def jobs_to_trace_records(jobs: Iterable[Job]) -> Iterator[dict]:
    """Serialisable records for a job sequence."""
    for job in jobs:
        yield {
            "job": job.job_id,
            "user": job.user,
            "runtime": job.runtime_seconds,
            "packages": sorted(job.packages),
        }


def save_trace(path: PathLike, jobs: Iterable[Job]) -> int:
    """Write jobs as JSON lines; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in jobs_to_trace_records(jobs):
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def iter_trace(path: PathLike) -> Iterator[Job]:
    """Stream jobs back from a trace file (validates each record)."""
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            try:
                packages = record["packages"]
                job_id = record["job"]
            except (KeyError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: record missing required field: {exc}"
                ) from exc
            if not isinstance(packages, list):
                raise ValueError(f"{path}:{lineno}: 'packages' must be a list")
            yield Job(
                job_id=str(job_id),
                spec=ImageSpec(packages),
                runtime_seconds=float(record.get("runtime", 0.0)),
                user=str(record.get("user", "")),
            )


def load_trace(path: PathLike) -> List[Job]:
    """Load a whole trace into memory."""
    return list(iter_trace(path))
