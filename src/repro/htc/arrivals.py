"""Job arrival processes — putting wall-clock time under the stream.

The trace-driven simulations treat requests as an ordered sequence; for
throughput questions (examples and the scheduler/pilot substrates) jobs
need *submit times*.  HTC arrival patterns are bursty: users submit
campaigns of many jobs at once, on top of a diurnal baseline.  Three
processes:

- :func:`poisson_arrivals` — memoryless baseline at a constant rate;
- :func:`diurnal_arrivals` — a sinusoidal day/night rate modulation
  (thinning of a Poisson process);
- :func:`campaign_arrivals` — bursts: campaign start times are Poisson,
  each campaign releases a batch of jobs in quick succession (the
  "submission systems generate jobs on behalf of users" pattern of §I).

All return sorted NumPy arrays of submit times in seconds.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.htc.job import Job

__all__ = [
    "poisson_arrivals",
    "diurnal_arrivals",
    "campaign_arrivals",
    "assign_arrival_times",
]

_DAY = 86_400.0


def poisson_arrivals(
    rng: np.random.Generator, n: int, rate_per_hour: float
) -> np.ndarray:
    """``n`` arrival times with exponential inter-arrival gaps."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if rate_per_hour <= 0:
        raise ValueError("rate_per_hour must be positive")
    gaps = rng.exponential(3600.0 / rate_per_hour, size=n)
    return np.cumsum(gaps)


def diurnal_arrivals(
    rng: np.random.Generator,
    n: int,
    mean_rate_per_hour: float,
    peak_to_trough: float = 4.0,
    peak_hour: float = 15.0,
) -> np.ndarray:
    """Arrivals whose rate follows a 24 h sinusoid.

    Implemented by thinning a Poisson process at the peak rate: candidate
    arrivals are kept with probability rate(t)/peak_rate.  ``peak_to_trough``
    is the ratio between the busiest and quietest hour.
    """
    if peak_to_trough < 1.0:
        raise ValueError("peak_to_trough must be >= 1")
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    peak_rate = mean_rate_per_hour * (1.0 + amplitude)

    def relative_rate(t: np.ndarray) -> np.ndarray:
        phase = 2.0 * np.pi * (t / _DAY - peak_hour / 24.0)
        return (1.0 + amplitude * np.cos(phase)) / (1.0 + amplitude)

    times: List[float] = []
    t = 0.0
    while len(times) < n:
        draw = max(n * 2, 64)
        gaps = rng.exponential(3600.0 / peak_rate, size=draw)
        candidates = t + np.cumsum(gaps)
        keep = rng.random(draw) < relative_rate(candidates)
        times.extend(candidates[keep].tolist())
        t = float(candidates[-1])
    return np.asarray(times[:n])


def campaign_arrivals(
    rng: np.random.Generator,
    n: int,
    campaigns_per_day: float = 6.0,
    jobs_per_campaign: float = 40.0,
    intra_campaign_gap: float = 5.0,
) -> np.ndarray:
    """Bursty arrivals: Poisson campaign starts, geometric batch sizes,
    short fixed-ish gaps (exponential around ``intra_campaign_gap``
    seconds) within a campaign."""
    if n < 0:
        raise ValueError("n must be non-negative")
    times: List[float] = []
    t = 0.0
    p = 1.0 / max(jobs_per_campaign, 1.0)
    while len(times) < n:
        t += float(rng.exponential(_DAY / campaigns_per_day))
        batch = int(rng.geometric(p))
        offsets = np.cumsum(rng.exponential(intra_campaign_gap, size=batch))
        times.extend((t + offsets).tolist())
    return np.sort(np.asarray(times[:n]))


def assign_arrival_times(
    jobs: Sequence[Job], times: Sequence[float]
) -> List["tuple[float, Job]"]:
    """Pair jobs with sorted arrival times -> [(submit_time, job), ...]."""
    if len(jobs) != len(times):
        raise ValueError("need exactly one arrival time per job")
    ordered = np.argsort(np.asarray(times, dtype=float))
    return [(float(times[int(i)]), jobs[int(i)]) for i in ordered]
