"""Dispatching job streams onto a cluster through per-site LANDLORDs.

A deliberately simple scheduler — the paper's contribution is the image
management, not placement policy — but a real one: each job is routed to a
site, prepared by that site's LANDLORD (hit/merge/insert + eviction),
transferred to the least-busy worker if its scratch lacks the artifact, and
executed.  Virtual time advances per worker, so the summary reports
makespan, throughput, and the overhead share that container preparation
contributes — the quantity LANDLORD exists to keep bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.htc.cluster import Cluster, Site
from repro.htc.job import Job, JobResult

__all__ = ["Scheduler", "ScheduleSummary"]

SITE_POLICIES = ("round_robin", "least_loaded", "sticky_user")


@dataclass
class ScheduleSummary:
    """Aggregated outcome of a scheduling run."""

    results: List[JobResult]
    makespan: float
    total_prep_seconds: float
    total_transfer_seconds: float
    total_runtime_seconds: float

    @property
    def jobs(self) -> int:
        return len(self.results)

    @property
    def throughput_jobs_per_hour(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.jobs / (self.makespan / 3600.0)

    @property
    def overhead_fraction(self) -> float:
        """Share of total busy time spent preparing/transferring images."""
        busy = (
            self.total_prep_seconds
            + self.total_transfer_seconds
            + self.total_runtime_seconds
        )
        if busy == 0:
            return 0.0
        return (self.total_prep_seconds + self.total_transfer_seconds) / busy

    def by_action(self) -> Dict[str, int]:
        """Job counts per cache action (hit/merge/insert)."""
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.action.value] = counts.get(result.action.value, 0) + 1
        return counts


class Scheduler:
    """Routes jobs to sites and workers.

    Args:
        cluster: the sites to schedule over.
        site_policy: ``"round_robin"`` (default), ``"least_loaded"``
            (fewest queued seconds), or ``"sticky_user"`` (hash a job's
            user to a site — keeps a user's similar specs at one cache,
            which is the friendly case for merging).
    """

    def __init__(self, cluster: Cluster, site_policy: str = "round_robin"):
        if site_policy not in SITE_POLICIES:
            raise ValueError(f"site_policy must be one of {SITE_POLICIES}")
        self.cluster = cluster
        self.site_policy = site_policy
        self._rr_next = 0

    def _pick_site(self, job: Job) -> Site:
        sites = self.cluster.sites
        if self.site_policy == "round_robin":
            site = sites[self._rr_next % len(sites)]
            self._rr_next += 1
            return site
        if self.site_policy == "least_loaded":
            return min(
                sites,
                key=lambda s: min(w.busy_until for w in s.workers),
            )
        # sticky_user
        bucket = hash(job.user) % len(sites)
        return sites[bucket]

    def run(self, jobs: Iterable[Job]) -> ScheduleSummary:
        """Dispatch every job as soon as a worker frees up."""
        return self.run_timed((0.0, job) for job in jobs)

    def run_timed(
        self, timed_jobs: Iterable["tuple[float, Job]"]
    ) -> ScheduleSummary:
        """Dispatch jobs honouring their submit times.

        ``timed_jobs`` yields ``(submit_time, job)`` in submission order
        (see :mod:`repro.htc.arrivals`); a job never starts before its
        submit time, so idle gaps appear when arrivals are slower than
        service.
        """
        results: List[JobResult] = []
        total_prep = 0.0
        total_transfer = 0.0
        total_runtime = 0.0
        makespan = 0.0
        for submit_time, job in timed_jobs:
            site = self._pick_site(job)
            prepared = site.landlord.prepare(job.spec)
            worker, transfer_seconds = site.place(prepared)
            start = max(worker.busy_until, submit_time)
            finish = (
                start
                + prepared.prep_seconds
                + transfer_seconds
                + job.runtime_seconds
            )
            worker.busy_until = finish
            worker.jobs_run += 1
            makespan = max(makespan, finish)
            total_prep += prepared.prep_seconds
            total_transfer += transfer_seconds
            total_runtime += job.runtime_seconds
            results.append(
                JobResult(
                    job=job,
                    action=prepared.action,
                    image_id=prepared.image.id,
                    image_bytes=prepared.image.size,
                    requested_bytes=prepared.requested_bytes,
                    prep_seconds=prepared.prep_seconds,
                    transfer_seconds=transfer_seconds,
                    worker=worker.name,
                    site=site.name,
                )
            )
        return ScheduleSummary(
            results=results,
            makespan=makespan,
            total_prep_seconds=total_prep,
            total_transfer_seconds=total_transfer,
            total_runtime_seconds=total_runtime,
        )
