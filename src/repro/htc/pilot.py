"""Pilot-job integration — LANDLORD inside a user-level scheduler.

§V: *"When using a pilot job system, for example, scientists are
effectively operating a 'user-level scheduler'.  Scientists have the option
of using this same plugin approach to connect LANDLORD to a pilot job
system, allowing LANDLORD to transparently optimize container storage
without requiring application changes."*

The model: pilots are placeholder jobs occupying workers at a site.  Each
pilot repeatedly *pulls* real jobs from a shared queue (late binding — the
defining property of pilot systems, in contrast to the push scheduler in
:mod:`repro.htc.scheduler`), prepares each job's container through the
site's LANDLORD, and retires after ``max_jobs`` or ``walltime`` seconds —
whereupon the factory may replace it.  Because pulled jobs land on whatever
pilot is free, the worker-local scratch hit pattern differs from pushed
placement; the site-level cache behaviour is identical.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, List, Optional

from repro.htc.cluster import Site, WorkerNode
from repro.htc.job import Job, JobResult

__all__ = ["JobQueue", "Pilot", "PilotFactory", "PilotRunSummary"]


class JobQueue:
    """A FIFO of pending jobs shared by all pilots."""

    def __init__(self, jobs: Iterable[Job] = ()):
        self._queue: Deque[Job] = deque(jobs)

    def submit(self, job: Job) -> None:
        """Append a job to the queue."""
        self._queue.append(job)

    def pull(self) -> Optional[Job]:
        """Next job, or None when drained (pilot then retires idle)."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


@dataclass
class Pilot:
    """One placeholder job bound to a worker, pulling real jobs.

    Attributes:
        pilot_id: identity within the factory.
        site: the site whose LANDLORD prepares this pilot's containers.
        worker: the node the pilot occupies.
        max_jobs: retire after this many jobs (None = unlimited).
        walltime: retire when the pilot's busy clock passes this many
            seconds since it started (None = unlimited) — pilots in real
            systems are batch jobs with finite allocations.
    """

    pilot_id: str
    site: Site
    worker: WorkerNode
    max_jobs: Optional[int] = None
    walltime: Optional[float] = None
    jobs_run: int = 0
    started_at: float = field(default=0.0)
    retired: bool = False

    def _should_retire(self) -> bool:
        if self.max_jobs is not None and self.jobs_run >= self.max_jobs:
            return True
        if (
            self.walltime is not None
            and self.worker.busy_until - self.started_at >= self.walltime
        ):
            return True
        return False

    def run(self, queue: JobQueue) -> List[JobResult]:
        """Pull and execute jobs until the queue drains or the pilot
        retires.  Returns this pilot's job results."""
        if self.retired:
            raise RuntimeError(f"pilot {self.pilot_id} already retired")
        self.started_at = self.worker.busy_until
        results: List[JobResult] = []
        while not self._should_retire():
            job = queue.pull()
            if job is None:
                break
            prepared = self.site.landlord.prepare(job.spec)
            _, transfer = self.site.place(prepared, self.worker)
            self.worker.busy_until += (
                prepared.prep_seconds + transfer + job.runtime_seconds
            )
            self.worker.jobs_run += 1
            self.jobs_run += 1
            results.append(
                JobResult(
                    job=job,
                    action=prepared.action,
                    image_id=prepared.image.id,
                    image_bytes=prepared.image.size,
                    requested_bytes=prepared.requested_bytes,
                    prep_seconds=prepared.prep_seconds,
                    transfer_seconds=transfer,
                    worker=self.worker.name,
                    site=self.site.name,
                )
            )
        self.retired = True
        return results


@dataclass
class PilotRunSummary:
    """Aggregate outcome of running a queue through a pilot generation."""

    results: List[JobResult]
    pilots_used: int
    jobs_left: int

    @property
    def jobs(self) -> int:
        return len(self.results)

    @property
    def makespan(self) -> float:
        return max((r.total_seconds for r in self.results), default=0.0)


class PilotFactory:
    """Submits pilot generations to a site until the queue drains.

    Mirrors glideinWMS-style factories: a generation binds one pilot per
    worker; retired pilots are replaced by the next generation while work
    remains, up to ``max_generations`` (a runaway stop for queues that can
    never finish, e.g. jobs whose images exceed every scratch).
    """

    def __init__(
        self,
        site: Site,
        max_jobs_per_pilot: Optional[int] = 50,
        walltime: Optional[float] = None,
        max_generations: int = 100,
    ):
        if max_generations < 1:
            raise ValueError("max_generations must be positive")
        self.site = site
        self.max_jobs_per_pilot = max_jobs_per_pilot
        self.walltime = walltime
        self.max_generations = max_generations
        self._next_pilot = 0

    def _spawn_generation(self) -> List[Pilot]:
        pilots = []
        for worker in self.site.workers:
            pilots.append(
                Pilot(
                    pilot_id=f"pilot-{self._next_pilot:04d}",
                    site=self.site,
                    worker=worker,
                    max_jobs=self.max_jobs_per_pilot,
                    walltime=self.walltime,
                )
            )
            self._next_pilot += 1
        return pilots

    def drain(self, queue: JobQueue) -> PilotRunSummary:
        """Run pilot generations until the queue is empty (or cap hit)."""
        results: List[JobResult] = []
        pilots_used = 0
        for _generation in range(self.max_generations):
            if not queue:
                break
            for pilot in self._spawn_generation():
                pilots_used += 1
                results.extend(pilot.run(queue))
                if not queue:
                    break
        return PilotRunSummary(
            results=results, pilots_used=pilots_used, jobs_left=len(queue)
        )
