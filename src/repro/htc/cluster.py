"""Sites and worker nodes — the distributed deployment of §V.

The paper's deployment picture: a head node per site holds the LANDLORD
image cache on scratch storage; worker nodes have their own (smaller)
scratch for the images of jobs they run; images are transferred from the
head-node cache to workers over the site network.  This module models that
topology so the multi-site example and scheduler tests can account
transfer costs and per-node storage pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.containers.image import ContainerImage
from repro.containers.store import ImageStore
from repro.core.cache import CachedImage
from repro.core.landlord import Landlord, PreparedContainer
from repro.packages.repository import Repository
from repro.util.units import GB, MB

__all__ = ["WorkerNode", "Site", "Cluster"]


@dataclass
class WorkerNode:
    """One execution node: local scratch plus a busy-until clock."""

    name: str
    scratch: ImageStore
    busy_until: float = 0.0
    jobs_run: int = 0

    @classmethod
    def create(cls, name: str, scratch_bytes: int = 100 * GB) -> "WorkerNode":
        return cls(name=name, scratch=ImageStore(scratch_bytes, name=name))


class Site:
    """A computing site: one LANDLORD head-node cache plus workers.

    Args:
        name: site label.
        repository: the software repository visible at the site.
        cache_bytes: head-node image-cache capacity.
        alpha: the site's merge threshold.
        n_workers / worker_scratch_bytes: execution nodes.
        transfer_bw: head-to-worker image transfer bandwidth (bytes/s).
        landlord_kwargs: forwarded to :class:`~repro.core.landlord.Landlord`.
    """

    def __init__(
        self,
        name: str,
        repository: Repository,
        cache_bytes: int,
        alpha: float = 0.8,
        n_workers: int = 4,
        worker_scratch_bytes: int = 100 * GB,
        transfer_bw: float = 500 * MB,
        **landlord_kwargs: object,
    ):
        if n_workers < 1:
            raise ValueError("a site needs at least one worker")
        if transfer_bw <= 0:
            raise ValueError("transfer_bw must be positive")
        self.name = name
        self.landlord = Landlord(
            repository, capacity=cache_bytes, alpha=alpha, **landlord_kwargs
        )
        self.workers = [
            WorkerNode.create(f"{name}/w{i}", worker_scratch_bytes)
            for i in range(n_workers)
        ]
        self.transfer_bw = transfer_bw
        self._artifact_cache: Dict[Tuple[str, int], ContainerImage] = {}

    def artifact_of(self, image: CachedImage) -> ContainerImage:
        """The transferable artifact for a cache image *version*.

        A cached image mutates when merged; each merge produces a new
        artifact (the rewrite the cache charged for), keyed by
        ``(id, merge_count)``.
        """
        key = (image.id, image.merge_count)
        artifact = self._artifact_cache.get(key)
        if artifact is None:
            artifact = ContainerImage(
                spec=image.spec(),
                size=image.size,
                image_id=f"{image.id}@{image.merge_count}",
            )
            if len(self._artifact_cache) > 4096:
                self._artifact_cache.clear()
            self._artifact_cache[key] = artifact
        return artifact

    def least_busy_worker(self) -> WorkerNode:
        """The worker whose clock frees up first."""
        return min(self.workers, key=lambda w: w.busy_until)

    def place(
        self, prepared: PreparedContainer, worker: Optional[WorkerNode] = None
    ) -> Tuple[WorkerNode, float]:
        """Ensure the prepared image is on a worker; return transfer time.

        A worker already holding this artifact version pays nothing; a new
        or re-merged image is transferred at ``transfer_bw``.  An image too
        large for the worker's scratch altogether is *streamed* from the
        head node — it costs a full transfer every time and is never
        cached locally (the paper's scenario of worker disks too small for
        the image collection).
        """
        if worker is None:
            worker = self.least_busy_worker()
        artifact = self.artifact_of(prepared.image)
        if artifact.image_id in worker.scratch:
            worker.scratch.get(artifact.image_id)  # refresh LRU
            return worker, 0.0
        if artifact.size > worker.scratch.capacity:
            return worker, artifact.size / self.transfer_bw
        worker.scratch.put(artifact)
        return worker, artifact.size / self.transfer_bw

    @property
    def stats(self):
        return self.landlord.stats


class Cluster:
    """A collection of sites sharing (or not) a software repository."""

    def __init__(self, sites: List[Site]):
        if not sites:
            raise ValueError("a cluster needs at least one site")
        names = [site.name for site in sites]
        if len(set(names)) != len(names):
            raise ValueError("site names must be unique")
        self.sites = list(sites)

    def site(self, name: str) -> Site:
        """Look up a site by name (KeyError if unknown)."""
        for site in self.sites:
            if site.name == name:
                return site
        raise KeyError(f"unknown site: {name!r}")

    @property
    def total_cached_bytes(self) -> int:
        return sum(site.landlord.cache.cached_bytes for site in self.sites)

    def __len__(self) -> int:
        return len(self.sites)
