"""Decision engines: the data-parallel kernels behind Algorithm 1.

Every request to :class:`~repro.core.cache.LandlordCache` runs three inner
scans over the cached image collection:

1. the **superset (hit) scan** — is some cached image a superset of the
   request specification?
2. the **merge-candidate scan** — which cached images are within exact
   Jaccard distance α of the request, and at what distance?
3. the **eviction-victim search** — which image does the configured
   policy (LRU / FIFO / size) evict next under capacity pressure?

The reference implementation (:class:`NaiveEngine`) answers all three
with O(cache size) Python loops over big-int bitmasks — clear, exactly
the paper's Algorithm 1, and the semantic ground truth.

:class:`VectorizedEngine` answers the same three questions from
incrementally maintained NumPy state instead:

- all cached-image package sets live in one padded ``uint64`` bit matrix
  (rows = images, columns = 64-package words), alongside parallel arrays
  for size, ``last_used``, ``created_at``, package count, and a
  dict-insertion sequence number;
- the hit scan is a single vectorised subset test
  (``(matrix & request) == request`` row-reduction);
- the merge scan is one batched popcount intersection
  (:func:`numpy.bitwise_count`) yielding every exact Jaccard distance in
  one shot — no approximation on the fast path;
- the eviction search is a lazy-deletion heap keyed by the policy, so a
  capacity storm evicting k of n images costs O(k log n) instead of
  O(k·n).

The two engines are **bit-identical**: same decisions, same statistics,
same events, same snapshots, for every combination of policy knobs.
This is not accidental — each vectorised kernel reproduces the naive
loop's selection rule *including its tie-breaking*, which falls out of
dict iteration order.  The sequence-number array makes that order
explicit (see the individual kernel docstrings and the proof sketch in
DESIGN.md, "Decision-engine internals"); the differential property
suite in ``tests/core/test_engine_differential.py`` enforces it over
randomized workloads across the full knob grid.

Engines hold *derived* state only: the cache remains the single source
of truth (its ``_images`` dict and the ``CachedImage`` objects), and
notifies its engine through four hooks — :meth:`~NaiveEngine.on_add`,
:meth:`~NaiveEngine.on_remove`, :meth:`~NaiveEngine.on_touch` (the
image's ``last_used`` changed), :meth:`~NaiveEngine.on_update` (its
contents/size changed, i.e. a merge rewrite).  Restoring a snapshot
replays ``on_add`` per image, which is how a recovered cache rebuilds
its matrix.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.minhash import (
    MinHashLSH,
    MinHashSignature,
    _FULL,
    _perm_params,
    element_hash,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.cache import CachedImage, LandlordCache

__all__ = ["ENGINES", "NaiveEngine", "VectorizedEngine", "make_engine"]

#: Valid values for the cache's ``engine=`` knob.
ENGINES = ("naive", "vectorized")

# Little-endian uint64: to_bytes(..., "little") then frombuffer must give
# the same words on any host, so the byte order is pinned explicitly.
_WORD = np.dtype("<u8")


class _Arena:
    """Named scratch buffers reused across kernel invocations.

    Each name owns one flat array that only ever grows (geometrically);
    :meth:`take` returns a reshaped view over its prefix.  Views are
    only valid until the next ``take`` of the same name, which is fine:
    every kernel fully consumes its scratch within the call.  Keeping
    the buffers flat makes them shape-agnostic, so matrix widening and
    row growth never invalidate the arena.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def take(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        n = 1
        for dim in shape:
            n *= int(dim)
        buf = self._buffers.get(name)
        if buf is None or buf.size < n or buf.dtype != np.dtype(dtype):
            capacity = max(64, n)
            if buf is not None and buf.dtype == np.dtype(dtype):
                capacity = max(capacity, 2 * buf.size)
            buf = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buf
        return buf[:n].reshape(shape)

    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())


class NaiveEngine:
    """The reference engine: Algorithm 1's scans as plain Python loops.

    Selection/tie-breaking semantics (the contract the vectorized engine
    must reproduce):

    - iteration is always over ``cache._images`` in dict order, which is
      image *insertion* order (merges mutate in place and never reorder);
    - the hit scan keeps the **first** best image under the configured
      ``hit_selection`` (strict comparisons, so ties go to the earliest
      inserted image);
    - the candidate scan returns images in iteration order with their
      exact Jaccard distances (the cache sorts or shuffles afterwards);
    - the eviction search is ``min()``/``max()`` over the non-pinned
      images, which also keeps the earliest on ties.
    """

    name = "naive"

    def bind(self, cache: "LandlordCache") -> None:
        """Attach to the owning cache (called once, from its ctor)."""
        self._cache = cache
        # Batch-window accounting mirrors the vectorized engine's so the
        # adaptive batching governor can drive either engine.  The naive
        # loops take no advantage of the window, so the dirty rate is
        # identically zero — the governor simply grows to its cap.
        self.batch_stats = {
            "windows": 0,
            "requests": 0,
            "dirty": 0,
            "repredictions": 0,
            "last_dirty_rate": 0.0,
        }
        self.compaction_stats = {"compactions": 0, "rows_reclaimed": 0}
        self._batch_n = 0

    # -- maintenance hooks (derived state: none) ---------------------------

    def on_add(self, image: "CachedImage") -> None:
        """A new image entered the cache (insert / adopt / restore)."""

    def on_remove(self, image: "CachedImage") -> None:
        """An image left the cache (eviction, clear, split source)."""

    def on_touch(self, image: "CachedImage") -> None:
        """The image's ``last_used`` clock was refreshed."""

    def on_update(self, image: "CachedImage") -> None:
        """The image's mask/size/count changed (a merge rewrite)."""

    # -- kernels -----------------------------------------------------------

    def find_hit(self, mask: int) -> Optional["CachedImage"]:
        """The image that serves a hit for ``mask``, or ``None``."""
        cache = self._cache
        selection = cache.hit_selection
        best: Optional["CachedImage"] = None
        for img in cache._images.values():
            if mask & img.mask == mask:
                if selection == "first":
                    return img
                if best is None:
                    best = img
                elif selection == "smallest" and img.size < best.size:
                    best = img
                elif selection == "mru" and img.last_used > best.last_used:
                    best = img
        return best

    def scan_candidates(
        self,
        mask: int,
        n_request: int,
        alpha: float,
        pool_ids: Optional[Sequence[str]] = None,
        indices: Optional[np.ndarray] = None,
    ) -> Tuple[List[Tuple[float, "CachedImage"]], int]:
        """All images with exact Jaccard distance < ``alpha``.

        Returns ``(candidates, examined)`` where ``candidates`` are
        ``(distance, image)`` pairs in pool order and ``examined`` is the
        number of images scanned (the ``candidates_examined`` delta).
        ``pool_ids`` restricts the scan to those ids in that exact order
        (the MinHash/LSH prefilter); ``None`` scans the whole cache.
        ``indices`` (the request's sorted universe indices) is an optional
        hint other engines use for signature hashing; the naive loop
        ignores it.
        """
        cache = self._cache
        if pool_ids is None:
            pool = cache._images.values()
            examined = len(cache._images)
        else:
            pool = (cache._images[key] for key in pool_ids)
            examined = len(pool_ids)
        out: List[Tuple[float, "CachedImage"]] = []
        for img in pool:
            inter = (mask & img.mask).bit_count()
            union = n_request + img.package_count - inter
            distance = 1.0 - (inter / union) if union else 0.0
            if distance < alpha:
                out.append((distance, img))
        return out, examined

    # -- batch API (reference semantics: a plain loop) -----------------------

    def find_hits(
        self, masks: Sequence[int]
    ) -> List[Optional["CachedImage"]]:
        """Hit scan for a vector of independent masks against current state."""
        return [self.find_hit(mask) for mask in masks]

    def scan_candidates_batch(
        self,
        queries: Sequence[Tuple[int, int]],
        alpha: float,
    ) -> List[Tuple[List[Tuple[float, "CachedImage"]], int]]:
        """Merge scan for a vector of ``(mask, n_request)`` queries."""
        return [
            self.scan_candidates(mask, n_request, alpha)
            for mask, n_request in queries
        ]

    def begin_batch(self, masks: Sequence[int]) -> None:
        """Batched-submission hint; the naive loops take no advantage."""
        self._batch_n = len(masks)

    def end_batch(self) -> None:
        """End the batched-submission window (accounting only)."""
        self.batch_stats["windows"] += 1
        self.batch_stats["requests"] += self._batch_n
        self.batch_stats["last_dirty_rate"] = 0.0
        self._batch_n = 0

    def eviction_victim(self, pinned_id: str) -> Optional["CachedImage"]:
        """The next eviction victim under the configured policy."""
        cache = self._cache
        candidates = (
            img for img in cache._images.values() if img.id != pinned_id
        )
        if cache.eviction == "lru":
            return min(candidates, key=lambda im: im.last_used, default=None)
        if cache.eviction == "fifo":
            return min(candidates, key=lambda im: im.created_at, default=None)
        return max(candidates, key=lambda im: im.size, default=None)  # "size"


class _HitBatch:
    """One batched-submission window: snapshot predictions plus repair state.

    ``predictions[i]`` is the image :meth:`VectorizedEngine.find_hits`
    chose for ``masks[i]`` against the state at :meth:`begin_batch` time;
    ``dirty`` collects the ids of every image added, removed, or
    rewritten since (plus touched images under ``"mru"`` selection, the
    only policy whose winner a touch can change).  ``cursor`` walks the
    mask vector as the cache replays the batch through ``request()``.
    """

    __slots__ = (
        "masks",
        "predictions",
        "cursor",
        "dirty",
        "selection",
        "track_touch",
        "dirty_seen",
        "repredictions",
    )

    def __init__(
        self,
        masks: Sequence[int],
        predictions: List[Optional["CachedImage"]],
        selection: str,
    ):
        self.masks = list(masks)
        self.predictions = predictions
        self.cursor = 0
        self.dirty: set = set()
        self.selection = selection
        self.track_touch = selection == "mru"
        # dirty_seen counts distinct dirtying events across the whole
        # window — unlike ``dirty`` it survives the clear() on
        # re-prediction, so ``dirty_seen / len(masks)`` is the window's
        # dirty rate, the adaptive batching governor's signal.
        self.dirty_seen = 0
        self.repredictions = 0

    def note_dirty(self, image_id: str) -> None:
        if image_id not in self.dirty:
            self.dirty.add(image_id)
            self.dirty_seen += 1


class VectorizedEngine:
    """Batched NumPy kernels with bit-identical naive-engine semantics.

    State layout (rows are allocated on demand, freed rows recycled):

    - ``_matrix[row, word]`` — the image's package set as ``uint64`` words
      (little-endian bit order, matching the cache's big-int masks);
    - ``_size`` / ``_last_used`` / ``_created`` / ``_count`` — parallel
      ``int64`` arrays mirroring the ``CachedImage`` fields;
    - ``_order`` — a monotonically increasing sequence number assigned
      when the image enters ``cache._images``; because images are only
      ever appended to that dict, ascending ``_order`` *is* dict
      iteration order, which is what every naive tie-break reduces to;
    - ``_heap`` — a lazy-deletion heap of ``(key, order, image_id)``
      entries for the bound eviction policy (``last_used`` for LRU,
      ``created_at`` for FIFO, ``-size`` for size-based).  Key changes
      push a fresh entry; stale entries are detected at pop time by
      comparing against the live arrays.  ``order`` is unique, so heap
      order is total and equals the naive scan's first-minimum rule.

    The eviction policy is fixed at bind time (the cache validates and
    never mutates it); ``alpha`` and ``hit_selection`` are read per call
    because :class:`~repro.core.adaptive.AlphaController` retunes α on a
    live cache.

    **Candidate prefilter** (``prefilter=True`` on the cache, the
    default): the full merge scan first narrows to the *count window* —
    d(s, j) < α forces ``t·n_s ≤ n_j ≤ n_s/t`` with ``t = 1 − α``, an
    exact bound since ``|s∩j|/|s∪j| ≤ min(n_s,n_j)/max(n_s,n_j)`` — and
    only gathers + popcounts the eligible rows when the window is
    selective.  A :class:`~repro.core.minhash.MinHashLSH` over per-image
    signatures (maintained incrementally in ``on_add``/``on_remove``/
    ``on_update`` once the cache is large enough) is probed per scan;
    the probe is *conclusive* when its bucket pool covers every
    window-eligible row, in which case the verified pool is exactly the
    eligible set.  An inconclusive probe (or an unselective window)
    falls back to the full bit-matrix scan.  Because every skipped row
    is excluded by the exact count bound — never by the probabilistic
    signatures alone — decisions stay bit-identical to the naive loops
    (exactness argument in DESIGN.md, "Decision-engine internals").

    **Batch window** (:meth:`begin_batch`/:meth:`end_batch`, driven by
    ``LandlordCache.submit_batch``): hit predictions for a vector of
    request masks are computed in grouped kernel invocations against a
    state snapshot; per request the prediction is *repaired* against the
    set of rows dirtied since the snapshot (adds, removes, merge
    rewrites, and — under ``"mru"`` selection — touches), which is
    provably equivalent to a fresh scan (DESIGN.md).  A prediction whose
    winner went dirty, or a dirty set past ``_BATCH_MAX_DIRTY``,
    triggers a rescan/re-prediction, so the fast path never guesses.
    """

    name = "vectorized"

    _INITIAL_ROWS = 64
    # Compact the heap when it holds > _HEAP_SLACK× more entries than
    # live images (and is big enough for the rebuild to matter).
    _HEAP_MIN = 64
    _HEAP_SLACK = 4
    # Internal LSH shape: 32 slots in 8 bands of 4 rows puts the S-curve
    # threshold near similarity 0.6, the middle of the paper's α grid.
    _LSH_PERM = 32
    _LSH_BANDS = 8
    _LSH_SEED = 0x51AB
    # Maintain/probe the internal LSH only once this many images are
    # live (below that, signature upkeep costs more than the scan).
    _LSH_MIN_LIVE = 256
    # Past this many dirtied rows, batched hit repair re-predicts the
    # rest of the batch instead of walking an ever-growing dirty set.
    _BATCH_MAX_DIRTY = 64
    # Element budget for batched-kernel temporaries (rows × batch lanes ×
    # words); 4M uint64 elements keeps the AND temporary near 32 MB.
    # ``bind`` derives the live budget from the cache's ``scratch_mb``
    # knob (``--scratch-mb`` / ``REPRO_SCRATCH_MB``); this is the
    # default's worth of elements.
    _BATCH_CELL_BUDGET = 1 << 22
    # Compact the matrix when more than this fraction of allocated rows
    # is dead (and the matrix is big enough for the copy to pay off).
    _COMPACT_MIN_TOP = 128
    _COMPACT_DEAD_FRACTION = 0.5

    def bind(self, cache: "LandlordCache") -> None:
        """Attach to the owning cache and allocate the empty matrix."""
        self._cache = cache
        self._policy = cache.eviction
        self._prefilter = bool(getattr(cache, "engine_prefilter", True))
        # Instance-level so tests can lower it to force the LSH path.
        self.lsh_min_live = self._LSH_MIN_LIVE
        self._sig_lsh: Optional[MinHashLSH] = None
        self._perm_a: Optional[np.ndarray] = None
        self._perm_b: Optional[np.ndarray] = None
        self._elem_hashes = np.zeros(0, dtype=np.uint64)
        self._elem_filled = np.zeros(0, dtype=bool)
        self._batch: Optional[_HitBatch] = None
        # Observable prefilter accounting (plain counters, reset never):
        # windowed = scans served from the count-window gather;
        # full = scans that fell back to the full bit-matrix pass;
        # lsh_probes/lsh_conclusive = probe attempts and certified hits;
        # rows_scanned = physical rows popcounted by merge scans.
        self.prefilter_stats = {
            "windowed": 0,
            "full": 0,
            "lsh_probes": 0,
            "lsh_conclusive": 0,
            "rows_scanned": 0,
        }
        # Batch-window accounting: per-window dirty rate feeds the
        # adaptive batching governor; cumulative counters feed /statusz.
        self.batch_stats = {
            "windows": 0,
            "requests": 0,
            "dirty": 0,
            "repredictions": 0,
            "last_dirty_rate": 0.0,
        }
        self.compaction_stats = {"compactions": 0, "rows_reclaimed": 0}
        # Element budget for batched-kernel temporaries, from the cache's
        # scratch knob (MiB of uint64 elements); chunking keeps results
        # bit-identical at any budget.
        scratch_mb = float(getattr(cache, "engine_scratch_mb", 32.0))
        self._cell_budget = max(4096, int(scratch_mb * (1 << 20)) // 8)
        rows = self._INITIAL_ROWS
        self._rows = rows
        self._words = 1
        self._matrix = np.zeros((rows, 1), dtype=_WORD)
        # Kernel temporaries live in a named-buffer arena: the kernels
        # run every request, so AND/popcount scratch is written into
        # reused flat buffers instead of allocated fresh per call (a
        # measurable win at thousands of rows and large batch windows).
        self._arena = _Arena()
        self._size = np.zeros(rows, dtype=np.int64)
        self._last_used = np.zeros(rows, dtype=np.int64)
        self._created = np.zeros(rows, dtype=np.int64)
        self._count = np.zeros(rows, dtype=np.int64)
        self._order = np.zeros(rows, dtype=np.int64)
        self._live = np.zeros(rows, dtype=bool)
        self._image_of_row: List[Optional["CachedImage"]] = [None] * rows
        self._row_of: dict = {}
        self._free: List[int] = []
        self._top = 0  # high-water mark of ever-allocated rows
        self._order_seq = 0
        self._n_live = 0
        self._heap: List[Tuple[int, int, str]] = []

    # -- layout ------------------------------------------------------------

    @staticmethod
    def _words_for(mask: int) -> int:
        return max(1, (mask.bit_length() + 63) >> 6)

    def _widen(self, words: int) -> None:
        if words <= self._words:
            return
        new_words = self._words
        while new_words < words:
            new_words *= 2
        grown = np.zeros((self._rows, new_words), dtype=_WORD)
        grown[:, : self._words] = self._matrix
        self._matrix = grown
        self._words = new_words

    def _grow_rows(self) -> None:
        old = self._rows
        new = old * 2
        grown = np.zeros((new, self._words), dtype=_WORD)
        grown[:old] = self._matrix
        self._matrix = grown
        for attr in ("_size", "_last_used", "_created", "_count", "_order"):
            arr = getattr(self, attr)
            wide = np.zeros(new, dtype=np.int64)
            wide[:old] = arr
            setattr(self, attr, wide)
        live = np.zeros(new, dtype=bool)
        live[:old] = self._live
        self._live = live
        self._image_of_row.extend([None] * old)
        self._rows = new

    def _alloc_row(self) -> int:
        if self._free:
            return self._free.pop()
        if self._top >= self._rows:
            self._grow_rows()
        row = self._top
        self._top += 1
        return row

    def _mask_words(self, mask: int) -> np.ndarray:
        """Full-matrix-width word vector of an *image* mask (widening)."""
        self._widen(self._words_for(mask))
        raw = mask.to_bytes(self._words * 8, "little")
        return np.frombuffer(raw, dtype=_WORD)

    def _query_words(self, mask: int) -> Tuple[np.ndarray, bool]:
        """A *request* mask as matrix-width words plus an overflow flag.

        Bits beyond the matrix width belong to packages no cached image
        contains: they make a hit impossible (``overflow``) and
        contribute zero to every intersection, so truncating them is
        exact.
        """
        width_bits = self._words << 6
        overflow = (mask >> width_bits) != 0
        if overflow:
            mask &= (1 << width_bits) - 1
        raw = mask.to_bytes(self._words * 8, "little")
        return np.frombuffer(raw, dtype=_WORD), overflow

    # -- maintenance hooks -------------------------------------------------

    def on_add(self, image: "CachedImage") -> None:
        """Mirror a new image into the matrix and parallel arrays."""
        row = self._alloc_row()
        self._matrix[row] = self._mask_words(image.mask)
        self._size[row] = image.size
        self._last_used[row] = image.last_used
        self._created[row] = image.created_at
        self._count[row] = image.package_count
        self._order[row] = self._order_seq
        self._order_seq += 1
        self._live[row] = True
        self._image_of_row[row] = image
        self._row_of[image.id] = row
        self._n_live += 1
        self._push(row, image.id)
        if self._sig_lsh is not None:
            self._sig_lsh.insert(
                image.id, self._signature_of_indices(image.indices)
            )
        if self._batch is not None:
            self._batch.note_dirty(image.id)

    def on_remove(self, image: "CachedImage") -> None:
        """Free the image's row (heap entries die lazily)."""
        row = self._row_of.pop(image.id)
        self._live[row] = False
        self._image_of_row[row] = None
        self._free.append(row)
        self._n_live -= 1
        if self._sig_lsh is not None:
            self._sig_lsh.remove(image.id)
        if self._batch is not None:
            self._batch.note_dirty(image.id)
        elif self._should_compact():
            self.compact()

    def on_touch(self, image: "CachedImage") -> None:
        """Refresh ``last_used``; LRU gets a fresh heap entry."""
        row = self._row_of[image.id]
        self._last_used[row] = image.last_used
        if self._policy == "lru":
            self._push(row, image.id)
        batch = self._batch
        if batch is not None and batch.track_touch:
            batch.note_dirty(image.id)

    def on_update(self, image: "CachedImage") -> None:
        """Re-mirror a merged image (mask, size, count, last_used)."""
        row = self._row_of[image.id]
        self._matrix[row] = self._mask_words(image.mask)
        self._size[row] = image.size
        self._count[row] = image.package_count
        self._last_used[row] = image.last_used
        if self._policy != "fifo":  # created_at never changes
            self._push(row, image.id)
        if self._sig_lsh is not None:
            self._sig_lsh.update(
                image.id, self._signature_of_indices(image.indices)
            )
        if self._batch is not None:
            self._batch.note_dirty(image.id)

    # -- live-row compaction -------------------------------------------------

    def _should_compact(self) -> bool:
        top = self._top
        return (
            top >= self._COMPACT_MIN_TOP
            and (top - self._n_live) > top * self._COMPACT_DEAD_FRACTION
        )

    def compact(self) -> int:
        """Pack live rows into a contiguous prefix; return rows reclaimed.

        Merges and evictions free rows onto ``_free``, but freed rows
        stay inside ``[:top]`` and every popcount kernel still walks
        them as garbage.  Compaction gathers the live rows (in ascending
        physical order — a stable pack) to the front of the matrix and
        every parallel array, remaps ``_row_of``/``_image_of_row``, and
        drops ``_top`` to ``n_live``, so subsequent scans touch live
        rows only.

        Exactness: no selection rule ever consults a physical row index
        — hits, merges, and evictions all tie-break on the ``_order``
        sequence numbers, which move with their rows — and lazy-deletion
        heap entries are keyed by ``image_id`` and revalidated through
        ``_row_of`` at pop time, so relocation cannot resurrect or lose
        an entry.  Deferred while a batch window is open (predictions
        are repaired against image ids, but the snapshot argument is
        simplest when rows are stable); ``end_batch`` re-checks.
        """
        top = self._top
        n_dead = top - self._n_live
        if n_dead <= 0:
            return 0
        live_rows = np.flatnonzero(self._live[:top])
        n = int(live_rows.size)
        self._matrix[:n] = self._matrix[live_rows]
        for attr in ("_size", "_last_used", "_created", "_count", "_order"):
            arr = getattr(self, attr)
            arr[:n] = arr[live_rows]
        self._live[:top] = False
        self._live[:n] = True
        image_of = self._image_of_row
        packed: List[Optional["CachedImage"]] = [None] * self._rows
        row_of = self._row_of
        for new_row, old_row in enumerate(live_rows.tolist()):
            image = image_of[old_row]
            packed[new_row] = image
            row_of[image.id] = new_row
        self._image_of_row = packed
        self._free = []
        self._top = n
        self.compaction_stats["compactions"] += 1
        self.compaction_stats["rows_reclaimed"] += n_dead
        return n_dead

    # -- internal MinHash/LSH index ------------------------------------------

    def _element_hash_values(self, indices: np.ndarray) -> np.ndarray:
        """Stable 64-bit element hashes for universe indices (memoised)."""
        if indices.size == 0:
            return np.zeros(0, dtype=np.uint64)
        needed = int(indices[-1]) + 1  # indices are sorted ascending
        if needed > self._elem_hashes.size:
            capacity = max(1024, self._elem_hashes.size)
            while capacity < needed:
                capacity *= 2
            grown = np.zeros(capacity, dtype=np.uint64)
            grown[: self._elem_hashes.size] = self._elem_hashes
            self._elem_hashes = grown
            filled = np.zeros(capacity, dtype=bool)
            filled[: self._elem_filled.size] = self._elem_filled
            self._elem_filled = filled
        missing = indices[~self._elem_filled[indices]]
        if missing.size:
            ids = self._cache._universe._ids
            for idx in missing:
                i = int(idx)
                self._elem_hashes[i] = element_hash(ids[i])
                self._elem_filled[i] = True
        return self._elem_hashes[indices]

    def _signature_of_indices(self, indices: np.ndarray) -> MinHashSignature:
        """MinHash signature of a package-index set (engine-internal seed)."""
        if self._perm_a is None:
            self._perm_a, self._perm_b = _perm_params(
                self._LSH_PERM, self._LSH_SEED
            )
        hashes = self._element_hash_values(indices)
        if hashes.size == 0:
            values = np.full(self._LSH_PERM, _FULL, dtype=np.uint64)
        else:
            with np.errstate(over="ignore"):
                table = (
                    self._perm_a[:, None] * hashes[None, :]
                    + self._perm_b[:, None]
                )
            values = table.min(axis=1)
        return MinHashSignature(values, self._LSH_PERM, self._LSH_SEED)

    def _ensure_sig_lsh(self) -> None:
        """Build the internal LSH over all live images (first use only)."""
        if self._sig_lsh is not None:
            return
        lsh = MinHashLSH(self._LSH_PERM, self._LSH_BANDS)
        for image_id, row in self._row_of.items():
            image = self._image_of_row[row]
            lsh.insert(image_id, self._signature_of_indices(image.indices))
        self._sig_lsh = lsh

    # -- kernels -----------------------------------------------------------

    def find_hit(self, mask: int) -> Optional["CachedImage"]:
        """Vectorised subset test + the naive scan's selection rule.

        A row serves the request iff every request word survives masking:
        ``(matrix & request) == request``.  The scan first filters on the
        single densest request word — a column pass over ``top`` int64s —
        and verifies only the surviving rows against the full request, so
        the common no-hit/one-hit case never touches the whole matrix.
        Among matching rows the selection reduces to a lexicographic
        extremum with ``_order`` as the tiebreaker, matching the naive
        scan's strict-comparison first-winner semantics exactly.

        Inside a batch window the scan is served from the window's
        snapshot prediction repaired against the dirty set
        (:meth:`_batched_hit`); a lane whose prediction was invalidated
        falls through to the plain scan below.
        """
        batch = self._batch
        if batch is not None:
            served, hit = self._batched_hit(batch, mask)
            if served:
                return hit
        if self._n_live == 0:
            return None
        q, overflow = self._query_words(mask)
        if overflow:
            return None
        top = self._top
        nz = np.flatnonzero(q)
        if nz.size == 0:
            # Empty request: every live image is a superset.
            rows = np.flatnonzero(self._live[:top])
        else:
            word = int(nz[np.argmax(np.bitwise_count(q[nz]))])
            qw = q[word]
            col = self._matrix[:top, word]
            cand = np.flatnonzero((col & qw) == qw)
            if cand.size == 0:
                return None
            cand = cand[self._live[cand]]
            if cand.size == 0:
                return None
            if nz.size > 1:
                sub = self._matrix[np.ix_(cand, nz)]
                covered = ((sub & q[nz]) == q[nz]).all(axis=1)
                rows = cand[covered]
            else:
                rows = cand
        if rows.size == 0:
            return None
        return self._select_hit(rows)

    def _select_hit(self, rows: np.ndarray) -> Optional["CachedImage"]:
        """The winner among superset rows under the cache's selection rule.

        Reduces to a lexicographic extremum with ``_order`` as the
        tiebreaker, matching the naive scan's strict-comparison
        first-winner semantics exactly.
        """
        selection = self._cache.hit_selection
        if selection == "first":
            row = rows[np.argmin(self._order[rows])]
        elif selection == "smallest":
            row = rows[np.lexsort((self._order[rows], self._size[rows]))[0]]
        else:  # "mru": max last_used, earliest order on ties
            row = rows[
                np.lexsort((self._order[rows], -self._last_used[rows]))[0]
            ]
        return self._image_of_row[int(row)]

    def _verify_and_select(
        self, cand: np.ndarray, q: np.ndarray, nz: np.ndarray
    ) -> Optional["CachedImage"]:
        """Finish a hit scan from densest-word candidates ``cand``."""
        cand = cand[self._live[cand]]
        if cand.size == 0:
            return None
        if nz.size > 1:
            sub = self._matrix[np.ix_(cand, nz)]
            covered = ((sub & q[nz]) == q[nz]).all(axis=1)
            rows = cand[covered]
        else:
            rows = cand
        if rows.size == 0:
            return None
        return self._select_hit(rows)

    def _window_rows(
        self, n_request: int, alpha: float
    ) -> Optional[np.ndarray]:
        """Live rows whose package count admits distance < ``alpha``.

        Exact bound, not an approximation: with ``t = 1 − α`` and set
        sizes ``n_s`` (request) and ``n_j`` (image),
        ``sim(s, j) ≤ min(n_s, n_j) / max(n_s, n_j)``, so ``d < α``
        forces ``t·n_s ≤ n_j ≤ n_s / t``.  The bounds are widened by an
        epsilon dwarfing the ≤2-ulp rounding error of the two float ops
        (counts stay below 2^31, so 1 ulp < 1e-6 absolute), which can
        only *admit* extra rows — those fall to the exact distance test.
        ``None`` means the window is vacuous (``α ≥ 1`` admits every
        count).
        """
        t = 1.0 - alpha
        if t <= 0.0:
            return None
        top = self._top
        counts = self._count[:top]
        lo = t * n_request - 1e-6
        hi = n_request / t + 1e-6
        ok = self._live[:top] & (counts >= lo) & (counts <= hi)
        return np.flatnonzero(ok)

    def _certify_window(self, indices: np.ndarray, rows: np.ndarray) -> None:
        """Probe the internal LSH and record whether it covers ``rows``.

        The probe never prunes — MinHash collisions are probabilistic,
        and a missed bucket would silently drop a true candidate.  It is
        *certification accounting*: a probe is conclusive when its bucket
        pool ⊇ the window-eligible rows, i.e. the verified pool
        (pool ∩ eligible) is exactly the eligible set the scan already
        uses.  The counters feed the prefilter telemetry and the
        differential suite's LSH-path coverage assertions.
        """
        if self._n_live >= self.lsh_min_live:
            self._ensure_sig_lsh()
        if self._sig_lsh is None:
            return
        self.prefilter_stats["lsh_probes"] += 1
        pool = self._sig_lsh.query(self._signature_of_indices(indices))
        image_of = self._image_of_row
        if all(image_of[int(r)].id in pool for r in rows):
            self.prefilter_stats["lsh_conclusive"] += 1

    def scan_candidates(
        self,
        mask: int,
        n_request: int,
        alpha: float,
        pool_ids: Optional[Sequence[str]] = None,
        indices: Optional[np.ndarray] = None,
    ) -> Tuple[List[Tuple[float, "CachedImage"]], int]:
        """Batched popcount intersection → all exact Jaccard distances.

        ``|s ∩ j|`` is one ``bitwise_count`` over the masked matrix and a
        row sum; distances come out of the same IEEE-754 expression the
        naive loop evaluates (int64 division and subtraction are
        correctly rounded in both), so the floats are bit-identical.
        Candidates are returned in pool order: ascending ``_order`` for a
        full scan (= dict order), given order for an LSH pool.

        With the prefilter enabled, a full scan first narrows to the
        exact count window (:meth:`_window_rows`) and gathers only those
        rows when the window is selective; the reported ``examined``
        stays the *logical* pool size (``n_live``), because every
        window-excluded row was examined — by an exact bound on its
        count — and the statistic must not depend on physical strategy.
        """
        if pool_ids is not None:
            if not pool_ids:
                return [], 0
            rows = np.fromiter(
                (self._row_of[key] for key in pool_ids),
                dtype=np.int64,
                count=len(pool_ids),
            )
            sub = self._matrix[rows]
            dist = self._distances(sub, rows, n_request, mask)
            image_of = self._image_of_row
            out = [
                (float(dist[i]), image_of[int(rows[i])])
                for i in np.flatnonzero(dist < alpha)
            ]
            return out, len(pool_ids)
        if self._n_live == 0:
            return [], 0
        top = self._top
        examined = self._n_live
        if self._prefilter:
            rows = self._window_rows(n_request, alpha)
            if rows is not None and (rows.size << 1) < top:
                self.prefilter_stats["windowed"] += 1
                self.prefilter_stats["rows_scanned"] += int(rows.size)
                if indices is not None:
                    self._certify_window(indices, rows)
                if rows.size == 0:
                    return [], examined
                if rows.size > 1:
                    rows = rows[np.argsort(self._order[rows])]
                sub = self._matrix[rows]
                dist = self._distances(sub, rows, n_request, mask)
                image_of = self._image_of_row
                out = [
                    (float(dist[i]), image_of[int(rows[i])])
                    for i in np.flatnonzero(dist < alpha)
                ]
                return out, examined
        self.prefilter_stats["full"] += 1
        self.prefilter_stats["rows_scanned"] += top
        all_rows = np.arange(top, dtype=np.int64)
        dist = self._distances(None, all_rows, n_request, mask)
        ok = self._live[:top] & (dist < alpha)
        rows = np.flatnonzero(ok)
        if rows.size > 1:
            rows = rows[np.argsort(self._order[rows])]
        image_of = self._image_of_row
        out = [(float(dist[int(r)]), image_of[int(r)]) for r in rows]
        return out, examined

    # -- batch API -----------------------------------------------------------

    def find_hits(
        self, masks: Sequence[int]
    ) -> List[Optional["CachedImage"]]:
        """Hit scan for a vector of masks in grouped kernel invocations.

        Masks are deduplicated, grouped by their densest request word,
        and each group's densest-word filter runs as one broadcast
        kernel over ``top × group`` lanes (chunked to the element
        budget); survivors are verified and selected per lane exactly as
        :meth:`find_hit` would be.  Equivalent to
        ``[self.find_hit(m) for m in masks]`` against fixed state.
        """
        results: List[Optional["CachedImage"]] = [None] * len(masks)
        if self._n_live == 0 or not masks:
            return results
        top = self._top
        lanes: Dict[int, List[int]] = {}
        for i, mask in enumerate(masks):
            lanes.setdefault(mask, []).append(i)
        # Group distinct masks by their densest word so one column pass
        # filters a whole group of lanes.
        groups: Dict[int, List[Tuple[int, np.ndarray, np.ndarray]]] = {}
        for mask, out_idx in lanes.items():
            q, overflow = self._query_words(mask)
            if overflow:
                continue  # packages no cached image contains: no hit
            nz = np.flatnonzero(q)
            if nz.size == 0:
                # Empty request: every live image is a superset.
                hit = self._select_hit(np.flatnonzero(self._live[:top]))
                for i in out_idx:
                    results[i] = hit
                continue
            word = int(nz[np.argmax(np.bitwise_count(q[nz]))])
            groups.setdefault(word, []).append((mask, q, nz))
        for word, members in groups.items():
            qws = np.array([q[word] for _, q, _ in members], dtype=_WORD)
            col = self._matrix[:top, word]
            n_lanes = len(members)
            chunk = max(1, self._cell_budget // n_lanes)
            cand_lists: List[List[np.ndarray]] = [[] for _ in members]
            for start in range(0, top, chunk):
                stop = min(start + chunk, top)
                shape = (stop - start, n_lanes)
                anded = np.bitwise_and(
                    col[start:stop, None],
                    qws[None, :],
                    out=self._arena.take("hit_and", shape, _WORD),
                )
                covered = np.equal(
                    anded,
                    qws[None, :],
                    out=self._arena.take("hit_eq", shape, np.bool_),
                )
                rows_idx, lane_idx = np.nonzero(covered)
                if rows_idx.size == 0:
                    continue
                rows_idx = rows_idx + start
                by_lane = np.argsort(lane_idx, kind="stable")
                lane_sorted = lane_idx[by_lane]
                rows_sorted = rows_idx[by_lane]
                bounds = np.searchsorted(
                    lane_sorted, np.arange(n_lanes + 1)
                )
                for j in range(n_lanes):
                    sel = rows_sorted[bounds[j] : bounds[j + 1]]
                    if sel.size:
                        cand_lists[j].append(sel)
            for j, (mask, q, nz) in enumerate(members):
                if not cand_lists[j]:
                    continue
                cand = (
                    cand_lists[j][0]
                    if len(cand_lists[j]) == 1
                    else np.concatenate(cand_lists[j])
                )
                hit = self._verify_and_select(cand, q, nz)
                if hit is not None:
                    for i in lanes[mask]:
                        results[i] = hit
        return results

    def scan_candidates_batch(
        self,
        queries: Sequence[Tuple[int, int]],
        alpha: float,
    ) -> List[Tuple[List[Tuple[float, "CachedImage"]], int]]:
        """Merge scan for a vector of ``(mask, n_request)`` queries.

        One broadcast popcount kernel per lane chunk — the ``B × top``
        intersection matrix comes out of a single ``bitwise_count`` over
        a ``B × top × words`` AND (chunked to the element budget), and
        each lane then applies the same exact-distance filter and
        ``_order`` sort as :meth:`scan_candidates`.  Equivalent to
        ``[self.scan_candidates(m, n, alpha) for m, n in queries]``
        against fixed state.
        """
        n_queries = len(queries)
        if n_queries == 0:
            return []
        if self._n_live == 0:
            return [([], 0) for _ in queries]
        top = self._top
        words = self._words
        examined = self._n_live
        stacked = self._arena.take("stacked", (n_queries, words), _WORD)
        n_req = np.zeros(n_queries, dtype=np.int64)
        for i, (mask, n_request) in enumerate(queries):
            q, _overflow = self._query_words(mask)
            stacked[i] = q
            n_req[i] = n_request
        live = self._live[:top]
        counts = self._count[:top]
        image_of = self._image_of_row
        results: List[Tuple[List[Tuple[float, "CachedImage"]], int]] = []
        lane_budget = max(1, self._cell_budget // max(1, top * words))
        for start in range(0, n_queries, lane_budget):
            stop = min(start + lane_budget, n_queries)
            shape = (stop - start, top, words)
            anded = np.bitwise_and(
                self._matrix[None, :top, :],
                stacked[start:stop, None, :],
                out=self._arena.take("batch_and", shape, _WORD),
            )
            inter = np.bitwise_count(
                anded, out=self._arena.take("batch_pop", shape, np.uint8)
            ).sum(axis=2, dtype=np.int64)
            union = n_req[start:stop, None] + counts[None, :] - inter
            dist = np.where(
                union > 0, 1.0 - inter / np.maximum(union, 1), 0.0
            )
            for j in range(stop - start):
                ok = live & (dist[j] < alpha)
                rows = np.flatnonzero(ok)
                if rows.size > 1:
                    rows = rows[np.argsort(self._order[rows])]
                out = [
                    (float(dist[j][int(r)]), image_of[int(r)]) for r in rows
                ]
                results.append((out, examined))
        return results

    def begin_batch(self, masks: Sequence[int]) -> None:
        """Open a batch window: predict every mask's hit against now-state."""
        self._batch = None  # predictions must come from the plain kernels
        predictions = self.find_hits(masks)
        self._batch = _HitBatch(masks, predictions, self._cache.hit_selection)

    def end_batch(self) -> None:
        """Close the batch window, folding its dirty rate into the stats."""
        batch = self._batch
        self._batch = None
        if batch is not None:
            stats = self.batch_stats
            stats["windows"] += 1
            stats["requests"] += len(batch.masks)
            stats["dirty"] += batch.dirty_seen
            stats["repredictions"] += batch.repredictions
            stats["last_dirty_rate"] = batch.dirty_seen / max(
                1, len(batch.masks)
            )
        # Compaction was deferred while the window was open.
        if self._should_compact():
            self.compact()

    def _hit_key(self, image: "CachedImage") -> Tuple[int, ...]:
        """The naive scan's strict-comparison order as a sortable key."""
        row = self._row_of[image.id]
        selection = self._cache.hit_selection
        if selection == "first":
            return (int(self._order[row]),)
        if selection == "smallest":
            return (int(self._size[row]), int(self._order[row]))
        return (-int(self._last_used[row]), int(self._order[row]))

    def _batched_hit(
        self, batch: _HitBatch, mask: int
    ) -> Tuple[bool, Optional["CachedImage"]]:
        """Serve one batch lane from its prediction, repaired for drift.

        Returns ``(served, hit)``; ``served=False`` sends the caller to
        the plain scan.  Exactness: rows untouched since the window
        opened are byte-identical to their snapshot state, so the
        snapshot prediction remains the best among them (its key fields
        are immutable unless the image went dirty); every mutated or new
        row is in ``dirty``.  The true winner is therefore
        ``min(key)`` over {prediction} ∪ {dirty live supersets}, with
        the big-int mask test covering rows wider than the snapshot
        matrix.  A dirtied/evicted prediction or a stale lane (mask or
        selection mismatch) rescans; a dirty set past
        ``_BATCH_MAX_DIRTY`` re-predicts the remaining lanes instead of
        walking an ever-growing set.
        """
        cursor = batch.cursor
        if (
            cursor >= len(batch.masks)
            or batch.masks[cursor] != mask
            or batch.selection != self._cache.hit_selection
        ):
            return False, None
        if len(batch.dirty) > self._BATCH_MAX_DIRTY:
            self._batch = None
            try:
                batch.predictions[cursor:] = self.find_hits(
                    batch.masks[cursor:]
                )
            finally:
                self._batch = batch
            batch.dirty.clear()
            batch.repredictions += 1
        batch.cursor = cursor + 1
        pred = batch.predictions[cursor]
        row_of = self._row_of
        if pred is not None and (
            pred.id in batch.dirty or pred.id not in row_of
        ):
            return False, None  # prediction invalidated: full rescan
        best = pred
        if batch.dirty:
            image_of = self._image_of_row
            best_key = None if best is None else self._hit_key(best)
            for image_id in batch.dirty:
                row = row_of.get(image_id)
                if row is None:
                    continue  # dirtied then removed
                img = image_of[row]
                if mask & img.mask != mask:
                    continue
                key = self._hit_key(img)
                if best_key is None or key < best_key:
                    best, best_key = img, key
        return True, best

    def _distances(
        self,
        sub: Optional[np.ndarray],
        rows: np.ndarray,
        n_request: int,
        mask: int,
    ) -> np.ndarray:
        """Exact Jaccard distances of ``rows`` (garbage on dead rows).

        ``sub=None`` means "the first ``len(rows)`` matrix rows" and runs
        through arena scratch buffers (the full-scan fast path); an
        explicit ``sub`` (the LSH pool gather) allocates normally.
        """
        q, _overflow = self._query_words(mask)
        if sub is None:
            top = len(rows)
            shape = (top, self._words)
            anded = np.bitwise_and(
                self._matrix[:top], q, out=self._arena.take("and", shape, _WORD)
            )
            pops = np.bitwise_count(
                anded, out=self._arena.take("pop", shape, np.uint8)
            )
        else:
            pops = np.bitwise_count(sub & q)
        inter = pops.sum(axis=1, dtype=np.int64)
        union = n_request + self._count[rows] - inter
        # Dead rows carry stale counts, so union may be <= 0 there; the
        # caller filters them via _live.  union == 0 on a live row means
        # empty-vs-empty, defined as distance 0.0 (as in the naive loop).
        # The max(union, 1) denominator avoids a divide warning without
        # an errstate context (measurably slow per call); rows where it
        # kicked in are overwritten by the where().
        return np.where(
            union > 0, 1.0 - inter / np.maximum(union, 1), 0.0
        )

    # -- eviction heap -----------------------------------------------------

    def _key_of_row(self, row: int) -> int:
        if self._policy == "lru":
            return int(self._last_used[row])
        if self._policy == "fifo":
            return int(self._created[row])
        return -int(self._size[row])  # "size": largest first

    def _push(self, row: int, image_id: str) -> None:
        heapq.heappush(
            self._heap, (self._key_of_row(row), int(self._order[row]), image_id)
        )
        if (
            len(self._heap) > self._HEAP_MIN
            and len(self._heap) > self._HEAP_SLACK * max(self._n_live, 1)
        ):
            self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        self._heap = [
            (self._key_of_row(row), int(self._order[row]), image_id)
            for image_id, row in self._row_of.items()
        ]
        heapq.heapify(self._heap)

    def eviction_victim(self, pinned_id: str) -> Optional["CachedImage"]:
        """Pop to the freshest minimal entry, skipping the pinned image.

        An entry is *stale* when its image is gone or its key no longer
        matches the live arrays (every key change pushed a newer entry,
        so the current key is always present).  A valid entry for the
        pinned image is set aside and pushed back afterwards — it stays
        the would-be victim for a later, unpinned eviction.
        """
        heap = self._heap
        stash = None
        victim = None
        while heap:
            key, order, image_id = heap[0]
            row = self._row_of.get(image_id)
            if (
                row is None
                or self._order[row] != order
                or self._key_of_row(row) != key
            ):
                heapq.heappop(heap)  # stale
                continue
            if image_id == pinned_id:
                stash = heapq.heappop(heap)
                continue
            victim = self._image_of_row[row]
            break
        if stash is not None:
            heapq.heappush(heap, stash)
        return victim


def make_engine(name: str):
    """Instantiate a decision engine by knob value (unbound)."""
    if name == "naive":
        return NaiveEngine()
    if name == "vectorized":
        return VectorizedEngine()
    raise ValueError(f"engine must be one of {ENGINES}, got {name!r}")
