"""Decision engines: the data-parallel kernels behind Algorithm 1.

Every request to :class:`~repro.core.cache.LandlordCache` runs three inner
scans over the cached image collection:

1. the **superset (hit) scan** — is some cached image a superset of the
   request specification?
2. the **merge-candidate scan** — which cached images are within exact
   Jaccard distance α of the request, and at what distance?
3. the **eviction-victim search** — which image does the configured
   policy (LRU / FIFO / size) evict next under capacity pressure?

The reference implementation (:class:`NaiveEngine`) answers all three
with O(cache size) Python loops over big-int bitmasks — clear, exactly
the paper's Algorithm 1, and the semantic ground truth.

:class:`VectorizedEngine` answers the same three questions from
incrementally maintained NumPy state instead:

- all cached-image package sets live in one padded ``uint64`` bit matrix
  (rows = images, columns = 64-package words), alongside parallel arrays
  for size, ``last_used``, ``created_at``, package count, and a
  dict-insertion sequence number;
- the hit scan is a single vectorised subset test
  (``(matrix & request) == request`` row-reduction);
- the merge scan is one batched popcount intersection
  (:func:`numpy.bitwise_count`) yielding every exact Jaccard distance in
  one shot — no approximation on the fast path;
- the eviction search is a lazy-deletion heap keyed by the policy, so a
  capacity storm evicting k of n images costs O(k log n) instead of
  O(k·n).

The two engines are **bit-identical**: same decisions, same statistics,
same events, same snapshots, for every combination of policy knobs.
This is not accidental — each vectorised kernel reproduces the naive
loop's selection rule *including its tie-breaking*, which falls out of
dict iteration order.  The sequence-number array makes that order
explicit (see the individual kernel docstrings and the proof sketch in
DESIGN.md, "Decision-engine internals"); the differential property
suite in ``tests/core/test_engine_differential.py`` enforces it over
randomized workloads across the full knob grid.

Engines hold *derived* state only: the cache remains the single source
of truth (its ``_images`` dict and the ``CachedImage`` objects), and
notifies its engine through four hooks — :meth:`~NaiveEngine.on_add`,
:meth:`~NaiveEngine.on_remove`, :meth:`~NaiveEngine.on_touch` (the
image's ``last_used`` changed), :meth:`~NaiveEngine.on_update` (its
contents/size changed, i.e. a merge rewrite).  Restoring a snapshot
replays ``on_add`` per image, which is how a recovered cache rebuilds
its matrix.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.cache import CachedImage, LandlordCache

__all__ = ["ENGINES", "NaiveEngine", "VectorizedEngine", "make_engine"]

#: Valid values for the cache's ``engine=`` knob.
ENGINES = ("naive", "vectorized")

# Little-endian uint64: to_bytes(..., "little") then frombuffer must give
# the same words on any host, so the byte order is pinned explicitly.
_WORD = np.dtype("<u8")


class NaiveEngine:
    """The reference engine: Algorithm 1's scans as plain Python loops.

    Selection/tie-breaking semantics (the contract the vectorized engine
    must reproduce):

    - iteration is always over ``cache._images`` in dict order, which is
      image *insertion* order (merges mutate in place and never reorder);
    - the hit scan keeps the **first** best image under the configured
      ``hit_selection`` (strict comparisons, so ties go to the earliest
      inserted image);
    - the candidate scan returns images in iteration order with their
      exact Jaccard distances (the cache sorts or shuffles afterwards);
    - the eviction search is ``min()``/``max()`` over the non-pinned
      images, which also keeps the earliest on ties.
    """

    name = "naive"

    def bind(self, cache: "LandlordCache") -> None:
        """Attach to the owning cache (called once, from its ctor)."""
        self._cache = cache

    # -- maintenance hooks (derived state: none) ---------------------------

    def on_add(self, image: "CachedImage") -> None:
        """A new image entered the cache (insert / adopt / restore)."""

    def on_remove(self, image: "CachedImage") -> None:
        """An image left the cache (eviction, clear, split source)."""

    def on_touch(self, image: "CachedImage") -> None:
        """The image's ``last_used`` clock was refreshed."""

    def on_update(self, image: "CachedImage") -> None:
        """The image's mask/size/count changed (a merge rewrite)."""

    # -- kernels -----------------------------------------------------------

    def find_hit(self, mask: int) -> Optional["CachedImage"]:
        """The image that serves a hit for ``mask``, or ``None``."""
        cache = self._cache
        selection = cache.hit_selection
        best: Optional["CachedImage"] = None
        for img in cache._images.values():
            if mask & img.mask == mask:
                if selection == "first":
                    return img
                if best is None:
                    best = img
                elif selection == "smallest" and img.size < best.size:
                    best = img
                elif selection == "mru" and img.last_used > best.last_used:
                    best = img
        return best

    def scan_candidates(
        self,
        mask: int,
        n_request: int,
        alpha: float,
        pool_ids: Optional[Sequence[str]] = None,
    ) -> Tuple[List[Tuple[float, "CachedImage"]], int]:
        """All images with exact Jaccard distance < ``alpha``.

        Returns ``(candidates, examined)`` where ``candidates`` are
        ``(distance, image)`` pairs in pool order and ``examined`` is the
        number of images scanned (the ``candidates_examined`` delta).
        ``pool_ids`` restricts the scan to those ids in that exact order
        (the MinHash/LSH prefilter); ``None`` scans the whole cache.
        """
        cache = self._cache
        if pool_ids is None:
            pool = cache._images.values()
            examined = len(cache._images)
        else:
            pool = (cache._images[key] for key in pool_ids)
            examined = len(pool_ids)
        out: List[Tuple[float, "CachedImage"]] = []
        for img in pool:
            inter = (mask & img.mask).bit_count()
            union = n_request + img.package_count - inter
            distance = 1.0 - (inter / union) if union else 0.0
            if distance < alpha:
                out.append((distance, img))
        return out, examined

    def eviction_victim(self, pinned_id: str) -> Optional["CachedImage"]:
        """The next eviction victim under the configured policy."""
        cache = self._cache
        candidates = (
            img for img in cache._images.values() if img.id != pinned_id
        )
        if cache.eviction == "lru":
            return min(candidates, key=lambda im: im.last_used, default=None)
        if cache.eviction == "fifo":
            return min(candidates, key=lambda im: im.created_at, default=None)
        return max(candidates, key=lambda im: im.size, default=None)  # "size"


class VectorizedEngine:
    """Batched NumPy kernels with bit-identical naive-engine semantics.

    State layout (rows are allocated on demand, freed rows recycled):

    - ``_matrix[row, word]`` — the image's package set as ``uint64`` words
      (little-endian bit order, matching the cache's big-int masks);
    - ``_size`` / ``_last_used`` / ``_created`` / ``_count`` — parallel
      ``int64`` arrays mirroring the ``CachedImage`` fields;
    - ``_order`` — a monotonically increasing sequence number assigned
      when the image enters ``cache._images``; because images are only
      ever appended to that dict, ascending ``_order`` *is* dict
      iteration order, which is what every naive tie-break reduces to;
    - ``_heap`` — a lazy-deletion heap of ``(key, order, image_id)``
      entries for the bound eviction policy (``last_used`` for LRU,
      ``created_at`` for FIFO, ``-size`` for size-based).  Key changes
      push a fresh entry; stale entries are detected at pop time by
      comparing against the live arrays.  ``order`` is unique, so heap
      order is total and equals the naive scan's first-minimum rule.

    The eviction policy is fixed at bind time (the cache validates and
    never mutates it); ``alpha`` and ``hit_selection`` are read per call
    because :class:`~repro.core.adaptive.AlphaController` retunes α on a
    live cache.
    """

    name = "vectorized"

    _INITIAL_ROWS = 64
    # Compact the heap when it holds > _HEAP_SLACK× more entries than
    # live images (and is big enough for the rebuild to matter).
    _HEAP_MIN = 64
    _HEAP_SLACK = 4

    def bind(self, cache: "LandlordCache") -> None:
        """Attach to the owning cache and allocate the empty matrix."""
        self._cache = cache
        self._policy = cache.eviction
        rows = self._INITIAL_ROWS
        self._rows = rows
        self._words = 1
        self._matrix = np.zeros((rows, 1), dtype=_WORD)
        # Scratch buffers sized with the matrix: the kernels run every
        # request, so the AND temporaries are written in place instead of
        # allocated fresh (a measurable win at thousands of rows).
        self._and_scratch = np.zeros((rows, 1), dtype=_WORD)
        self._pop_scratch = np.zeros((rows, 1), dtype=np.uint8)
        self._size = np.zeros(rows, dtype=np.int64)
        self._last_used = np.zeros(rows, dtype=np.int64)
        self._created = np.zeros(rows, dtype=np.int64)
        self._count = np.zeros(rows, dtype=np.int64)
        self._order = np.zeros(rows, dtype=np.int64)
        self._live = np.zeros(rows, dtype=bool)
        self._image_of_row: List[Optional["CachedImage"]] = [None] * rows
        self._row_of: dict = {}
        self._free: List[int] = []
        self._top = 0  # high-water mark of ever-allocated rows
        self._order_seq = 0
        self._n_live = 0
        self._heap: List[Tuple[int, int, str]] = []

    # -- layout ------------------------------------------------------------

    @staticmethod
    def _words_for(mask: int) -> int:
        return max(1, (mask.bit_length() + 63) >> 6)

    def _widen(self, words: int) -> None:
        if words <= self._words:
            return
        new_words = self._words
        while new_words < words:
            new_words *= 2
        grown = np.zeros((self._rows, new_words), dtype=_WORD)
        grown[:, : self._words] = self._matrix
        self._matrix = grown
        self._words = new_words
        self._and_scratch = np.zeros((self._rows, new_words), dtype=_WORD)
        self._pop_scratch = np.zeros((self._rows, new_words), dtype=np.uint8)

    def _grow_rows(self) -> None:
        old = self._rows
        new = old * 2
        grown = np.zeros((new, self._words), dtype=_WORD)
        grown[:old] = self._matrix
        self._matrix = grown
        self._and_scratch = np.zeros((new, self._words), dtype=_WORD)
        self._pop_scratch = np.zeros((new, self._words), dtype=np.uint8)
        for attr in ("_size", "_last_used", "_created", "_count", "_order"):
            arr = getattr(self, attr)
            wide = np.zeros(new, dtype=np.int64)
            wide[:old] = arr
            setattr(self, attr, wide)
        live = np.zeros(new, dtype=bool)
        live[:old] = self._live
        self._live = live
        self._image_of_row.extend([None] * old)
        self._rows = new

    def _alloc_row(self) -> int:
        if self._free:
            return self._free.pop()
        if self._top >= self._rows:
            self._grow_rows()
        row = self._top
        self._top += 1
        return row

    def _mask_words(self, mask: int) -> np.ndarray:
        """Full-matrix-width word vector of an *image* mask (widening)."""
        self._widen(self._words_for(mask))
        raw = mask.to_bytes(self._words * 8, "little")
        return np.frombuffer(raw, dtype=_WORD)

    def _query_words(self, mask: int) -> Tuple[np.ndarray, bool]:
        """A *request* mask as matrix-width words plus an overflow flag.

        Bits beyond the matrix width belong to packages no cached image
        contains: they make a hit impossible (``overflow``) and
        contribute zero to every intersection, so truncating them is
        exact.
        """
        width_bits = self._words << 6
        overflow = (mask >> width_bits) != 0
        if overflow:
            mask &= (1 << width_bits) - 1
        raw = mask.to_bytes(self._words * 8, "little")
        return np.frombuffer(raw, dtype=_WORD), overflow

    # -- maintenance hooks -------------------------------------------------

    def on_add(self, image: "CachedImage") -> None:
        """Mirror a new image into the matrix and parallel arrays."""
        row = self._alloc_row()
        self._matrix[row] = self._mask_words(image.mask)
        self._size[row] = image.size
        self._last_used[row] = image.last_used
        self._created[row] = image.created_at
        self._count[row] = image.package_count
        self._order[row] = self._order_seq
        self._order_seq += 1
        self._live[row] = True
        self._image_of_row[row] = image
        self._row_of[image.id] = row
        self._n_live += 1
        self._push(row, image.id)

    def on_remove(self, image: "CachedImage") -> None:
        """Free the image's row (heap entries die lazily)."""
        row = self._row_of.pop(image.id)
        self._live[row] = False
        self._image_of_row[row] = None
        self._free.append(row)
        self._n_live -= 1

    def on_touch(self, image: "CachedImage") -> None:
        """Refresh ``last_used``; LRU gets a fresh heap entry."""
        row = self._row_of[image.id]
        self._last_used[row] = image.last_used
        if self._policy == "lru":
            self._push(row, image.id)

    def on_update(self, image: "CachedImage") -> None:
        """Re-mirror a merged image (mask, size, count, last_used)."""
        row = self._row_of[image.id]
        self._matrix[row] = self._mask_words(image.mask)
        self._size[row] = image.size
        self._count[row] = image.package_count
        self._last_used[row] = image.last_used
        if self._policy != "fifo":  # created_at never changes
            self._push(row, image.id)

    # -- kernels -----------------------------------------------------------

    def find_hit(self, mask: int) -> Optional["CachedImage"]:
        """Vectorised subset test + the naive scan's selection rule.

        A row serves the request iff every request word survives masking:
        ``(matrix & request) == request``.  The scan first filters on the
        single densest request word — a column pass over ``top`` int64s —
        and verifies only the surviving rows against the full request, so
        the common no-hit/one-hit case never touches the whole matrix.
        Among matching rows the selection reduces to a lexicographic
        extremum with ``_order`` as the tiebreaker, matching the naive
        scan's strict-comparison first-winner semantics exactly.
        """
        if self._n_live == 0:
            return None
        q, overflow = self._query_words(mask)
        if overflow:
            return None
        top = self._top
        nz = np.flatnonzero(q)
        if nz.size == 0:
            # Empty request: every live image is a superset.
            rows = np.flatnonzero(self._live[:top])
        else:
            word = int(nz[np.argmax(np.bitwise_count(q[nz]))])
            qw = q[word]
            col = self._matrix[:top, word]
            cand = np.flatnonzero((col & qw) == qw)
            if cand.size == 0:
                return None
            cand = cand[self._live[cand]]
            if cand.size == 0:
                return None
            if nz.size > 1:
                sub = self._matrix[np.ix_(cand, nz)]
                covered = ((sub & q[nz]) == q[nz]).all(axis=1)
                rows = cand[covered]
            else:
                rows = cand
        if rows.size == 0:
            return None
        selection = self._cache.hit_selection
        if selection == "first":
            row = rows[np.argmin(self._order[rows])]
        elif selection == "smallest":
            row = rows[np.lexsort((self._order[rows], self._size[rows]))[0]]
        else:  # "mru": max last_used, earliest order on ties
            row = rows[
                np.lexsort((self._order[rows], -self._last_used[rows]))[0]
            ]
        return self._image_of_row[int(row)]

    def scan_candidates(
        self,
        mask: int,
        n_request: int,
        alpha: float,
        pool_ids: Optional[Sequence[str]] = None,
    ) -> Tuple[List[Tuple[float, "CachedImage"]], int]:
        """Batched popcount intersection → all exact Jaccard distances.

        ``|s ∩ j|`` is one ``bitwise_count`` over the masked matrix and a
        row sum; distances come out of the same IEEE-754 expression the
        naive loop evaluates (int64 division and subtraction are
        correctly rounded in both), so the floats are bit-identical.
        Candidates are returned in pool order: ascending ``_order`` for a
        full scan (= dict order), given order for an LSH pool.
        """
        if pool_ids is not None:
            if not pool_ids:
                return [], 0
            rows = np.fromiter(
                (self._row_of[key] for key in pool_ids),
                dtype=np.int64,
                count=len(pool_ids),
            )
            sub = self._matrix[rows]
            dist = self._distances(sub, rows, n_request, mask)
            image_of = self._image_of_row
            out = [
                (float(dist[i]), image_of[int(rows[i])])
                for i in np.flatnonzero(dist < alpha)
            ]
            return out, len(pool_ids)
        if self._n_live == 0:
            return [], 0
        top = self._top
        all_rows = np.arange(top, dtype=np.int64)
        dist = self._distances(None, all_rows, n_request, mask)
        ok = self._live[:top] & (dist < alpha)
        rows = np.flatnonzero(ok)
        if rows.size > 1:
            rows = rows[np.argsort(self._order[rows])]
        image_of = self._image_of_row
        out = [(float(dist[int(r)]), image_of[int(r)]) for r in rows]
        return out, self._n_live

    def _distances(
        self,
        sub: Optional[np.ndarray],
        rows: np.ndarray,
        n_request: int,
        mask: int,
    ) -> np.ndarray:
        """Exact Jaccard distances of ``rows`` (garbage on dead rows).

        ``sub=None`` means "the first ``len(rows)`` matrix rows" and runs
        through preallocated scratch buffers (the full-scan fast path);
        an explicit ``sub`` (the LSH pool gather) allocates normally.
        """
        q, _overflow = self._query_words(mask)
        if sub is None:
            top = len(rows)
            anded = np.bitwise_and(
                self._matrix[:top], q, out=self._and_scratch[:top]
            )
            pops = np.bitwise_count(anded, out=self._pop_scratch[:top])
        else:
            pops = np.bitwise_count(sub & q)
        inter = pops.sum(axis=1, dtype=np.int64)
        union = n_request + self._count[rows] - inter
        # Dead rows carry stale counts, so union may be <= 0 there; the
        # caller filters them via _live.  union == 0 on a live row means
        # empty-vs-empty, defined as distance 0.0 (as in the naive loop).
        # The max(union, 1) denominator avoids a divide warning without
        # an errstate context (measurably slow per call); rows where it
        # kicked in are overwritten by the where().
        return np.where(
            union > 0, 1.0 - inter / np.maximum(union, 1), 0.0
        )

    # -- eviction heap -----------------------------------------------------

    def _key_of_row(self, row: int) -> int:
        if self._policy == "lru":
            return int(self._last_used[row])
        if self._policy == "fifo":
            return int(self._created[row])
        return -int(self._size[row])  # "size": largest first

    def _push(self, row: int, image_id: str) -> None:
        heapq.heappush(
            self._heap, (self._key_of_row(row), int(self._order[row]), image_id)
        )
        if (
            len(self._heap) > self._HEAP_MIN
            and len(self._heap) > self._HEAP_SLACK * max(self._n_live, 1)
        ):
            self._rebuild_heap()

    def _rebuild_heap(self) -> None:
        self._heap = [
            (self._key_of_row(row), int(self._order[row]), image_id)
            for image_id, row in self._row_of.items()
        ]
        heapq.heapify(self._heap)

    def eviction_victim(self, pinned_id: str) -> Optional["CachedImage"]:
        """Pop to the freshest minimal entry, skipping the pinned image.

        An entry is *stale* when its image is gone or its key no longer
        matches the live arrays (every key change pushed a newer entry,
        so the current key is always present).  A valid entry for the
        pinned image is set aside and pushed back afterwards — it stays
        the would-be victim for a later, unpinned eviction.
        """
        heap = self._heap
        stash = None
        victim = None
        while heap:
            key, order, image_id = heap[0]
            row = self._row_of.get(image_id)
            if (
                row is None
                or self._order[row] != order
                or self._key_of_row(row) != key
            ):
                heapq.heappop(heap)  # stale
                continue
            if image_id == pinned_id:
                stash = heapq.heappop(heap)
                continue
            victim = self._image_of_row[row]
            break
        if stash is not None:
            heapq.heappush(heap, stash)
        return victim


def make_engine(name: str):
    """Instantiate a decision engine by knob value (unbound)."""
    if name == "naive":
        return NaiveEngine()
    if name == "vectorized":
        return VectorizedEngine()
    raise ValueError(f"engine must be one of {ENGINES}, got {name!r}")
