"""Online α tuning — closing the loop the paper leaves open.

§VI ("Tuning LANDLORD"): a new deployment should *"choose a moderate α
(e.g. 0.8) to start, with finer tuning possible to meet specific
application or site requirements"*.  The operational zone is defined by
two observable gauges — cache efficiency (storage duplication) and write
amplification (merge I/O) — both of which the cache tracks continuously,
so the finer tuning can be automated:

:class:`AlphaController` adjusts the live cache's α every ``interval``
requests using windowed measurements:

- cache efficiency below its floor ⇒ too little merging ⇒ **raise** α;
- windowed write amplification above its ceiling (or container efficiency
  below its floor) ⇒ too much merging ⇒ **lower** α;
- both healthy ⇒ hold.

Changing α is safe at any time: Algorithm 1 consults it per request only.
The controller clamps to ``[alpha_min, alpha_max]`` and uses a fixed step,
so behaviour is a bounded random walk inside the operational zone rather
than an aggressive optimiser — matching the paper's philosophy that
anywhere within the zone is acceptable and only the pathological extremes
must be avoided.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.cache import CacheDecision, LandlordCache
from repro.core.spec import ImageSpec

__all__ = ["AlphaController", "AdaptationEvent"]


@dataclass(frozen=True)
class AdaptationEvent:
    """One controller decision, for audit/plotting."""

    request_index: int
    old_alpha: float
    new_alpha: float
    cache_efficiency: float
    window_write_amplification: float
    reason: str


class AlphaController:
    """Wrap a cache; adapt its α from its own gauges.

    Args:
        cache: the live cache to steer (its ``alpha`` attribute is
            mutated in place).
        interval: requests between adaptation decisions.
        step: α adjustment per decision.
        cache_efficiency_floor / write_amplification_ceiling /
        container_efficiency_floor: the operational-zone limits (§VI).
        alpha_min / alpha_max: hard clamp for the walk.
    """

    def __init__(
        self,
        cache: LandlordCache,
        interval: int = 50,
        step: float = 0.05,
        cache_efficiency_floor: float = 0.3,
        write_amplification_ceiling: float = 2.0,
        container_efficiency_floor: float = 0.2,
        alpha_min: float = 0.4,
        alpha_max: float = 0.95,
    ):
        if interval < 1:
            raise ValueError("interval must be positive")
        if step <= 0:
            raise ValueError("step must be positive")
        if not 0.0 <= alpha_min <= alpha_max <= 1.0:
            raise ValueError("need 0 <= alpha_min <= alpha_max <= 1")
        self.cache = cache
        self.interval = interval
        self.step = step
        self.cache_efficiency_floor = cache_efficiency_floor
        self.write_amplification_ceiling = write_amplification_ceiling
        self.container_efficiency_floor = container_efficiency_floor
        self.alpha_min = alpha_min
        self.alpha_max = alpha_max
        self.events: List[AdaptationEvent] = []
        self._since_adapt = 0
        self._window_written = 0
        self._window_requested = 0
        self._window_used = 0
        # Start inside the clamp even if the cache was configured outside.
        cache.alpha = min(max(cache.alpha, alpha_min), alpha_max)

    @property
    def alpha(self) -> float:
        return self.cache.alpha

    def request(self, spec: "ImageSpec | frozenset") -> CacheDecision:
        """Serve a request through the cache, adapting on schedule."""
        before_written = self.cache.stats.bytes_written
        decision = self.cache.request(spec)
        self._window_written += self.cache.stats.bytes_written - before_written
        self._window_requested += decision.requested_bytes
        self._window_used += decision.image.size
        self._since_adapt += 1
        if self._since_adapt >= self.interval:
            self._adapt()
        return decision

    def _window_metrics(self) -> Tuple[float, float]:
        wamp = (
            self._window_written / self._window_requested
            if self._window_requested
            else 0.0
        )
        cont = (
            self._window_requested / self._window_used
            if self._window_used
            else 1.0
        )
        return wamp, cont

    def _adapt(self) -> None:
        wamp, cont = self._window_metrics()
        cache_eff = self.cache.cache_efficiency
        old = self.cache.alpha
        if (
            wamp > self.write_amplification_ceiling
            or cont < self.container_efficiency_floor
        ):
            new = max(self.alpha_min, old - self.step)
            reason = (
                "write amplification over ceiling"
                if wamp > self.write_amplification_ceiling
                else "container efficiency under floor"
            )
        elif cache_eff < self.cache_efficiency_floor:
            new = min(self.alpha_max, old + self.step)
            reason = "cache efficiency under floor"
        else:
            new = old
            reason = "within operational zone"
        if new != old:
            self.cache.alpha = new
        self.events.append(
            AdaptationEvent(
                request_index=self.cache.stats.requests,
                old_alpha=old,
                new_alpha=new,
                cache_efficiency=cache_eff,
                window_write_amplification=wamp,
                reason=reason,
            )
        )
        self._since_adapt = 0
        self._window_written = 0
        self._window_requested = 0
        self._window_used = 0

    def alpha_trace(self) -> List[Tuple[int, float]]:
        """(request_index, alpha) pairs over the controller's lifetime."""
        return [(e.request_index, e.new_alpha) for e in self.events]
