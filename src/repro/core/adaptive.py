"""Online α tuning — closing the loop the paper leaves open.

§VI ("Tuning LANDLORD"): a new deployment should *"choose a moderate α
(e.g. 0.8) to start, with finer tuning possible to meet specific
application or site requirements"*.  The operational zone is defined by
two observable gauges — cache efficiency (storage duplication) and write
amplification (merge I/O) — both of which the cache tracks continuously,
so the finer tuning can be automated:

:class:`AlphaController` adjusts the live cache's α every ``interval``
requests using windowed measurements:

- cache efficiency below its floor ⇒ too little merging ⇒ **raise** α;
- windowed write amplification above its ceiling (or container efficiency
  below its floor) ⇒ too much merging ⇒ **lower** α;
- both healthy ⇒ hold.

Changing α is safe at any time: Algorithm 1 consults it per request only.
The controller clamps to ``[alpha_min, alpha_max]`` and uses a fixed step,
so behaviour is a bounded random walk inside the operational zone rather
than an aggressive optimiser — matching the paper's philosophy that
anywhere within the zone is acceptable and only the pathological extremes
must be avoided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.cache import CacheDecision, LandlordCache
from repro.core.spec import ImageSpec

__all__ = [
    "AlphaController",
    "AdaptationEvent",
    "AimdController",
    "AimdEvent",
    "batch_governor",
    "service_governor",
]


@dataclass(frozen=True)
class AimdEvent:
    """One AIMD step, for audit/plotting."""

    step: int
    signal: float
    old_size: int
    new_size: int
    action: str  # "increase" | "decrease" | "hold"


class AimdController:
    """Additive-increase / multiplicative-decrease window governor.

    The controller owns one integer ``size`` (a batch window, a daemon
    ``max_batch`` cap, …) and adjusts it from a normalised congestion
    signal in ``[0, 1]``:

    - ``signal <= low_watermark``: the window is cheap — grow additively
      by ``increase`` (probing for more amortisation);
    - ``signal >= high_watermark``: repair/latency dominates — shrink
      multiplicatively by ``decrease`` (backing off fast);
    - otherwise hold.

    The step function is pure state: it never reads a clock or RNG, so
    it is deterministic under frozen-clock tests and replays — the same
    signal sequence always yields the same size sequence.  Both the
    cache batching governor (signal = per-window dirty rate) and the
    daemon batcher (signal = window latency vs the ack budget) share
    this core.
    """

    def __init__(
        self,
        initial: int = 256,
        min_size: int = 32,
        max_size: int = 4096,
        increase: int = 64,
        decrease: float = 0.5,
        low_watermark: float = 0.05,
        high_watermark: float = 0.25,
        record_events: bool = True,
    ):
        if min_size < 1:
            raise ValueError("min_size must be positive")
        if max_size < min_size:
            raise ValueError("need min_size <= max_size")
        if increase < 1:
            raise ValueError("increase must be positive")
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ValueError("need 0 <= low_watermark < high_watermark <= 1")
        self.min_size = int(min_size)
        self.max_size = int(max_size)
        self.increase = int(increase)
        self.decrease = float(decrease)
        self.low_watermark = float(low_watermark)
        self.high_watermark = float(high_watermark)
        self.size = min(max(int(initial), self.min_size), self.max_size)
        self.steps = 0
        self.increases = 0
        self.decreases = 0
        self.holds = 0
        self.last_signal = 0.0
        self.events: Optional[List[AimdEvent]] = [] if record_events else None

    @property
    def hold_signal(self) -> float:
        """A signal value that neither grows nor shrinks the window."""
        return (self.low_watermark + self.high_watermark) / 2.0

    def observe(self, signal: float) -> int:
        """Fold one window's signal into the controller; return new size."""
        signal = float(signal)
        if math.isnan(signal):
            signal = 0.0
        signal = min(max(signal, 0.0), 1.0)
        old = self.size
        if signal >= self.high_watermark:
            new = max(self.min_size, int(old * self.decrease))
            action = "decrease"
            self.decreases += 1
        elif signal <= self.low_watermark:
            new = min(self.max_size, old + self.increase)
            action = "increase"
            self.increases += 1
        else:
            new = old
            action = "hold"
            self.holds += 1
        self.size = new
        self.steps += 1
        self.last_signal = signal
        if self.events is not None:
            self.events.append(
                AimdEvent(
                    step=self.steps,
                    signal=signal,
                    old_size=old,
                    new_size=new,
                    action=action,
                )
            )
        return new

    def status(self) -> dict:
        """Snapshot for /statusz and ``top``."""
        return {
            "size": self.size,
            "min_size": self.min_size,
            "max_size": self.max_size,
            "steps": self.steps,
            "increases": self.increases,
            "decreases": self.decreases,
            "holds": self.holds,
            "last_signal": self.last_signal,
        }


def batch_governor(initial: int = 256) -> AimdController:
    """Governor for ``submit_batch(batch_size="auto")``.

    Signal is the engine's per-window dirty rate: predictions stay valid
    while the window mutates few images, so a low rate lets the window
    grow (more lanes amortise each grouped popcount pass); a high rate
    means dirty-set repair and re-prediction dominate, so shrink hard.
    """
    return AimdController(
        initial=initial,
        min_size=32,
        max_size=4096,
        increase=64,
        decrease=0.5,
        low_watermark=0.05,
        high_watermark=0.25,
    )


def service_governor(initial: int = 256) -> AimdController:
    """Governor for the daemon batcher's ``max_batch`` cap.

    Signal is window wall time (fsync + apply) over the ack budget:
    windows that clear well under budget while a backlog waits let the
    cap grow; windows that blow the budget shrink it multiplicatively so
    enqueued clients keep their ack latency.
    """
    return AimdController(
        initial=initial,
        min_size=16,
        max_size=8192,
        increase=32,
        decrease=0.5,
        low_watermark=0.5,
        high_watermark=0.95,
    )


@dataclass(frozen=True)
class AdaptationEvent:
    """One controller decision, for audit/plotting."""

    request_index: int
    old_alpha: float
    new_alpha: float
    cache_efficiency: float
    window_write_amplification: float
    reason: str


class AlphaController:
    """Wrap a cache; adapt its α from its own gauges.

    Args:
        cache: the live cache to steer (its ``alpha`` attribute is
            mutated in place).
        interval: requests between adaptation decisions.
        step: α adjustment per decision.
        cache_efficiency_floor / write_amplification_ceiling /
        container_efficiency_floor: the operational-zone limits (§VI).
        alpha_min / alpha_max: hard clamp for the walk.
    """

    def __init__(
        self,
        cache: LandlordCache,
        interval: int = 50,
        step: float = 0.05,
        cache_efficiency_floor: float = 0.3,
        write_amplification_ceiling: float = 2.0,
        container_efficiency_floor: float = 0.2,
        alpha_min: float = 0.4,
        alpha_max: float = 0.95,
    ):
        if interval < 1:
            raise ValueError("interval must be positive")
        if step <= 0:
            raise ValueError("step must be positive")
        if not 0.0 <= alpha_min <= alpha_max <= 1.0:
            raise ValueError("need 0 <= alpha_min <= alpha_max <= 1")
        self.cache = cache
        self.interval = interval
        self.step = step
        self.cache_efficiency_floor = cache_efficiency_floor
        self.write_amplification_ceiling = write_amplification_ceiling
        self.container_efficiency_floor = container_efficiency_floor
        self.alpha_min = alpha_min
        self.alpha_max = alpha_max
        self.events: List[AdaptationEvent] = []
        self._since_adapt = 0
        self._window_written = 0
        self._window_requested = 0
        self._window_used = 0
        # Start inside the clamp even if the cache was configured outside.
        cache.alpha = min(max(cache.alpha, alpha_min), alpha_max)

    @property
    def alpha(self) -> float:
        return self.cache.alpha

    def request(self, spec: "ImageSpec | frozenset") -> CacheDecision:
        """Serve a request through the cache, adapting on schedule."""
        before_written = self.cache.stats.bytes_written
        decision = self.cache.request(spec)
        self._window_written += self.cache.stats.bytes_written - before_written
        self._window_requested += decision.requested_bytes
        self._window_used += decision.image.size
        self._since_adapt += 1
        if self._since_adapt >= self.interval:
            self._adapt()
        return decision

    def _window_metrics(self) -> Tuple[float, float]:
        wamp = (
            self._window_written / self._window_requested
            if self._window_requested
            else 0.0
        )
        cont = (
            self._window_requested / self._window_used
            if self._window_used
            else 1.0
        )
        return wamp, cont

    def _adapt(self) -> None:
        wamp, cont = self._window_metrics()
        cache_eff = self.cache.cache_efficiency
        old = self.cache.alpha
        if (
            wamp > self.write_amplification_ceiling
            or cont < self.container_efficiency_floor
        ):
            new = max(self.alpha_min, old - self.step)
            reason = (
                "write amplification over ceiling"
                if wamp > self.write_amplification_ceiling
                else "container efficiency under floor"
            )
        elif cache_eff < self.cache_efficiency_floor:
            new = min(self.alpha_max, old + self.step)
            reason = "cache efficiency under floor"
        else:
            new = old
            reason = "within operational zone"
        if new != old:
            self.cache.alpha = new
        self.events.append(
            AdaptationEvent(
                request_index=self.cache.stats.requests,
                old_alpha=old,
                new_alpha=new,
                cache_efficiency=cache_eff,
                window_write_amplification=wamp,
                reason=reason,
            )
        )
        self._since_adapt = 0
        self._window_written = 0
        self._window_requested = 0
        self._window_used = 0

    def alpha_trace(self) -> List[Tuple[int, float]]:
        """(request_index, alpha) pairs over the controller's lifetime."""
        return [(e.request_index, e.new_alpha) for e in self.events]
