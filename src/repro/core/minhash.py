"""MinHash: constant-time Jaccard approximation (Broder 1997).

The paper (§V) notes that a constant-time approximation of the Jaccard
metric is *"important in practice due to the sizes of the data involved"* —
metadata listings for full-repository CVMFS images run to gigabytes, so an
exact set intersection per cached image can dominate request latency.

Implementation notes:

- Element hashing uses BLAKE2b (8-byte digest), stable across processes —
  signatures computed in one run compare correctly against signatures from
  another (Python's builtin ``hash`` is salted per-process and unusable).
- The "permutations" are multiply-shift universal hashes over 64-bit
  arithmetic: ``h_i(x) = a_i * x + b_i (mod 2^64)`` with odd ``a_i``.
  The estimator is the fraction of matching signature slots.
- Signatures of merged images come for free: the signature of A ∪ B is the
  element-wise minimum of the signatures, so the cache never rehashes a
  merged spec (property-tested).

:class:`MinHashLSH` adds a banding index so the cache can fetch *candidate*
near neighbours in ~O(1) and verify only those exactly — the ablation in
``benchmarks/test_ablations.py`` measures the accuracy/speed trade-off.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

__all__ = ["element_hash", "MinHashSignature", "MinHashLSH"]

_U64 = np.uint64
_FULL = np.iinfo(np.uint64).max


def element_hash(element: str) -> int:
    """Stable 64-bit hash of a package id (BLAKE2b, process-independent)."""
    digest = hashlib.blake2b(element.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _perm_params(num_perm: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(np.random.SeedSequence([seed & 0xFFFFFFFF, 0x5F3C]))
    a = rng.integers(1, _FULL, size=num_perm, dtype=np.uint64) | _U64(1)  # odd
    b = rng.integers(0, _FULL, size=num_perm, dtype=np.uint64)
    return a, b


class MinHashSignature:
    """A fixed-width MinHash signature of a package set."""

    __slots__ = ("values", "num_perm", "seed")

    def __init__(self, values: np.ndarray, num_perm: int, seed: int):
        self.values = values
        self.num_perm = num_perm
        self.seed = seed

    @classmethod
    def of(
        cls,
        elements: Iterable[str],
        num_perm: int = 128,
        seed: int = 1,
    ) -> "MinHashSignature":
        """Compute the signature of a set of package ids.

        The empty set gets the all-max signature, which estimates similarity
        1.0 against another empty set and ~0 against anything populated —
        consistent with the exact-Jaccard conventions in
        :mod:`repro.core.similarity`.
        """
        if num_perm <= 0:
            raise ValueError("num_perm must be positive")
        hashes = np.fromiter(
            (element_hash(e) for e in elements), dtype=np.uint64
        )
        if hashes.size == 0:
            values = np.full(num_perm, _FULL, dtype=np.uint64)
            return cls(values, num_perm, seed)
        a, b = _perm_params(num_perm, seed)
        with np.errstate(over="ignore"):
            # (num_perm, n) table of permuted hashes; min over elements.
            table = a[:, None] * hashes[None, :] + b[:, None]
        values = table.min(axis=1)
        return cls(values, num_perm, seed)

    def _check_compatible(self, other: "MinHashSignature") -> None:
        if self.num_perm != other.num_perm or self.seed != other.seed:
            raise ValueError(
                "incompatible MinHash signatures: "
                f"({self.num_perm},{self.seed}) vs ({other.num_perm},{other.seed})"
            )

    def estimate_jaccard(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity: fraction of agreeing slots."""
        self._check_compatible(other)
        return float(np.count_nonzero(self.values == other.values) / self.num_perm)

    def estimate_distance(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard distance (1 − estimated similarity)."""
        return 1.0 - self.estimate_jaccard(other)

    def merge(self, other: "MinHashSignature") -> "MinHashSignature":
        """Signature of the union: element-wise minimum."""
        self._check_compatible(other)
        return MinHashSignature(
            np.minimum(self.values, other.values), self.num_perm, self.seed
        )

    def copy(self) -> "MinHashSignature":
        """Independent copy (values array not shared)."""
        return MinHashSignature(self.values.copy(), self.num_perm, self.seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MinHashSignature):
            return NotImplemented
        return (
            self.num_perm == other.num_perm
            and self.seed == other.seed
            and bool(np.array_equal(self.values, other.values))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MinHashSignature(num_perm={self.num_perm})"


class MinHashLSH:
    """Banded locality-sensitive index over MinHash signatures.

    Signatures are cut into ``bands`` bands of ``rows_per_band`` slots; two
    sets collide in the index if any band matches exactly.  With similarity
    ``s``, collision probability is ``1 − (1 − s^r)^b`` — choose the band
    shape so the S-curve's threshold ``(1/b)^(1/r)`` sits near the Jaccard
    *similarity* corresponding to the cache's α (i.e. 1 − α).
    """

    def __init__(self, num_perm: int = 128, bands: int = 32):
        if num_perm % bands != 0:
            raise ValueError(f"bands ({bands}) must divide num_perm ({num_perm})")
        self.num_perm = num_perm
        self.bands = bands
        self.rows_per_band = num_perm // bands
        self._tables: List[Dict[bytes, Set[str]]] = [dict() for _ in range(bands)]
        self._keys: Dict[str, List[bytes]] = {}

    @property
    def threshold(self) -> float:
        """Approximate similarity where collision probability crosses 1/2."""
        return (1.0 / self.bands) ** (1.0 / self.rows_per_band)

    def _band_keys(self, signature: MinHashSignature) -> List[bytes]:
        if signature.num_perm != self.num_perm:
            raise ValueError("signature width does not match index")
        values = signature.values
        r = self.rows_per_band
        return [values[i * r : (i + 1) * r].tobytes() for i in range(self.bands)]

    def insert(self, key: str, signature: MinHashSignature) -> None:
        """Index ``signature`` under ``key``; re-inserting a key replaces it."""
        if key in self._keys:
            self.remove(key)
        band_keys = self._band_keys(signature)
        for table, bkey in zip(self._tables, band_keys):
            table.setdefault(bkey, set()).add(key)
        self._keys[key] = band_keys

    def update(self, key: str, signature: MinHashSignature) -> None:
        """Re-index ``key`` under a new signature, touching only the bands
        whose key actually changed.

        Behaviourally identical to ``insert`` (which fully removes then
        re-adds), but a merged image's signature is the element-wise
        minimum of the old one, so most bands are unchanged and the
        rewrite cost stays proportional to the drift — the cache calls
        this on every merge.  Band membership stays exactly one bucket
        entry per band per live key, so the index never accumulates
        stale buckets over long merge chains.
        """
        old_keys = self._keys.get(key)
        if old_keys is None:
            self.insert(key, signature)
            return
        new_keys = self._band_keys(signature)
        for table, okey, nkey in zip(self._tables, old_keys, new_keys):
            if okey == nkey:
                continue
            bucket = table.get(okey)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del table[okey]
            table.setdefault(nkey, set()).add(key)
        self._keys[key] = new_keys

    def total_entries(self) -> int:
        """Total bucket membership across all bands (``bands × len(self)``
        when the index is consistent) — an invariant probe for tests."""
        return sum(
            len(bucket) for table in self._tables for bucket in table.values()
        )

    def remove(self, key: str) -> None:
        """Drop a key from the index (no-op if absent)."""
        band_keys = self._keys.pop(key, None)
        if band_keys is None:
            return
        for table, bkey in zip(self._tables, band_keys):
            bucket = table.get(bkey)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del table[bkey]

    def query(self, signature: MinHashSignature) -> Set[str]:
        """Keys colliding with ``signature`` in at least one band."""
        out: Set[str] = set()
        for table, bkey in zip(self._tables, self._band_keys(signature)):
            bucket = table.get(bkey)
            if bucket:
                out |= bucket
        return out

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: str) -> bool:
        return key in self._keys
