"""Write-ahead event journal for the durable LANDLORD cache.

Snapshots (:mod:`repro.core.persistence`) are atomic but coarse: a
wrapper that dies after serving a request and before rewriting the
snapshot would silently lose that request.  This module closes the gap
with the classic WAL protocol:

1. every mutating cache operation is first appended to a JSON-lines
   journal — one fsynced line per operation, carrying a CRC over its
   canonical encoding;
2. the operation is then applied to the in-memory cache;
3. every ``snapshot_every`` operations the full snapshot is rewritten
   (recording the journal sequence number it covers) and the journal is
   compacted down to the entries the snapshot does not yet include.

Recovery (:meth:`JournaledState.load` / ``repro-landlord recover``)
loads the snapshot and replays the journal tail — entries with a
sequence number greater than the snapshot's ``journal_seq`` — through
the deterministic cache, arriving at the exact pre-crash state.  A torn
final line (a crash mid-append) is detected by its CRC and discarded;
corruption *before* intact entries is a hard :class:`JournalError`, not
something to paper over.

The cache is deterministic given its restored state (including, for
``candidate_order="random"``, the RNG state the v2 snapshot carries), so
replaying the journalled operations reproduces the original decisions
bit-for-bit — the property :mod:`repro.testing` hammers with crash
injection at every persistence call site.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.core.cache import LandlordCache
from repro.core.persistence import StateBundle, load_bundle, save_state
from repro.testing.faults import checkpoint

__all__ = [
    "Journal",
    "JournalEntry",
    "JournalError",
    "JournaledState",
    "apply_entries",
    "apply_entry",
    "recover_state",
    "replay",
]

PathLike = Union[str, Path]

_CANON = {"sort_keys": True, "separators": (",", ":")}


class JournalError(ValueError):
    """Raised for corrupt, out-of-order, or gapped journals."""


@dataclass(frozen=True)
class JournalEntry:
    """One journalled cache operation.

    Attributes:
        seq: 1-based, strictly increasing sequence number.
        op: operation name — ``"request"``, ``"adopt"``,
            ``"evict_idle"``, or ``"clear"``.
        data: the operation's arguments (e.g. the sorted package list of
            a request), exactly as needed to re-apply it.
    """

    seq: int
    op: str
    data: dict


def _crc(body: dict) -> int:
    return zlib.crc32(json.dumps(body, **_CANON).encode("utf-8"))


def _encode(entry: JournalEntry) -> str:
    body = {"seq": entry.seq, "op": entry.op, "data": entry.data}
    return json.dumps({**body, "crc": _crc(body)}, **_CANON) + "\n"


def _decode(line: str) -> JournalEntry:
    record = json.loads(line)
    crc = record.pop("crc")
    if _crc(record) != crc:
        raise JournalError("journal entry fails its CRC")
    seq = record["seq"]
    if not isinstance(seq, int) or seq < 1:
        raise JournalError(f"invalid journal sequence number {seq!r}")
    return JournalEntry(seq, record["op"], record.get("data", {}))


def _encode_marker(compacted_to: int) -> str:
    body = {"compacted_to": compacted_to}
    return json.dumps({**body, "crc": _crc(body)}, **_CANON) + "\n"


class _JournalInstruments:
    """Pre-bound ``journal_*`` metric children (see DESIGN.md schema)."""

    __slots__ = (
        "appends", "compactions", "entries_dropped",
        "append_s", "fsync_s", "compact_s",
    )

    def __init__(self, registry) -> None:
        self.appends = registry.counter(
            "journal_appends_total",
            "Operations durably appended to the write-ahead journal.",
        ).labels()
        self.compactions = registry.counter(
            "journal_compactions_total",
            "Journal compactions performed.",
        ).labels()
        self.entries_dropped = registry.counter(
            "journal_entries_dropped_total",
            "Entries removed by compaction (already snapshotted).",
        ).labels()
        self.append_s = registry.histogram(
            "journal_append_seconds",
            "Wall-clock seconds per durable append (write+flush+fsync).",
        ).labels()
        self.fsync_s = registry.histogram(
            "journal_fsync_seconds",
            "Wall-clock seconds in the append's fsync alone.",
        ).labels()
        self.compact_s = registry.histogram(
            "journal_compact_seconds",
            "Wall-clock seconds per journal compaction.",
        ).labels()


class Journal:
    """An append-only, fsynced JSON-lines journal file.

    Appends are durable before they return (write, flush, fsync); a
    crash can therefore lose at most the entry being written, and a torn
    trailing line is recognised by its CRC and ignored on read.

    Compaction replaces the dropped prefix with a marker line recording
    the highest sequence number ever compacted away, so numbering stays
    strictly monotonic across process restarts even when the journal is
    emptied — without the marker, a fresh process would restart at 1 and
    its entries would be silently skipped by replay (they'd fall at or
    below the snapshot's ``journal_seq``).

    Pass ``metrics`` (a :class:`repro.obs.MetricsRegistry`) to record
    append/fsync/compaction latency histograms and operation counters
    under the ``journal_*`` names documented in DESIGN.md.
    """

    def __init__(self, path: PathLike, metrics=None):
        self.path = Path(path)
        self._fh = None
        self._next_seq: Optional[int] = None
        self._ins = None
        if metrics is not None:
            self.enable_metrics(metrics)

    def enable_metrics(self, registry) -> None:
        """Record journal I/O metrics into ``registry`` from here on."""
        self._ins = _JournalInstruments(registry)

    @property
    def last_seq(self) -> int:
        """Highest sequence number the journal accounts for (0 when
        fresh) — the newest intact entry, or the compaction marker when
        every entry has been compacted away."""
        floor, entries = self._read()
        return entries[-1].seq if entries else floor

    def entries(self) -> List[JournalEntry]:
        """All intact entries, oldest first.

        A torn final line (crash mid-append) is silently dropped;
        anything unparsable *followed by* intact entries means the file
        was damaged at rest and raises :class:`JournalError`, as does a
        non-increasing sequence.
        """
        return self._read()[1]

    def _read(self) -> Tuple[int, List[JournalEntry]]:
        """Parse the file into ``(compaction floor, intact entries)``."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return 0, []
        lines = [line for line in text.split("\n") if line]
        floor = 0
        start = 0
        if lines:
            try:
                record = json.loads(lines[0])
            except ValueError:
                record = None
            if isinstance(record, dict) and "compacted_to" in record:
                crc = record.pop("crc", None)
                upto = record.get("compacted_to")
                if _crc(record) != crc or not isinstance(upto, int):
                    raise JournalError(
                        f"corrupt compaction marker in {self.path}"
                    )
                floor = upto
                start = 1
        out: List[JournalEntry] = []
        for position, line in enumerate(lines[start:], start=start):
            try:
                entry = _decode(line)
            except (ValueError, KeyError) as exc:
                for later in lines[position + 1:]:
                    try:
                        _decode(later)
                    except (ValueError, KeyError):
                        continue
                    raise JournalError(
                        f"corrupt journal entry mid-file in {self.path} "
                        f"(line {position + 1}): {exc}"
                    ) from exc
                break  # torn tail from a crashed append — discard
            newest = out[-1].seq if out else floor
            if entry.seq <= newest:
                raise JournalError(
                    f"journal {self.path} sequence regressed at "
                    f"line {position + 1} ({newest} -> {entry.seq})"
                )
            out.append(entry)
        return floor, out

    def append(self, op: str, **data: object) -> JournalEntry:
        """Durably append one operation; returns the written entry.

        The entry has reached stable storage (fsync) when this returns —
        the write-ahead guarantee the recovery protocol builds on.
        """
        return self.append_many([(op, dict(data))])[0]

    def append_many(
        self, ops: Sequence[Tuple[str, dict]]
    ) -> List[JournalEntry]:
        """Durably append a batch of operations with one fsync (group
        commit).

        All lines are written and flushed together, then fsynced once —
        the daemon's batched submission path pays one disk sync per
        request *window* instead of per request.  Every entry has reached
        stable storage when this returns.  A crash mid-write leaves an
        intact *prefix* of the batch (appends are sequential, and the
        torn final line is healed like any other), so the journal stays
        gap-free; entries beyond the tear were never reported durable.
        Returns the written entries in order.
        """
        if not ops:
            return []
        if self._next_seq is None:
            self._next_seq = self.last_seq + 1
        entries = [
            JournalEntry(self._next_seq + offset, op, dict(data))
            for offset, (op, data) in enumerate(ops)
        ]
        ins = self._ins
        t_append = perf_counter() if ins is not None else 0.0
        checkpoint("journal:append")
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._heal()
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.seek(0, os.SEEK_END)
        start = self._fh.tell()
        self._fh.write("".join(_encode(entry) for entry in entries))
        self._fh.flush()
        checkpoint("journal:torn", fh=self._fh, start=start)
        t_fsync = perf_counter() if ins is not None else 0.0
        os.fsync(self._fh.fileno())
        checkpoint("journal:synced")
        if ins is not None:
            end = perf_counter()
            ins.fsync_s.observe(end - t_fsync)
            ins.append_s.observe(end - t_append)
            ins.appends.inc(len(entries))
        self._next_seq += len(entries)
        return entries

    def compact(self, upto_seq: int) -> int:
        """Drop every entry with ``seq <= upto_seq`` (already snapshotted).

        Crash-safe: the surviving tail is written to a temp file, fsynced
        and renamed over the journal, so a crash leaves either the old or
        the compacted journal — both of which recovery handles, because
        replay filters by the snapshot's ``journal_seq`` anyway.  Returns
        the number of entries dropped.
        """
        floor, entries = self._read()
        newest = entries[-1].seq if entries else floor
        kept = [entry for entry in entries if entry.seq > upto_seq]
        new_floor = max(floor, min(upto_seq, newest))
        if (len(kept) == len(entries) and new_floor == floor
                and self.path.exists()):
            return 0
        ins = self._ins
        t_compact = perf_counter() if ins is not None else 0.0
        checkpoint("compact:write")
        tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_encode_marker(new_floor))
            for entry in kept:
                fh.write(_encode(entry))
            fh.flush()
            checkpoint("compact:torn", fh=fh, start=0)
            os.fsync(fh.fileno())
        tmp.replace(self.path)
        checkpoint("compact:renamed")
        self._fsync_dir()
        self.close()  # the old append handle points at the replaced inode
        dropped = len(entries) - len(kept)
        if ins is not None:
            ins.compact_s.observe(perf_counter() - t_compact)
            ins.compactions.inc()
            ins.entries_dropped.inc(dropped)
        return dropped

    def reset(self) -> None:
        """Empty the journal and restart numbering at 1 (fresh state).

        Unlike :meth:`compact`, no marker is kept — the caller is
        declaring the old history void (a brand-new snapshot with
        ``journal_seq=0`` covers it), so numbering genuinely restarts.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.path)
        self._fsync_dir()
        self.close()
        self._next_seq = 1

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next append)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _heal(self) -> None:
        """Truncate a torn trailing line before appending after it.

        A crash mid-append can leave the file ending in a partial record
        with no newline; appending straight after it would glue the new
        (fsynced, reported-durable) entry onto the garbage fragment,
        producing one unparsable line that swallows both.  Cutting back
        to the last complete line first keeps every later append intact.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        if not raw or raw.endswith(b"\n"):
            return
        cut = raw.rfind(b"\n") + 1
        with open(self.path, "rb+") as fh:
            fh.truncate(cut)
            os.fsync(fh.fileno())

    def _fsync_dir(self) -> None:
        fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def apply_entry(cache: LandlordCache, entry: JournalEntry) -> object:
    """Apply one journalled operation to a live cache.

    Returns whatever the underlying cache method returns (a
    :class:`~repro.core.cache.CacheDecision` for requests, the evicted id
    list for ``evict_idle``, …).
    """
    if entry.op == "request":
        return cache.request(frozenset(entry.data["packages"]))
    if entry.op == "adopt":
        return cache.adopt(frozenset(entry.data["packages"]))
    if entry.op == "evict_idle":
        return cache.evict_idle(int(entry.data["max_idle_requests"]))
    if entry.op == "clear":
        cache.clear()
        return None
    raise JournalError(f"unknown journal operation {entry.op!r}")


def apply_entries(
    cache: LandlordCache,
    entries: Sequence[JournalEntry],
    on_result: Optional[Callable[[JournalEntry, object], None]] = None,
) -> List[object]:
    """Apply a batch of journalled operations, coalescing request runs.

    Adjacent ``"request"`` entries are funnelled through one
    :meth:`~repro.core.cache.LandlordCache.submit_batch` call — a single
    vectorized-engine prediction window instead of per-request kernel
    dispatch — which is bit-identical to applying them one by one (the
    property ``submit_batch`` guarantees and the differential suite
    enforces).  Non-request operations (``adopt``, ``evict_idle``,
    ``clear``) break the run and go through :func:`apply_entry`
    individually.  Returns the per-entry results in order; ``on_result``
    fires after each entry's result is known, in entry order.
    """
    results: List[object] = []
    i = 0
    while i < len(entries):
        if entries[i].op == "request":
            j = i
            while j < len(entries) and entries[j].op == "request":
                j += 1
            run = entries[i:j]
            decisions = cache.submit_batch(
                [frozenset(entry.data["packages"]) for entry in run]
            )
            for entry, decision in zip(run, decisions):
                if on_result is not None:
                    on_result(entry, decision)
                results.append(decision)
            i = j
        else:
            result = apply_entry(cache, entries[i])
            if on_result is not None:
                on_result(entries[i], result)
            results.append(result)
            i += 1
    return results


def replay(
    cache: LandlordCache,
    entries: Sequence[JournalEntry],
    after_seq: int = 0,
    on_result: Optional[Callable[[JournalEntry, object], None]] = None,
) -> List[Tuple[JournalEntry, object]]:
    """Re-apply the journal tail (entries with ``seq > after_seq``).

    The tail must be gap-free starting at ``after_seq + 1`` — a gap means
    operations were lost between the snapshot and the surviving journal,
    which no replay can repair (:class:`JournalError`).  Returns
    ``(entry, result)`` pairs for the replayed operations.

    ``on_result`` fires immediately after each entry is applied — use it
    to inspect a result *at decision time*; a returned
    :class:`~repro.core.cache.CacheDecision` holds a live image object
    that later entries in the same tail may mutate (e.g. grow by merge).
    """
    expected = after_seq
    out: List[Tuple[JournalEntry, object]] = []
    for entry in entries:
        if entry.seq <= after_seq:
            continue
        expected += 1
        if entry.seq != expected:
            raise JournalError(
                f"journal gap: expected entry {expected}, found {entry.seq} "
                "— operations between snapshot and journal were lost"
            )
        result = apply_entry(cache, entry)
        if on_result is not None:
            on_result(entry, result)
        out.append((entry, result))
    return out


class JournaledState:
    """A snapshot file plus its write-ahead journal — the durable store
    behind ``repro-landlord submit``.

    Args:
        state_path: the snapshot file.
        journal_path: the journal file (default: ``<state_path>.journal``).
        snapshot_every: rewrite the snapshot every N journalled
            operations (1 = after each, the safest and the default; a
            larger N amortises snapshot I/O across submissions and leans
            on journal replay after a crash).
        use_journal: disable write-ahead logging entirely (the snapshot
            is then rewritten after every operation, as in format v1
            days — the crash window between apply and snapshot returns).
        metrics: optional :class:`repro.obs.MetricsRegistry` forwarded
            to the journal (``journal_*`` latency/operation metrics).
    """

    def __init__(
        self,
        state_path: PathLike,
        journal_path: Optional[PathLike] = None,
        snapshot_every: int = 1,
        use_journal: bool = True,
        metrics=None,
    ):
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.state_path = Path(state_path)
        self.snapshot_every = snapshot_every
        self.journal: Optional[Journal] = None
        if use_journal:
            journal_path = journal_path or self.state_path.with_name(
                self.state_path.name + ".journal"
            )
            self.journal = Journal(journal_path, metrics=metrics)

    def load(
        self,
        package_size: Callable[[str], int],
        migrate_v1: bool = False,
        on_replay: Optional[Callable[[JournalEntry, object], None]] = None,
        **cache_kwargs: object,
    ) -> Tuple[LandlordCache, dict, List[Tuple[JournalEntry, object]]]:
        """Recover the durable state: load the snapshot, replay the tail.

        Returns ``(cache, metadata, replayed)`` where ``replayed`` lists
        the journal entries (with their results) that were applied on top
        of the snapshot — empty when the last run shut down cleanly.
        ``on_replay`` is forwarded to :func:`replay` for callers that
        need each result at its decision time.  Raises
        :class:`~repro.core.persistence.StateNotFound` when no snapshot
        exists yet.
        """
        bundle: StateBundle = load_bundle(
            self.state_path, package_size, migrate_v1=migrate_v1,
            **cache_kwargs,
        )
        replayed: List[Tuple[JournalEntry, object]] = []
        if self.journal is not None:
            replayed = replay(
                bundle.cache, self.journal.entries(),
                after_seq=bundle.journal_seq, on_result=on_replay,
            )
        return bundle.cache, bundle.metadata, replayed

    def initialise(
        self, cache: LandlordCache, metadata: Optional[dict] = None
    ) -> None:
        """First-time setup: persist a fresh cache with an empty journal."""
        if self.journal is not None:
            self.journal.reset()
        save_state(self.state_path, cache, metadata, journal_seq=0)

    def apply(
        self,
        cache: LandlordCache,
        metadata: Optional[dict],
        op: str,
        on_result: Optional[Callable[[JournalEntry, object], None]] = None,
        **data: object,
    ) -> object:
        """Journal one operation, apply it, snapshot + compact when due.

        The write-ahead append is durable before the cache mutates, so a
        crash at any later instant replays the operation from the
        journal; a crash before the append loses the operation entirely
        (the wrapper is simply re-invoked).  Returns the operation's
        result (see :func:`apply_entry`).

        ``on_result`` fires as soon as the operation has been applied,
        *before* the periodic snapshot/compaction housekeeping — deliver
        the result to the caller there, so a crash during housekeeping
        cannot strand a decision that the snapshot already covers (and
        that replay would therefore never reproduce).  The name
        ``on_result`` is reserved and cannot be used as an operation
        data key.
        """
        if self.journal is None:
            result = apply_entry(
                cache, JournalEntry(0, op, dict(data))
            )
            if on_result is not None:
                on_result(JournalEntry(0, op, dict(data)), result)
            save_state(self.state_path, cache, metadata, journal_seq=0)
            return result
        entry = self.journal.append(op, **data)
        result = apply_entry(cache, entry)
        if on_result is not None:
            on_result(entry, result)
        if entry.seq % self.snapshot_every == 0:
            self.flush(cache, metadata, journal_seq=entry.seq)
        return result

    def apply_batch(
        self,
        cache: LandlordCache,
        metadata: Optional[dict],
        ops: Sequence[Tuple[str, dict]],
        on_result: Optional[Callable[[JournalEntry, object], None]] = None,
        timings: Optional[dict] = None,
    ) -> List[object]:
        """Journal a whole batch with one group-commit fsync, then apply.

        The batched analogue of :meth:`apply` and the daemon's hot path:
        every operation is durably journalled (one
        :meth:`Journal.append_many` fsync for the lot) *before* any of
        them mutates the cache, so a crash at any later instant replays
        the full batch; application coalesces adjacent requests through
        :func:`apply_entries` into single vectorized-engine passes.  The
        snapshot is rewritten once, after the batch, whenever the batch
        crossed a ``snapshot_every`` boundary — the amortised equivalent
        of :meth:`apply`'s per-operation cadence.  Returns the per-op
        results in order.

        ``timings``, when a dict, receives window-wide stage timings for
        the caller's tracing spans: ``timings["fsync"]`` and
        ``timings["apply"]`` are each ``(start, duration)`` pairs on the
        ``perf_counter`` timebase (the hybrid clock's monotonic base).
        In the journal-less configuration the fsync duration is zero.
        """
        ops = [(op, dict(data)) for op, data in ops]
        if not ops:
            return []
        if self.journal is None:
            entries = [
                JournalEntry(0, op, data) for op, data in ops
            ]
            t0 = perf_counter()
            results = apply_entries(cache, entries, on_result)
            if timings is not None:
                timings["fsync"] = (t0, 0.0)
                timings["apply"] = (t0, perf_counter() - t0)
            save_state(self.state_path, cache, metadata, journal_seq=0)
            return results
        t0 = perf_counter()
        entries = self.journal.append_many(ops)
        t1 = perf_counter()
        results = apply_entries(cache, entries, on_result)
        if timings is not None:
            timings["fsync"] = (t0, t1 - t0)
            timings["apply"] = (t1, perf_counter() - t1)
        first, last = entries[0].seq, entries[-1].seq
        if last // self.snapshot_every > (first - 1) // self.snapshot_every:
            self.flush(cache, metadata, journal_seq=last)
        return results

    def flush(
        self,
        cache: LandlordCache,
        metadata: Optional[dict],
        journal_seq: Optional[int] = None,
    ) -> None:
        """Rewrite the snapshot to cover the journal, then compact it."""
        if self.journal is None:
            save_state(self.state_path, cache, metadata, journal_seq=0)
            return
        if journal_seq is None:
            journal_seq = self.journal.last_seq
        save_state(
            self.state_path, cache, metadata, journal_seq=journal_seq
        )
        self.journal.compact(journal_seq)


def recover_state(
    state_path: PathLike,
    journal_path: Optional[PathLike] = None,
    *,
    package_size: Callable[[str], int],
    migrate_v1: bool = False,
    **cache_kwargs: object,
) -> Tuple[LandlordCache, dict, int]:
    """One-shot crash recovery: load, replay the journal tail, re-snapshot.

    After this returns, the snapshot covers every surviving journalled
    operation and the journal is compacted to empty.  Returns
    ``(cache, metadata, replayed_count)``.  Raises
    :class:`~repro.core.persistence.StateError` when the snapshot is
    missing or unusable.
    """
    store = JournaledState(state_path, journal_path)
    cache, metadata, replayed = store.load(
        package_size, migrate_v1=migrate_v1, **cache_kwargs
    )
    store.flush(cache, metadata)
    return cache, metadata, len(replayed)
