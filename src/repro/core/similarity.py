"""Set-similarity metrics over specifications.

The paper (§V) chooses the Jaccard distance as a *"simple, adequate, and
non-controversial"* metric for how close two specifications are:

    d_j(A, B) = 1 - |A ∩ B| / |A ∪ B|

These functions accept either :class:`~repro.core.spec.ImageSpec` instances
or plain sets/frozensets of package ids, because the cache inner loop works
on raw frozensets for speed.
"""

from __future__ import annotations

from typing import AbstractSet, Union

from repro.core.spec import ImageSpec

__all__ = [
    "as_packages",
    "jaccard_similarity",
    "jaccard_distance",
    "containment",
    "overlap_coefficient",
]

SetLike = Union[ImageSpec, AbstractSet[str]]


def as_packages(value: SetLike) -> AbstractSet[str]:
    """Normalise an ImageSpec or plain set to its package set."""
    if isinstance(value, ImageSpec):
        return value.packages
    return value


def jaccard_similarity(a: SetLike, b: SetLike) -> float:
    """|A ∩ B| / |A ∪ B|; defined as 1.0 for two empty sets.

    The empty/empty convention makes ``jaccard_distance`` satisfy the
    identity axiom (d(x, x) = 0) on the whole domain including ∅.
    """
    sa, sb = as_packages(a), as_packages(b)
    if not sa and not sb:
        return 1.0
    # |A ∪ B| = |A| + |B| - |A ∩ B| avoids materialising the union.
    inter = len(sa & sb)
    union = len(sa) + len(sb) - inter
    return inter / union


def jaccard_distance(a: SetLike, b: SetLike) -> float:
    """The paper's d_j: 1 − Jaccard similarity.  Range [0, 1]; a metric."""
    return 1.0 - jaccard_similarity(a, b)


def containment(a: SetLike, b: SetLike) -> float:
    """|A ∩ B| / |A|: how much of ``a`` is already inside ``b``.

    1.0 means an image with contents ``b`` fully satisfies request ``a``.
    Defined as 1.0 when ``a`` is empty (an empty request is always
    satisfied).
    """
    sa, sb = as_packages(a), as_packages(b)
    if not sa:
        return 1.0
    return len(sa & sb) / len(sa)


def overlap_coefficient(a: SetLike, b: SetLike) -> float:
    """|A ∩ B| / min(|A|, |B|); 1.0 if either set is empty."""
    sa, sb = as_packages(a), as_packages(b)
    if not sa or not sb:
        return 1.0
    return len(sa & sb) / min(len(sa), len(sb))
