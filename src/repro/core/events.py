"""Typed cache-event log.

Every cache decision emits a :class:`CacheEvent`; the simulator keeps them
to reconstruct the per-request time series of Figure 5 (cumulative hits,
inserts, deletes, merges, cached data, bytes written) and to drive trace
replay in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["EventKind", "CacheEvent"]


class EventKind(enum.Enum):
    """The four operations of Algorithm 1 plus eviction."""

    HIT = "hit"          # an existing image satisfied the request
    MERGE = "merge"      # request merged into a near image (rewrite I/O)
    INSERT = "insert"    # a fresh image was built for the request
    DELETE = "delete"    # an image was evicted to respect capacity


@dataclass(frozen=True)
class CacheEvent:
    """One cache operation.

    Attributes:
        kind: which operation occurred.
        request_index: 0-based index of the request that triggered it
            (eviction events carry the index of the request being served
            when capacity forced them).
        image_id: id of the image hit/created/merged/evicted.
        image_bytes: byte size of that image after the operation.
        bytes_written: bytes of I/O charged by this event — the full image
            size for inserts and merges (merged images are rewritten in
            their entirety, the paper's dominant I/O cost), zero for hits
            and deletes.
        requested_bytes: size of the image the job actually asked for
            (None for delete events).
        reason: why a DELETE happened — ``"capacity"`` (evicted to fit a
            request under the byte budget) or ``"idle"`` (aged out by
            ``evict_idle``); None for non-delete events.
        distance: the Jaccard distance between the request and the merge
            target on MERGE events; None otherwise.
        candidates_examined: how many images the merge scan examined
            while serving this request (decision events only; deltas,
            so summing over the log reproduces the stats counter).
        conflicts_skipped: how many within-α candidates the conflict
            check rejected while serving this request (deltas, as
            above).
    """

    kind: EventKind
    request_index: int
    image_id: str
    image_bytes: int
    bytes_written: int = 0
    requested_bytes: Optional[int] = None
    reason: Optional[str] = None
    distance: Optional[float] = None
    candidates_examined: int = 0
    conflicts_skipped: int = 0
