"""Cross-site federation: pull from a registry before building locally.

§I observes that *"often, containers are replicated across sites and to
many individual nodes"* — today each site rebuilds the same images.  With
specification-level identity, replication can become *reuse*: a shared
:class:`~repro.containers.registry.ImageRegistry` indexes every site's
images by contents, and a site facing a local miss asks the registry for a
satisfying image before paying a Shrinkwrap build.

:class:`FederatedLandlord` wraps the standard facade:

1. local superset hit → serve locally (no registry traffic);
2. registry holds a satisfying image → *pull*: the artifact is adopted
   into the local cache (transfer bytes charged, not build bytes) and the
   request is served as a hit against it;
3. otherwise → normal Algorithm 1 locally (merge or insert), and the
   resulting image is *pushed* so sibling sites can reuse it.

Pulls are declined when the registry's best image is grossly oversized for
the request (``max_pull_overhead``) — shipping a bloated image across the
WAN can cost more than building a tailored one.

Two subtleties, property-tested in
``tests/core/test_federation_properties.py``: federation does not dominate
isolation on *arbitrary* streams (an adopted, larger image can become the
target of a later merge and enlarge that merge's full rewrite), and the
decline guard can push a follower back to local building.  The clean
guarantee — followers of an identical workload never build at all — holds
exactly when declines are disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Optional, Union

from repro.containers.image import ContainerImage
from repro.containers.registry import ImageRegistry
from repro.core.events import EventKind
from repro.core.landlord import Landlord, PreparedContainer
from repro.core.spec import ImageSpec
from repro.packages.repository import Repository

__all__ = ["FederationStats", "FederatedLandlord"]


@dataclass
class FederationStats:
    """Registry traffic attributable to one federated site."""

    pulls: int = 0
    pull_bytes: int = 0
    pushes: int = 0
    declined_pulls: int = 0  # registry hit, but too oversized to ship


class FederatedLandlord(Landlord):
    """A site LANDLORD backed by a shared image registry.

    Args:
        repository / capacity / alpha / kwargs: as for
            :class:`~repro.core.landlord.Landlord`.
        registry: the shared registry (None degrades to plain Landlord).
        max_pull_overhead: decline a pull when the registry image is more
            than this factor larger than the requested image.
        push_builds: publish locally built/merged images to the registry.
    """

    def __init__(
        self,
        repository: Repository,
        capacity: int,
        alpha: float = 0.8,
        registry: Optional[ImageRegistry] = None,
        max_pull_overhead: float = 3.0,
        push_builds: bool = True,
        **kwargs: object,
    ):
        super().__init__(repository, capacity, alpha, **kwargs)
        if max_pull_overhead < 1.0:
            raise ValueError("max_pull_overhead must be >= 1")
        self.registry = registry
        self.max_pull_overhead = max_pull_overhead
        self.push_builds = push_builds
        self.federation = FederationStats()

    def _try_pull(self, closed: ImageSpec, requested_bytes: int) -> bool:
        """Adopt a satisfying registry image if one is worth shipping."""
        if self.registry is None:
            return False
        found = self.registry.find_satisfying(closed)
        if found is None:
            return False
        artifact = self.registry.pull(found)
        if requested_bytes and artifact.size > self.max_pull_overhead * requested_bytes:
            self.federation.declined_pulls += 1
            # the metadata consult was free; the pull we just charged is
            # rolled back at the registry level by not adopting -- model
            # the decline as a metadata-only interaction
            self.registry.stats.pulls -= 1
            self.registry.stats.bytes_served -= artifact.size
            return False
        self.cache.adopt(artifact.spec.packages)
        self.federation.pulls += 1
        self.federation.pull_bytes += artifact.size
        return True

    def prepare(
        self, spec: Union[ImageSpec, AbstractSet[str], Iterable[str]]
    ) -> PreparedContainer:
        """Prepare a job's container, consulting the registry on misses."""
        closed = (
            self.resolve(spec)
            if self.expand_closure
            else (spec if isinstance(spec, ImageSpec) else ImageSpec(spec))
        )
        if self.cache.peek(closed) is None:
            requested = self.repository.bytes_of(closed.packages)
            self._try_pull(closed, requested)
        was_requests = self.cache.stats.requests
        prepared = super().prepare(closed.packages if self.expand_closure else closed)
        assert self.cache.stats.requests == was_requests + 1
        if (
            self.push_builds
            and self.registry is not None
            and prepared.action in (EventKind.INSERT, EventKind.MERGE)
        ):
            artifact = ContainerImage(
                spec=ImageSpec(prepared.image.packages),
                size=prepared.image.size,
                image_id=f"{id(self):x}-{prepared.image.id}"
                f"@{prepared.image.merge_count}",
            )
            self.registry.push(artifact)
            self.federation.pushes += 1
        return prepared
