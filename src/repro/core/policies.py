"""Baseline image-management strategies.

The paper frames LANDLORD against the "imperfect solutions" of §III and the
two degenerate corners of its own α spectrum:

- :class:`ExactLRUPolicy` — cache images, reuse only on *identical* (or
  subset) requests, never merge.  Equivalent to ``LandlordCache(alpha=0)``;
  provided both as a convenience and as an independent implementation used
  to cross-check the α=0 limit in integration tests.
- :class:`SingleImagePolicy` — maintain one all-purpose image that absorbs
  every request (the α=1 corner / "full-repo image" behaviour grown lazily).
- :class:`FullRepoPolicy` — materialise the *entire* repository as one image
  up front; every request is then a hit against a huge container.
- :class:`NoCachePolicy` — build a fresh exact image for every request and
  throw it away; the floor for write I/O comparisons.

All implement the :class:`ImageProvider` protocol so the simulator can drive
any of them interchangeably.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, Iterable, Union

from repro.core.cache import CacheDecision, CacheStats, LandlordCache
from repro.core.events import EventKind
from repro.core.spec import ImageSpec

__all__ = [
    "ImageProvider",
    "ExactLRUPolicy",
    "SingleImagePolicy",
    "FullRepoPolicy",
    "NoCachePolicy",
]

SpecLike = Union[ImageSpec, AbstractSet[str]]


class ImageProvider:
    """Protocol: anything that can serve image requests for job specs."""

    stats: CacheStats

    def request(self, spec: SpecLike) -> CacheDecision:
        """Serve one job request; see LandlordCache.request."""
        raise NotImplementedError

    @property
    def cached_bytes(self) -> int:
        raise NotImplementedError

    @property
    def unique_bytes(self) -> int:
        raise NotImplementedError

    @property
    def cache_efficiency(self) -> float:
        if self.cached_bytes == 0:
            return 1.0
        return self.unique_bytes / self.cached_bytes


class ExactLRUPolicy(LandlordCache):
    """Pure LRU image cache: subset reuse, no merging (the α=0 corner)."""

    def __init__(
        self,
        capacity: int,
        package_size: Callable[[str], int],
        **kwargs: object,
    ):
        kwargs.setdefault("record_events", False)
        super().__init__(capacity, 0.0, package_size, **kwargs)  # type: ignore[arg-type]


class SingleImagePolicy(ImageProvider):
    """One ever-growing all-purpose image (the α=1 corner).

    Unlike ``LandlordCache(alpha=1)`` — which still requires a *strictly*
    positive overlap because Algorithm 1 tests ``d_j < α`` — this policy
    merges unconditionally, including fully disjoint requests.  It does so
    by anchoring every request with a shared zero-byte meta-package, so the
    Jaccard distance to the resident image is always below 1; the anchor
    costs nothing and never affects byte accounting.  Capacity is
    unenforced: the point of this baseline is the image outgrowing any
    practical limit.
    """

    #: zero-size meta-package present in every request and in the image.
    ANCHOR = "single-image-anchor/0.0"

    def __init__(self, package_size: Callable[[str], int], record_events: bool = False):
        anchor = self.ANCHOR

        def sized(pid: str) -> int:
            return 0 if pid == anchor else package_size(pid)

        self._inner = LandlordCache(
            capacity=1 << 62,
            alpha=1.0,
            package_size=sized,
            record_events=record_events,
        )

    @property
    def stats(self) -> CacheStats:
        return self._inner.stats

    @property
    def events(self) -> list:
        return self._inner.events

    @property
    def cached_bytes(self) -> int:
        return self._inner.cached_bytes

    @property
    def unique_bytes(self) -> int:
        return self._inner.unique_bytes

    def request(self, spec: SpecLike) -> CacheDecision:
        """Serve a request; always merges into the single resident image."""
        packages = spec.packages if isinstance(spec, ImageSpec) else frozenset(spec)
        return self._inner.request(packages | {self.ANCHOR})

    def __len__(self) -> int:
        return len(self._inner)


class FullRepoPolicy(ImageProvider):
    """Build the whole repository as a single image up front (§III).

    Every request is then a hit; container efficiency is
    ``requested / repo_size`` per job, and the initial build is charged as
    one enormous write (the paper's 24-hour NERSC full-repo deployments).
    """

    def __init__(
        self,
        all_packages: Iterable[str],
        package_size: Callable[[str], int],
        record_events: bool = False,
    ):
        self._cache = LandlordCache(
            capacity=1 << 62,
            alpha=0.0,
            package_size=package_size,
            record_events=record_events,
        )
        full = frozenset(all_packages)
        if not full:
            raise ValueError("FullRepoPolicy needs a non-empty repository")
        decision = self._cache.request(full)
        self._image = decision.image
        # The bootstrap build is part of setup cost, not of the request
        # stream the experiments account; reset the counters.
        build_bytes = self._cache.stats.bytes_written
        self._cache.stats = CacheStats()
        self.setup_bytes_written = build_bytes

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    @property
    def cached_bytes(self) -> int:
        return self._cache.cached_bytes

    @property
    def unique_bytes(self) -> int:
        return self._cache.unique_bytes

    def request(self, spec: SpecLike) -> CacheDecision:
        """Serve a request from the one full-repository image (always a hit)."""
        decision = self._cache.request(spec)
        if decision.action is not EventKind.HIT:
            raise KeyError(
                "request contains packages outside the repository image"
            )
        return decision

    def __len__(self) -> int:
        return 1


class NoCachePolicy(ImageProvider):
    """Build every requested image from scratch, keep nothing.

    ``bytes_written`` equals ``requested_bytes`` by construction; the floor
    of Figure 4c's "Requested Writes" line.
    """

    def __init__(self, package_size: Callable[[str], int]):
        self._scratch = LandlordCache(
            capacity=1 << 62, alpha=0.0, package_size=package_size
        )
        self.stats = self._scratch.stats

    @property
    def cached_bytes(self) -> int:
        return 0

    @property
    def unique_bytes(self) -> int:
        return 0

    @property
    def cache_efficiency(self) -> float:
        return 1.0

    def request(self, spec: SpecLike) -> CacheDecision:
        """Build the exact requested image from scratch (never cached)."""
        packages = spec.packages if isinstance(spec, ImageSpec) else frozenset(spec)
        # Throw the previous image away first: every job builds from scratch.
        self._scratch.clear()
        decision = self._scratch.request(packages)
        self.stats = self._scratch.stats
        return decision

    def __len__(self) -> int:
        return 0
