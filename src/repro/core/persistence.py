"""Durable cache state — LANDLORD as a real job wrapper.

The paper's prototype runs *"as an automated step during job submission"*
(§V): every submission invokes the wrapper, which consults and updates a
persistent image-cache directory.  Between invocations the state therefore
lives on disk.  This module provides that layer: a versioned JSON snapshot
of a :class:`~repro.core.cache.LandlordCache` (images, LRU clocks, full
statistics, and — since format v2 — every policy knob the cache was
configured with) plus arbitrary caller metadata (e.g. which repository
seed the site is configured for).

Format v2 guarantees two properties v1 lacked:

- **Crash durability.**  ``save_state`` fsyncs the temp file before the
  atomic rename and fsyncs the directory after it, embeds a SHA-256
  checksum of the body so torn writes are detected on load, and stale
  ``.tmp`` files stranded by a crash between write and rename are
  cleaned up on the next load.
- **Policy fidelity.**  The snapshot records eviction, hit-selection,
  candidate-order, merge-write-mode, MinHash configuration, and the
  conflict-policy identity; :meth:`LandlordCache.restore` refuses to
  resume under different semantics than the state was built under.
  v1 files (which recorded none of this) fail with a descriptive
  :class:`StateError` unless ``migrate_v1=True`` explicitly adopts the
  caller's current knobs.

The actual container *files* are not stored — in a real deployment they sit
next to the state file in the cache directory; in this reproduction only
the accounting exists.

Used by ``repro-landlord submit`` / ``cache-status`` / ``recover`` (see
:mod:`repro.cli`), with :mod:`repro.core.journal` covering the window
between snapshots.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from repro.core.cache import LandlordCache
from repro.testing.faults import checkpoint

__all__ = [
    "STATE_VERSION",
    "StateBundle",
    "StateError",
    "StateNotFound",
    "body_checksum",
    "load_bundle",
    "load_state",
    "save_state",
]

STATE_VERSION = 2

PathLike = Union[str, Path]

_CANON = {"sort_keys": True, "separators": (",", ":")}


class StateError(ValueError):
    """Raised for missing, corrupt, or incompatible state files."""


class StateNotFound(StateError):
    """No state file exists — the one recoverable :class:`StateError`.

    Callers initialising a fresh cache on first use catch this subclass
    specifically; every other :class:`StateError` (corruption, policy
    mismatch, unmigrated v1 file) signals real state that must not be
    silently discarded.
    """


@dataclass(frozen=True)
class StateBundle:
    """Everything a state file holds: the cache, caller metadata, and the
    journal sequence number the snapshot covers (0 when none)."""

    cache: LandlordCache
    metadata: dict
    journal_seq: int


def body_checksum(body: dict) -> str:
    """SHA-256 over the canonical JSON encoding of a payload body.

    The body is the payload minus ``version`` and ``checksum`` — exactly
    the keys whose corruption a torn write could hide.
    """
    canon = json.dumps(body, **_CANON).encode("utf-8")
    return "sha256:" + hashlib.sha256(canon).hexdigest()


def _tmp_path(path: Path) -> Path:
    return path.with_name(path.name + ".tmp")


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (the rename itself) to stable storage."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def save_state(
    path: PathLike,
    cache: LandlordCache,
    metadata: Optional[dict] = None,
    journal_seq: int = 0,
) -> Path:
    """Write the cache snapshot crash-safely.

    The payload is written to ``<path>.tmp``, fsynced, renamed over
    ``path``, and the parent directory is fsynced — so after a crash the
    file at ``path`` is always either the old complete snapshot or the
    new complete snapshot, never a torn mix.  ``journal_seq`` records the
    last write-ahead-journal entry already folded into this snapshot
    (see :mod:`repro.core.journal`); recovery replays only later entries.
    """
    path = Path(path)
    body = {
        "metadata": metadata or {},
        "journal_seq": int(journal_seq),
        "cache": cache.snapshot(),
    }
    payload = {
        "version": STATE_VERSION,
        "checksum": body_checksum(body),
        **body,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_path(path)
    checkpoint("state:write")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(payload, indent=1))
        fh.flush()
        checkpoint("state:torn", fh=fh, start=0)
        os.fsync(fh.fileno())
    checkpoint("state:synced")
    tmp.replace(path)
    checkpoint("state:renamed")
    _fsync_dir(path.parent)
    return path


def _verify_checksum(payload: dict, path: Path) -> None:
    recorded = payload.get("checksum")
    if not isinstance(recorded, str):
        raise StateError(f"state file {path} has no checksum (torn write?)")
    body = {
        key: payload[key]
        for key in ("metadata", "journal_seq", "cache")
        if key in payload
    }
    if body_checksum(body) != recorded:
        raise StateError(
            f"state file {path} fails its checksum — torn or tampered write"
        )


def _migrate_v1(snapshot: dict, cache: LandlordCache) -> dict:
    """Upgrade a v1 cache snapshot to v2 semantics, in memory.

    v1 recorded no policy knobs, so migration *defines* them to be the
    ones the caller constructed ``cache`` with — an explicit decision the
    caller opted into via ``migrate_v1=True``.  Per-image
    ``last_request`` (absent in v1) is approximated by clamping the v1
    clock-based ``last_used`` to the request counter.
    """
    out = dict(snapshot)
    out.setdefault("policy", cache.policy_snapshot())
    return out


def load_bundle(
    path: PathLike,
    package_size: Callable[[str], int],
    migrate_v1: bool = False,
    **cache_kwargs: object,
) -> StateBundle:
    """Load a snapshot file into a fresh cache, validating everything.

    Capacity and α come from the snapshot itself (the state defines the
    site configuration); ``cache_kwargs`` set the remaining policy knobs,
    which must *match* the ones recorded in the snapshot — a mismatch
    raises :class:`StateError` instead of silently resuming with
    different semantics.  Stale ``.tmp`` files from a crashed
    :func:`save_state` are removed.  A v1-format file raises a
    descriptive :class:`StateError` unless ``migrate_v1`` is true, in
    which case the current knobs are stamped into the state.
    """
    path = Path(path)
    tmp = _tmp_path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        if tmp.exists():
            tmp.unlink()
            raise StateNotFound(
                f"no state file at {path} (removed stale partial write "
                f"{tmp.name})"
            ) from None
        raise StateNotFound(f"no state file at {path}") from None
    if tmp.exists():
        tmp.unlink()  # stranded by a crash between tmp write and rename
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StateError(f"corrupt state file {path}: {exc}") from exc
    version = payload.get("version")
    if version == 1:
        if not migrate_v1:
            raise StateError(
                f"state file {path} uses the v1 format, which records no "
                "policy knobs (eviction, hit selection, candidate order, "
                "merge write mode, MinHash, conflict policy) — pass "
                "migrate_v1=True (CLI: --migrate-v1) to adopt the current "
                "configuration, or rebuild the state"
            )
    elif version != STATE_VERSION:
        raise StateError(
            f"state version {version!r} unsupported "
            f"(expected {STATE_VERSION})"
        )
    else:
        _verify_checksum(payload, path)
    try:
        snapshot = payload["cache"]
        cache = LandlordCache(
            capacity=int(snapshot["capacity"]),
            alpha=float(snapshot["alpha"]),
            package_size=package_size,
            **cache_kwargs,  # type: ignore[arg-type]
        )
        if version == 1:
            snapshot = _migrate_v1(snapshot, cache)
        cache.restore(snapshot)
    except (KeyError, TypeError) as exc:
        raise StateError(f"malformed state file {path}: {exc}") from exc
    except ValueError as exc:
        if isinstance(exc, StateError):
            raise
        raise StateError(f"incompatible state file {path}: {exc}") from exc
    return StateBundle(
        cache=cache,
        metadata=payload.get("metadata", {}),
        journal_seq=int(payload.get("journal_seq", 0)),
    )


def load_state(
    path: PathLike,
    package_size: Callable[[str], int],
    migrate_v1: bool = False,
    **cache_kwargs: object,
) -> Tuple[LandlordCache, dict]:
    """Load a snapshot back into a fresh cache; returns ``(cache, metadata)``.

    Thin wrapper over :func:`load_bundle` for callers that do not use the
    write-ahead journal.
    """
    bundle = load_bundle(
        path, package_size, migrate_v1=migrate_v1, **cache_kwargs
    )
    return bundle.cache, bundle.metadata
