"""Durable cache state — LANDLORD as a real job wrapper.

The paper's prototype runs *"as an automated step during job submission"*
(§V): every submission invokes the wrapper, which consults and updates a
persistent image-cache directory.  Between invocations the state therefore
lives on disk.  This module provides that layer: a versioned JSON snapshot
of a :class:`~repro.core.cache.LandlordCache` (images, LRU clocks, full
statistics) plus arbitrary caller metadata (e.g. which repository seed the
site is configured for).

The actual container *files* are not stored — in a real deployment they sit
next to the state file in the cache directory; in this reproduction only
the accounting exists.

Used by ``repro-landlord submit`` / ``cache-status`` (see
:mod:`repro.cli`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from repro.core.cache import LandlordCache

__all__ = ["STATE_VERSION", "save_state", "load_state", "StateError"]

STATE_VERSION = 1

PathLike = Union[str, Path]


class StateError(ValueError):
    """Raised for missing, corrupt, or incompatible state files."""


def save_state(
    path: PathLike,
    cache: LandlordCache,
    metadata: Optional[dict] = None,
) -> Path:
    """Write the cache snapshot (atomically: write-temp-then-rename)."""
    path = Path(path)
    payload = {
        "version": STATE_VERSION,
        "metadata": metadata or {},
        "cache": cache.snapshot(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1))
    tmp.replace(path)
    return path


def load_state(
    path: PathLike,
    package_size: Callable[[str], int],
    **cache_kwargs: object,
) -> Tuple[LandlordCache, dict]:
    """Load a snapshot back into a fresh cache.

    Capacity and α come from the snapshot itself (the state defines the
    site configuration); ``cache_kwargs`` may set the remaining policy
    knobs.  Returns ``(cache, metadata)``.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise StateError(f"no state file at {path}") from None
    except json.JSONDecodeError as exc:
        raise StateError(f"corrupt state file {path}: {exc}") from exc
    version = payload.get("version")
    if version != STATE_VERSION:
        raise StateError(
            f"state version {version!r} unsupported (expected {STATE_VERSION})"
        )
    try:
        snapshot = payload["cache"]
        cache = LandlordCache(
            capacity=int(snapshot["capacity"]),
            alpha=float(snapshot["alpha"]),
            package_size=package_size,
            **cache_kwargs,  # type: ignore[arg-type]
        )
        cache.restore(snapshot)
    except (KeyError, TypeError) as exc:
        raise StateError(f"malformed state file {path}: {exc}") from exc
    return cache, payload.get("metadata", {})
