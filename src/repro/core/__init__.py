"""LANDLORD's core: specification-level container cache management.

This subpackage implements the paper's contribution proper:

- :mod:`repro.core.spec` — container *specifications* (declarative package
  sets) with subset-satisfaction and merge (union) semantics, the key insight
  of §IV.
- :mod:`repro.core.similarity` — Jaccard distance/similarity and related set
  metrics (§V, "Similarity Metric").
- :mod:`repro.core.minhash` — Broder's MinHash constant-time Jaccard
  approximation plus an LSH candidate index, for very large specifications.
- :mod:`repro.core.cache` — :class:`LandlordCache`, Algorithm 1: reuse a
  superset image, else merge into a near image (Jaccard distance < α), else
  insert; LRU eviction under a byte capacity; full operation/byte accounting.
- :mod:`repro.core.policies` — the baseline strategies the paper compares
  against (exact-match LRU, single all-purpose image, full-repo image,
  no caching).
- :mod:`repro.core.landlord` — the job-wrapper facade that ties spec
  inference, the cache, and image building together.
"""

from repro.core.adaptive import (
    AdaptationEvent,
    AimdController,
    AimdEvent,
    AlphaController,
    batch_governor,
    service_governor,
)
from repro.core.cache import CacheDecision, CacheStats, CachedImage, LandlordCache
from repro.core.engine import ENGINES, NaiveEngine, VectorizedEngine, make_engine
from repro.core.federation import FederatedLandlord, FederationStats
from repro.core.events import CacheEvent, EventKind
from repro.core.landlord import Landlord, PreparedContainer
from repro.core.minhash import MinHashSignature, MinHashLSH
from repro.core.policies import (
    ExactLRUPolicy,
    FullRepoPolicy,
    ImageProvider,
    NoCachePolicy,
    SingleImagePolicy,
)
from repro.core.similarity import (
    containment,
    jaccard_distance,
    jaccard_similarity,
    overlap_coefficient,
)
from repro.core.spec import ImageSpec
from repro.core.tenancy import MultiTenantLandlord, TenantDecision

__all__ = [
    "ImageSpec",
    "jaccard_distance",
    "jaccard_similarity",
    "containment",
    "overlap_coefficient",
    "MinHashSignature",
    "MinHashLSH",
    "LandlordCache",
    "CachedImage",
    "CacheDecision",
    "CacheStats",
    "CacheEvent",
    "EventKind",
    "ENGINES",
    "NaiveEngine",
    "VectorizedEngine",
    "make_engine",
    "ImageProvider",
    "ExactLRUPolicy",
    "SingleImagePolicy",
    "FullRepoPolicy",
    "NoCachePolicy",
    "Landlord",
    "PreparedContainer",
    "MultiTenantLandlord",
    "TenantDecision",
    "AlphaController",
    "AdaptationEvent",
    "AimdController",
    "AimdEvent",
    "batch_governor",
    "service_governor",
    "FederatedLandlord",
    "FederationStats",
]
